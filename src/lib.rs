//! # sprint-repro — umbrella crate
//!
//! Re-exports the whole workspace of the SPRINT `pmaxT` reproduction (see
//! `README.md` and `DESIGN.md` at the repository root):
//!
//! - [`sprint_core`] — statistics, permutation generators, maxT, `pmaxT`;
//! - [`mpi_sim`] — the SPMD message-passing substrate;
//! - [`sprint`] — the framework layer (dispatch, marshalling, checkpointing,
//!   in-place transpose);
//! - [`microarray`] — synthetic gene-expression datasets;
//! - [`cluster_sim`] — the platform performance models behind Tables I–VI
//!   and Figure 3.
//!
//! The integration tests in `tests/` and the runnable examples in
//! `examples/` live against this crate.

pub use cluster_sim;
pub use microarray;
pub use mpi_sim;
pub use sprint;
pub use sprint_core;
