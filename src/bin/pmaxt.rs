//! `pmaxt` — command-line permutation testing over TSV datasets.
//!
//! The CLI equivalent of the paper's
//! `mpiexec -n NSLOTS R --no-save -f SPRINT_SCRIPT_NAME`:
//!
//! ```text
//! # make a demo dataset (600 genes, 8 + 8 samples)
//! pmaxt generate demo.tsv --genes 600 --n0 8 --n1 8 --seed 1
//!
//! # run the permutation test on 4 ranks and write the result table
//! pmaxt run demo.tsv --ranks 4 -B 10000 --test t --side abs --out result.tsv
//!
//! # step-down minP instead of maxT
//! pmaxt run demo.tsv -B 2000 --minp
//!
//! # long-lived job service with a result cache
//! pmaxt serve unix:/tmp/pmaxt.sock --cache /var/cache/pmaxt &
//! pmaxt submit unix:/tmp/pmaxt.sock demo.tsv -B 100000   # returns a job id
//! pmaxt result unix:/tmp/pmaxt.sock 1                     # blocks, prints table
//! pmaxt submit unix:/tmp/pmaxt.sock demo.tsv -B 200000   # extends the cached run
//! ```
//!
//! Dataset format: the `microarray::io` TSV (`#classlabel` header + one row
//! per gene, `NA` for missing cells).
//!
//! Exit codes: `0` success, `1` runtime failure (I/O, server, engine), `2`
//! usage error (bad flags or option values), `3` resource-allocation error
//! (`--ranks` exceeds the permutation count).

use std::io;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use microarray::io::{read_dataset, write_dataset};
use microarray::prelude::*;
use sprint_core::adaptive::{adaptive_maxt, AdaptiveConfig, AdaptiveOutcome};
use sprint_core::boot::{boot_run, BootstrapResult};
use sprint_core::error::Error as CoreError;
use sprint_core::labels::ClassLabels;
use sprint_core::maxt::minp::pminp;
use sprint_core::maxt::{CountAccumulator, MaxTContext, MaxTResult};
use sprint_core::options::{
    KernelChoice, Mode, PmaxtOptions, Precision, SamplingMode, TestMethod, Workload,
};
use sprint_core::perm::resolve_permutation_count;
use sprint_core::perm::stored::StoredMatrix;
use sprint_core::pmaxt::{chunk_for_rank, pmaxt};
use sprint_core::side::Side;
use sprint_jobd::client::{expect_ok, request_retried, Client, RetryPolicy};
use sprint_jobd::json::Json;
use sprint_jobd::{protocol, Durability, Faults, JobManager, ManagerConfig, Server, ServerConfig};

/// CLI failure, carrying the process exit code.
#[derive(Debug, Clone, PartialEq)]
enum CliError {
    /// Bad flags or option values → exit 2.
    Usage(String),
    /// I/O, server or engine failure → exit 1.
    Runtime(String),
    /// `ranks > B` resource-allocation rejection → exit 3.
    Ranks(String),
}

impl CliError {
    fn from_core(e: CoreError) -> CliError {
        match e {
            CoreError::RanksExceedPermutations { .. } => CliError::Ranks(e.to_string()),
            CoreError::BadOption { .. }
            | CoreError::BadLabels(_)
            | CoreError::BadMatrix(_)
            | CoreError::ArrangementWidth { .. }
            | CoreError::TooManyPermutations { .. } => CliError::Usage(e.to_string()),
            CoreError::Comm(_) | CoreError::Cancelled => CliError::Runtime(e.to_string()),
        }
    }

    /// Map a server error response by its wire code.
    fn from_wire((msg, code): (String, String)) -> CliError {
        match code.as_str() {
            "usage" => CliError::Usage(msg),
            _ => CliError::Runtime(msg),
        }
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn runtime(msg: impl ToString) -> CliError {
    CliError::Runtime(msg.to_string())
}

/// Parsed command line for `pmaxt run`.
#[derive(Debug, Clone, PartialEq)]
struct RunConfig {
    input: PathBuf,
    opts: PmaxtOptions,
    ranks: usize,
    minp: bool,
    out: Option<PathBuf>,
    top: usize,
    /// Replay file (`--perm-file`): score exactly these stored label
    /// arrangements instead of a generated stream.
    perm_file: Option<PathBuf>,
}

/// Parsed command line for `pmaxt generate`.
#[derive(Debug, Clone, PartialEq)]
struct GenerateConfig {
    output: PathBuf,
    genes: usize,
    n0: usize,
    n1: usize,
    diff: f64,
    effect: f64,
    na_rate: f64,
    seed: u64,
}

/// Parsed command line for `pmaxt serve`.
#[derive(Debug, Clone, PartialEq)]
struct ServeConfig {
    addr: String,
    workers: usize,
    span: u64,
    queue: usize,
    job_threads: usize,
    cache: Option<PathBuf>,
    /// Peer daemon addresses (`--peer ADDR`, repeatable): jobs submitted
    /// here are sharded across the roster of this daemon plus every peer.
    peers: Vec<String>,
    /// Per-connection idle read deadline (`--idle-timeout SECS`).
    idle_timeout: Option<Duration>,
    /// Per-connection write deadline (`--write-timeout SECS`).
    write_timeout: Option<Duration>,
    /// Journal fsync policy (`--durability full|batch|off`). Served daemons
    /// default to `batch`: group-committed accept records survive `kill -9`
    /// up to one flush interval, at a few percent accept-latency cost.
    durability: Durability,
}

/// Parsed command line for the client subcommands.
#[derive(Debug, Clone, PartialEq)]
struct ClientConfig {
    addr: String,
    /// Dataset path for `submit`, unused otherwise.
    data: Option<PathBuf>,
    /// Job id for `status`/`result`/`cancel`/`watch`.
    job: Option<u64>,
    opts: PmaxtOptions,
    wait: bool,
    out: Option<PathBuf>,
    top: usize,
    /// Attempts per request (`--retries N`; 1 = fail fast).
    retries: u32,
    /// First retry backoff (`--retry-base-ms N`), doubling per attempt.
    retry_base_ms: u64,
    /// Per-read socket timeout (`--timeout SECS`); `None` waits forever.
    timeout: Option<Duration>,
}

fn usage_text() -> &'static str {
    "usage:\n  pmaxt run <data.tsv> [--test t|t.equalvar|wilcoxon|f|pairt|blockf|corr|tmax]\n            [--side abs|upper|lower] [--fixed-seed y|n] [-B N (0=complete)]\n            [--nonpara y|n] [--na CODE] [--seed N] [--ranks N] [--minp]\n            [--workload pmaxt|bootstrap (bootstrap = resample with replacement,\n             report percentile + BCa confidence intervals)]\n            [--perm-file FILE (replay stored label arrangements, one per line)]\n            [--kernel auto|scalar|fast (scalar = reference-scorer debug override)]\n            [--precision f64|f32 (f32 = faster, not bitwise reproducible)]\n            [--mode exact|adaptive (adaptive = early-stop null genes with\n             anytime-valid p-value bounds; SPRINT_MODE overrides)]\n            [--threads N (0=auto)] [--batch N (0=auto)]\n            [--out result.tsv] [--top N]\n  pmaxt generate <out.tsv> [--genes N] [--n0 N] [--n1 N] [--diff F]\n            [--effect F] [--na-rate F] [--seed N]\n  pmaxt serve <addr> [--workers N] [--span N] [--queue N] [--job-threads N]\n            [--cache DIR | --no-cache] [--peer ADDR]... \n            [--idle-timeout SECS] [--write-timeout SECS]\n            [--durability full|batch|off (write-ahead job journal: full =\n             fsync per accept, batch = group commit, off = no journal;\n             default batch, degrades to off under --no-cache)]\n  pmaxt submit <addr> <data.tsv> [run options] [--wait] [--out f] [--top N]\n  pmaxt status <addr> <job>\n  pmaxt result <addr> <job> [--no-wait] [--out f] [--top N]\n  pmaxt cancel <addr> <job>\n  pmaxt watch  <addr> <job>\n  pmaxt shutdown <addr> [--drain]\n\n  client commands also take [--retries N] [--retry-base-ms N] [--timeout SECS]\n  (idempotent retry on torn connections; resubmits dedup onto the live job).\n  <addr> is unix:/path/to.sock or host:port; exit codes: 0 ok, 1 runtime,\n  2 usage, 3 ranks > permutations.\n  SPRINT_FAULTS=class:prob,... arms deterministic fault injection in serve."
}

/// Consume one shared `PmaxtOptions` flag from the argument stream. Returns
/// `Ok(false)` when `a` is not an options flag (caller handles it).
fn parse_opts_flag(
    opts: &mut PmaxtOptions,
    a: &str,
    it: &mut std::slice::Iter<'_, String>,
) -> Result<bool, String> {
    let mut take = |name: &str| -> Result<&String, String> {
        it.next().ok_or_else(|| format!("{name} needs a value"))
    };
    match a {
        "--test" => opts.test = TestMethod::parse(take("--test")?).map_err(|e| e.to_string())?,
        "--side" => opts.side = Side::parse(take("--side")?).map_err(|e| e.to_string())?,
        "--fixed-seed" => {
            opts.sampling = SamplingMode::parse(take("--fixed-seed")?).map_err(|e| e.to_string())?
        }
        "-B" | "--permutations" => {
            opts.b = take("-B")?.parse().map_err(|e| format!("bad -B: {e}"))?
        }
        "--nonpara" => opts.nonpara = take("--nonpara")? == "y",
        "--na" => {
            opts.na = Some(
                take("--na")?
                    .parse()
                    .map_err(|e| format!("bad --na: {e}"))?,
            )
        }
        "--seed" => {
            opts.seed = take("--seed")?
                .parse()
                .map_err(|e| format!("bad --seed: {e}"))?
        }
        "--kernel" => {
            opts.kernel = KernelChoice::parse(take("--kernel")?).map_err(|e| e.to_string())?
        }
        "--precision" => {
            opts.precision = Precision::parse(take("--precision")?).map_err(|e| e.to_string())?
        }
        "--mode" => opts.mode = Mode::parse(take("--mode")?).map_err(|e| e.to_string())?,
        "--threads" => {
            opts.threads = take("--threads")?
                .parse()
                .map_err(|e| format!("bad --threads: {e}"))?
        }
        "--batch" => {
            opts.batch = take("--batch")?
                .parse()
                .map_err(|e| format!("bad --batch: {e}"))?
        }
        "--workload" => {
            opts.workload = Workload::parse(take("--workload")?).map_err(|e| e.to_string())?
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_run(args: &[String]) -> Result<RunConfig, String> {
    let mut input = None;
    let mut opts = PmaxtOptions::default();
    let mut ranks = 1usize;
    let mut minp = false;
    let mut out = None;
    let mut top = 10usize;
    let mut perm_file = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if parse_opts_flag(&mut opts, a, &mut it)? {
            continue;
        }
        let mut take = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--ranks" => {
                ranks = take("--ranks")?
                    .parse()
                    .map_err(|e| format!("bad --ranks: {e}"))?
            }
            "--minp" => minp = true,
            "--perm-file" => perm_file = Some(PathBuf::from(take("--perm-file")?)),
            "--out" => out = Some(PathBuf::from(take("--out")?)),
            "--top" => {
                top = take("--top")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?
            }
            other if !other.starts_with('-') && input.is_none() => {
                input = Some(PathBuf::from(other))
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(RunConfig {
        input: input.ok_or("missing input dataset path")?,
        opts,
        ranks: ranks.max(1),
        minp,
        out,
        top,
        perm_file,
    })
}

fn parse_generate(args: &[String]) -> Result<GenerateConfig, String> {
    let mut cfg = GenerateConfig {
        output: PathBuf::new(),
        genes: 600,
        n0: 8,
        n1: 8,
        diff: 0.05,
        effect: 2.0,
        na_rate: 0.0,
        seed: 1,
    };
    let mut have_out = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        macro_rules! num {
            ($flag:literal, $field:expr) => {{
                let v = take($flag)?;
                $field = v.parse().map_err(|e| format!("bad {}: {e}", $flag))?;
            }};
        }
        match a.as_str() {
            "--genes" => num!("--genes", cfg.genes),
            "--n0" => num!("--n0", cfg.n0),
            "--n1" => num!("--n1", cfg.n1),
            "--diff" => num!("--diff", cfg.diff),
            "--effect" => num!("--effect", cfg.effect),
            "--na-rate" => num!("--na-rate", cfg.na_rate),
            "--seed" => num!("--seed", cfg.seed),
            other if !other.starts_with('-') && !have_out => {
                cfg.output = PathBuf::from(other);
                have_out = true;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !have_out {
        return Err("missing output path".into());
    }
    Ok(cfg)
}

fn parse_serve(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig {
        addr: String::new(),
        workers: 2,
        span: 4096,
        queue: 64,
        job_threads: 0,
        cache: Some(PathBuf::from(".pmaxt-cache")),
        peers: Vec::new(),
        idle_timeout: None,
        write_timeout: None,
        durability: Durability::Batch,
    };
    let mut durability_explicit = false;
    let mut have_addr = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        macro_rules! num {
            ($flag:literal, $field:expr) => {{
                let v = take($flag)?;
                $field = v.parse().map_err(|e| format!("bad {}: {e}", $flag))?;
            }};
        }
        macro_rules! secs {
            ($flag:literal, $field:expr) => {{
                let v: f64 = take($flag)?
                    .parse()
                    .map_err(|e| format!("bad {}: {e}", $flag))?;
                if v.is_nan() || v <= 0.0 {
                    return Err(format!("{} must be positive seconds", $flag));
                }
                $field = Some(Duration::from_secs_f64(v));
            }};
        }
        match a.as_str() {
            "--workers" => num!("--workers", cfg.workers),
            "--span" => num!("--span", cfg.span),
            "--queue" => num!("--queue", cfg.queue),
            "--job-threads" => num!("--job-threads", cfg.job_threads),
            "--cache" => cfg.cache = Some(PathBuf::from(take("--cache")?)),
            "--no-cache" => cfg.cache = None,
            "--peer" => cfg.peers.push(take("--peer")?.clone()),
            "--idle-timeout" => secs!("--idle-timeout", cfg.idle_timeout),
            "--write-timeout" => secs!("--write-timeout", cfg.write_timeout),
            "--durability" => {
                let v = take("--durability")?;
                cfg.durability = Durability::parse(v)
                    .ok_or_else(|| format!("bad --durability {v:?} (want full, batch or off)"))?;
                durability_explicit = true;
            }
            other if !other.starts_with('-') && !have_addr => {
                cfg.addr = other.to_string();
                have_addr = true;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !have_addr {
        return Err("missing listen address".into());
    }
    if cfg.span == 0 {
        return Err("--span must be positive".into());
    }
    if cfg.cache.is_none() && cfg.durability != Durability::Off {
        // The journal lives under the cache directory, so a cacheless daemon
        // cannot keep one. An explicit request for durability is a conflict;
        // the default just degrades.
        if durability_explicit {
            return Err(format!(
                "--no-cache cannot honour --durability {} (the journal lives in the cache)",
                cfg.durability.as_str()
            ));
        }
        cfg.durability = Durability::Off;
    }
    Ok(cfg)
}

/// Parse the client subcommands. `needs_data` for `submit`, `needs_job` for
/// the job-addressing commands.
fn parse_client(
    args: &[String],
    needs_data: bool,
    needs_job: bool,
) -> Result<ClientConfig, String> {
    let mut cfg = ClientConfig {
        addr: String::new(),
        data: None,
        job: None,
        opts: PmaxtOptions::default(),
        wait: false,
        out: None,
        top: 10,
        retries: 3,
        retry_base_ms: 100,
        timeout: None,
    };
    let mut positional = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if needs_data && parse_opts_flag(&mut cfg.opts, a, &mut it)? {
            continue;
        }
        let mut take = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--wait" => cfg.wait = true,
            "--no-wait" => cfg.wait = false,
            "--out" => cfg.out = Some(PathBuf::from(take("--out")?)),
            "--top" => {
                cfg.top = take("--top")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?
            }
            "--retries" => {
                cfg.retries = take("--retries")?
                    .parse()
                    .map_err(|e| format!("bad --retries: {e}"))?;
                if cfg.retries == 0 {
                    return Err("--retries must be at least 1".into());
                }
            }
            "--retry-base-ms" => {
                cfg.retry_base_ms = take("--retry-base-ms")?
                    .parse()
                    .map_err(|e| format!("bad --retry-base-ms: {e}"))?
            }
            "--timeout" => {
                let v: f64 = take("--timeout")?
                    .parse()
                    .map_err(|e| format!("bad --timeout: {e}"))?;
                if v.is_nan() || v <= 0.0 {
                    return Err("--timeout must be positive seconds".into());
                }
                cfg.timeout = Some(Duration::from_secs_f64(v));
            }
            other if !other.starts_with('-') || other.parse::<u64>().is_ok() => {
                match positional {
                    0 => cfg.addr = other.to_string(),
                    1 if needs_data => cfg.data = Some(PathBuf::from(other)),
                    1 if needs_job => {
                        cfg.job = Some(other.parse().map_err(|e| format!("bad job id: {e}"))?)
                    }
                    _ => return Err(format!("unexpected argument {other:?}")),
                }
                positional += 1;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if cfg.addr.is_empty() {
        return Err("missing server address".into());
    }
    if needs_data && cfg.data.is_none() {
        return Err("missing dataset path".into());
    }
    if needs_job && cfg.job.is_none() {
        return Err("missing job id".into());
    }
    Ok(cfg)
}

fn write_result_table(path: &std::path::Path, result: &MaxTResult) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "index\tteststat\trawp\tadjp")?;
    for row in result.by_significance() {
        writeln!(
            w,
            "{}\t{:.6}\t{:.6}\t{:.6}",
            row.index, row.teststat, row.rawp, row.adjp
        )?;
    }
    w.flush()
}

fn print_result(result: &MaxTResult, top: usize, out: Option<&PathBuf>) -> Result<(), CliError> {
    println!(
        "{:>6} {:>12} {:>9} {:>9}",
        "index", "teststat", "rawp", "adjp"
    );
    for row in result.by_significance().take(top) {
        println!(
            "{:>6} {:>12.4} {:>9.5} {:>9.5}",
            row.index, row.teststat, row.rawp, row.adjp
        );
    }
    if let Some(out) = out {
        write_result_table(out, result).map_err(|e| runtime(format!("writing {out:?}: {e}")))?;
        eprintln!("full table written to {out:?}");
    }
    Ok(())
}

fn cmd_run(cfg: &RunConfig) -> Result<(), CliError> {
    let (data, labels) =
        read_dataset(&cfg.input).map_err(|e| runtime(format!("reading {:?}: {e}", cfg.input)))?;
    if cfg.opts.workload == Workload::Bootstrap {
        if cfg.minp {
            return Err(usage(
                "--minp is a permutation procedure; drop it for --workload bootstrap",
            ));
        }
        if cfg.ranks > 1 {
            return Err(usage(
                "bootstrap runs shard by gene through the job service; drop --ranks",
            ));
        }
        if cfg.perm_file.is_some() {
            return Err(usage(
                "--perm-file replays label arrangements, not bootstrap draws",
            ));
        }
        eprintln!(
            "loaded {} genes x {} samples; workload=bootstrap B={} level={:.0}%",
            data.rows(),
            data.cols(),
            cfg.opts.b,
            100.0 * sprint_core::boot::CI_LEVEL,
        );
        let t0 = std::time::Instant::now();
        let result = boot_run(&data, &labels, &cfg.opts).map_err(CliError::from_core)?;
        eprintln!(
            "done: {} bootstrap replicates in {:.2?}",
            result.replicates,
            t0.elapsed()
        );
        return print_boot(&result, cfg.top, cfg.out.as_ref());
    }
    if let Some(perm_file) = &cfg.perm_file {
        if cfg.minp {
            return Err(usage("--perm-file replay is maxT-only; drop --minp"));
        }
        if cfg.ranks > 1 {
            return Err(usage("--perm-file replays one stored stream; drop --ranks"));
        }
        if cfg.opts.mode.env_override() == Mode::Adaptive {
            return Err(usage(
                "--perm-file replay is exact-only; drop --mode adaptive",
            ));
        }
        return run_replay(cfg, &data, &labels, perm_file);
    }
    // Validate the rank allocation up front: handing a rank zero permutations
    // is a resource-allocation mistake with its own exit code (3), distinct
    // from usage and runtime failures.
    let class = ClassLabels::new(labels.clone(), cfg.opts.test).map_err(CliError::from_core)?;
    let b = resolve_permutation_count(&class, &cfg.opts).map_err(CliError::from_core)?;
    chunk_for_rank(b, cfg.ranks as u64, 0).map_err(CliError::from_core)?;
    let mode = cfg.opts.mode.env_override();
    eprintln!(
        "loaded {} genes x {} samples; test={} side={} B={} ranks={}{}{}",
        data.rows(),
        data.cols(),
        cfg.opts.test.as_str(),
        cfg.opts.side.as_str(),
        cfg.opts.b,
        cfg.ranks,
        if cfg.minp { " (minP)" } else { "" },
        if mode == Mode::Adaptive {
            " (adaptive)"
        } else {
            ""
        }
    );
    if mode == Mode::Adaptive {
        if cfg.minp {
            return Err(usage(
                "--minp is exact-only; adaptive mode bounds maxT p-values",
            ));
        }
        if cfg.ranks > 1 {
            return Err(usage(
                "adaptive mode shrinks the live gene set in-process; drop --ranks",
            ));
        }
        let t0 = std::time::Instant::now();
        let out = adaptive_maxt(&data, &labels, &cfg.opts, &AdaptiveConfig::default())
            .map_err(CliError::from_core)?;
        eprintln!(
            "done: scored {} of {} gene-permutations ({:.1}%) in {:.2?}",
            out.report.gene_perms_scored,
            out.report.gene_perms_exact,
            100.0 * out.report.budget_fraction(),
            t0.elapsed()
        );
        return print_adaptive(&out, cfg.top, cfg.out.as_ref());
    }
    let t0 = std::time::Instant::now();
    let result = if cfg.minp {
        pminp(&data, &labels, &cfg.opts, None, cfg.ranks).map_err(CliError::from_core)?
    } else {
        pmaxt(&data, &labels, &cfg.opts, cfg.ranks)
            .map_err(CliError::from_core)?
            .result
    };
    eprintln!(
        "done: B = {} permutations in {:.2?}",
        result.b_used,
        t0.elapsed()
    );
    print_result(&result, cfg.top, cfg.out.as_ref())
}

/// Render one gene's adaptive row: deterministic p-value bounds, the scored
/// prefix, where (if anywhere) the gene deactivated, and the GPD tail
/// p-value when one was fitted.
fn adaptive_row(out: &AdaptiveOutcome, g: usize) -> String {
    let r = &out.report;
    let stopped = r.stopped_at[g]
        .map(|c| c.to_string())
        .unwrap_or_else(|| "-".into());
    let tail = r.tail[g]
        .as_ref()
        .map(|f| {
            format!(
                "{:.2e}{}",
                f.p_tail,
                if f.good { "" } else { " (poor fit)" }
            )
        })
        .unwrap_or_else(|| "-".into());
    format!(
        "{:>6} {:>12.4} {:>9.5} {:>9.5} {:>9.5} {:>8} {:>8} {:>12}",
        g,
        out.result.teststat[g],
        r.p_point[g],
        r.p_lower[g],
        r.p_upper[g],
        r.scored[g],
        stopped,
        tail
    )
}

fn print_adaptive(
    out: &AdaptiveOutcome,
    top: usize,
    path: Option<&PathBuf>,
) -> Result<(), CliError> {
    let r = &out.report;
    eprintln!(
        "adaptive: {}/{} genes stopped early; exact-prefix watermark {} of B={}",
        r.genes_stopped(),
        r.scored.len(),
        r.watermark,
        r.b
    );
    let fitted = r.tail.iter().filter(|t| t.is_some()).count();
    if fitted > 0 {
        eprintln!(
            "adaptive: GPD tail fit on {fitted} gene(s) ({} passed diagnostics)",
            r.tail.iter().flatten().filter(|f| f.good).count()
        );
    }
    println!(
        "{:>6} {:>12} {:>9} {:>9} {:>9} {:>8} {:>8} {:>12}",
        "index", "teststat", "p", "p_lower", "p_upper", "scored", "stopped", "tail_p"
    );
    for row in out.result.by_significance().take(top) {
        println!("{}", adaptive_row(out, row.index));
    }
    if let Some(path) = path {
        use std::io::Write as _;
        let write = || -> std::io::Result<()> {
            let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
            writeln!(
                w,
                "index\tteststat\tp_point\tp_lower\tp_upper\tscored\tstopped_at\ttail_p\ttail_good"
            )?;
            for row in out.result.by_significance() {
                let g = row.index;
                let stopped = r.stopped_at[g]
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "NA".into());
                let (tail_p, tail_good) = match &r.tail[g] {
                    Some(f) => (format!("{:.6e}", f.p_tail), f.good.to_string()),
                    None => ("NA".into(), "NA".into()),
                };
                writeln!(
                    w,
                    "{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{}\t{}\t{}\t{}",
                    g,
                    out.result.teststat[g],
                    r.p_point[g],
                    r.p_lower[g],
                    r.p_upper[g],
                    r.scored[g],
                    stopped,
                    tail_p,
                    tail_good
                )?;
            }
            w.flush()
        };
        write().map_err(|e| runtime(format!("writing {path:?}: {e}")))?;
        eprintln!("full adaptive table written to {path:?}");
    }
    Ok(())
}

/// Parse a `--perm-file`: one label arrangement per line, whitespace-separated
/// class codes, `#` comments and blank lines ignored.
fn read_perm_file(path: &std::path::Path) -> Result<Vec<Vec<u8>>, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| runtime(format!("reading {path:?}: {e}")))?;
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row: Result<Vec<u8>, _> = line.split_whitespace().map(str::parse).collect();
        rows.push(row.map_err(|e| usage(format!("{path:?} line {}: {e}", lineno + 1)))?);
    }
    if rows.is_empty() {
        return Err(usage(format!("{path:?} holds no arrangements")));
    }
    Ok(rows)
}

/// `pmaxt run --perm-file`: replay an explicit arrangement set through the
/// maxT kernel via [`StoredMatrix`]. The observed labelling is scored first
/// (every stream's index 0 is the identity draw), then the file's rows.
fn run_replay(
    cfg: &RunConfig,
    data: &sprint_core::matrix::Matrix,
    labels: &[u8],
    path: &std::path::Path,
) -> Result<(), CliError> {
    let rows = read_perm_file(path)?;
    // Width mismatches surface as the typed `ArrangementWidth` error → exit 2,
    // with the row index matching the file's arrangement ordinal.
    StoredMatrix::try_from_rows(&rows, data.cols()).map_err(CliError::from_core)?;
    let (class, _b, prepared) = sprint_core::maxt::serial::prepare_run(data, labels, &cfg.opts)
        .map_err(CliError::from_core)?;
    let mut want = labels.to_vec();
    want.sort_unstable();
    for (i, row) in rows.iter().enumerate() {
        let mut got = row.clone();
        got.sort_unstable();
        if got != want {
            return Err(usage(format!(
                "--perm-file row {i} is not a rearrangement of the dataset's class labels"
            )));
        }
    }
    let mut all = Vec::with_capacity(rows.len() + 1);
    all.push(labels.to_vec());
    all.extend(rows);
    let b = all.len() as u64;
    let mut stream = StoredMatrix::try_from_rows(&all, data.cols()).map_err(CliError::from_core)?;
    let ctx = MaxTContext::with_scorer(
        &prepared,
        &class,
        cfg.opts.test,
        cfg.opts.side,
        cfg.opts.kernel,
        cfg.opts.precision,
    );
    let mut acc = CountAccumulator::new(ctx.genes());
    let t0 = std::time::Instant::now();
    let done = ctx.accumulate(&mut stream, b, &mut acc);
    eprintln!(
        "done: replayed {done} stored arrangement(s) (identity + {} from {path:?}) in {:.2?}",
        done.saturating_sub(1),
        t0.elapsed()
    );
    print_result(&ctx.finalize(&acc), cfg.top, cfg.out.as_ref())
}

/// Order genes for the bootstrap table: largest |θ̂/se| first (the
/// strongest standardized effects), NaN-scored genes last.
fn boot_order(result: &BootstrapResult) -> Vec<usize> {
    let score = |g: usize| {
        let z = (result.theta[g] / result.se[g]).abs();
        if z.is_nan() {
            f64::NEG_INFINITY
        } else {
            z
        }
    };
    let mut order: Vec<usize> = (0..result.genes()).collect();
    order.sort_by(|&a, &b| score(b).partial_cmp(&score(a)).unwrap().then(a.cmp(&b)));
    order
}

fn write_boot_table(path: &std::path::Path, result: &BootstrapResult) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "index\ttheta\tse\tpct_lo\tpct_hi\tbca_lo\tbca_hi")?;
    for g in boot_order(result) {
        writeln!(
            w,
            "{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}",
            result.offset + g,
            result.theta[g],
            result.se[g],
            result.pct_lo[g],
            result.pct_hi[g],
            result.bca_lo[g],
            result.bca_hi[g]
        )?;
    }
    w.flush()
}

fn print_boot(result: &BootstrapResult, top: usize, out: Option<&PathBuf>) -> Result<(), CliError> {
    println!(
        "{:>6} {:>12} {:>10} {:>22} {:>22}",
        "index", "theta", "se", "percentile CI", "BCa CI"
    );
    for g in boot_order(result).into_iter().take(top) {
        println!(
            "{:>6} {:>12.4} {:>10.4} [{:>9.4}, {:>9.4}] [{:>9.4}, {:>9.4}]",
            result.offset + g,
            result.theta[g],
            result.se[g],
            result.pct_lo[g],
            result.pct_hi[g],
            result.bca_lo[g],
            result.bca_hi[g]
        );
    }
    if let Some(out) = out {
        write_boot_table(out, result).map_err(|e| runtime(format!("writing {out:?}: {e}")))?;
        eprintln!("full bootstrap table written to {out:?}");
    }
    Ok(())
}

fn cmd_generate(cfg: &GenerateConfig) -> Result<(), CliError> {
    let ds = SynthConfig::two_class(cfg.genes, cfg.n0, cfg.n1)
        .diff_fraction(cfg.diff)
        .effect_size(cfg.effect)
        .na_rate(cfg.na_rate)
        .seed(cfg.seed)
        .generate();
    write_dataset(&cfg.output, &ds.matrix, &ds.labels)
        .map_err(|e| runtime(format!("writing {:?}: {e}", cfg.output)))?;
    eprintln!(
        "wrote {} genes x {} samples ({} planted differential) to {:?}",
        ds.matrix.rows(),
        ds.matrix.cols(),
        ds.truth.iter().filter(|&&t| t).count(),
        cfg.output
    );
    Ok(())
}

fn cmd_serve(cfg: &ServeConfig) -> Result<(), CliError> {
    let faults = Faults::from_env();
    if faults.armed() {
        eprintln!("jobd: fault injection armed via SPRINT_FAULTS");
    }
    let manager = JobManager::new(ManagerConfig {
        workers: cfg.workers,
        queue_cap: cfg.queue,
        span: cfg.span,
        job_threads: cfg.job_threads,
        cache_dir: cfg.cache.clone(),
        peers: cfg.peers.clone(),
        faults: faults.clone(),
        durability: cfg.durability,
    })
    .map_err(|e| runtime(format!("starting job manager: {e}")))?;
    if let Some(rep) = manager.recovery_report() {
        eprintln!(
            "jobd: journal replayed: {} record(s) in {} segment(s), {} pending \
             ({} requeued, {} from cache, {} unrecoverable)",
            rep.records, rep.segments, rep.pending, rep.requeued, rep.from_cache, rep.unrecoverable
        );
        if rep.torn_bytes > 0 || rep.resyncs > 0 {
            eprintln!(
                "jobd: journal damage handled: {} torn tail byte(s) quarantined, {} resync(s)",
                rep.torn_bytes, rep.resyncs
            );
        }
    }
    let server = Server::bind_with(
        &cfg.addr,
        manager,
        ServerConfig {
            read_timeout: cfg.idle_timeout,
            write_timeout: cfg.write_timeout,
            faults,
        },
    )
    .map_err(|e| runtime(format!("binding {}: {e}", cfg.addr)))?;
    eprintln!(
        "jobd: listening on {} ({} workers, span {}, cache {}, durability {})",
        server.local_addr().to_addr_string(),
        cfg.workers,
        cfg.span,
        cfg.cache
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "disabled".into()),
        cfg.durability.as_str(),
    );
    if !cfg.peers.is_empty() {
        eprintln!(
            "jobd: sharding submissions across {} peer(s): {}",
            cfg.peers.len(),
            cfg.peers.join(", ")
        );
    }
    server.run().map_err(|e| runtime(format!("serving: {e}")))
}

fn connect(addr: &str) -> Result<Client, CliError> {
    Client::connect(addr).map_err(|e| runtime(format!("connecting to {addr}: {e}")))
}

fn request(client: &mut Client, req: &Json) -> Result<Json, CliError> {
    let resp = client.request(req).map_err(runtime)?;
    expect_ok(resp).map_err(CliError::from_wire)
}

fn retry_policy(cfg: &ClientConfig) -> RetryPolicy {
    RetryPolicy {
        attempts: cfg.retries,
        base: Duration::from_millis(cfg.retry_base_ms),
        ..RetryPolicy::default()
    }
}

/// One idempotent request under the client's retry policy: a fresh
/// connection per attempt, protocol envelope unwrapped. Wire-level errors
/// (`ok: false`) are never retried — the daemon answered.
fn request_retrying(cfg: &ClientConfig, req: &Json) -> Result<Json, CliError> {
    let resp = request_retried(&cfg.addr, req, &retry_policy(cfg), cfg.timeout)
        .map_err(|e| runtime(format!("request to {}: {e}", cfg.addr)))?;
    expect_ok(resp).map_err(CliError::from_wire)
}

fn print_status_line(resp: &Json) {
    let field = |k: &str| resp.get(k).and_then(Json::as_u64).unwrap_or(0);
    let text = |k: &str| {
        resp.get(k)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let mut line = format!(
        "job {} {}: {}/{} permutations (cache {}",
        field("job"),
        text("state"),
        field("done"),
        field("total"),
        text("cache"),
    );
    let resumed = field("resumed_from");
    if resumed > 0 {
        line.push_str(&format!(", resumed from {resumed}"));
    }
    line.push(')');
    if let Some(eta) = resp.get("eta_secs").and_then(Json::as_f64) {
        line.push_str(&format!(", eta {eta:.1}s"));
    }
    if let Some(err) = resp.get("error").and_then(Json::as_str) {
        line.push_str(&format!(", error: {err}"));
    }
    println!("{line}");
    // Sharded jobs carry a comm block: roster size, span accounting and
    // wire-level counters from the coordinator's point of view.
    if let Some(comm) = resp.get("comm") {
        let c = |k: &str| comm.get(k).and_then(Json::as_u64).unwrap_or(0);
        let mut comm_line = format!(
            "  comm: {} peer(s), spans {} total / {} local / {} remote",
            c("peers"),
            c("spans_total"),
            c("spans_local"),
            c("spans_remote"),
        );
        if c("peers_failed") > 0 {
            comm_line.push_str(&format!(
                ", {} peer(s) failed, {} span(s) reassigned",
                c("peers_failed"),
                c("spans_reassigned"),
            ));
        }
        comm_line.push_str(&format!(
            "; wire: {} request(s), {} retried, {} B out / {} B in",
            c("requests_sent"),
            c("retries"),
            c("bytes_sent"),
            c("bytes_received"),
        ));
        println!("{comm_line}");
    }
}

fn fetch_and_print_result(cfg: &ClientConfig, job: u64, wait: bool) -> Result<(), CliError> {
    // Safe to retry even with `wait`: the result request is read-only and the
    // daemon resolves it from the job table / cache on every attempt.
    let resp = request_retrying(cfg, &protocol::result_request(job, wait))?;
    if resp.get("workload").and_then(Json::as_str) == Some("bootstrap") {
        let result = protocol::boot_from_json(&resp).map_err(usage)?;
        eprintln!(
            "job {job}: {} bootstrap replicates, {:.0}% intervals",
            result.replicates,
            100.0 * result.level
        );
        return print_boot(&result, cfg.top, cfg.out.as_ref());
    }
    let result = protocol::result_from_json(&resp).map_err(usage)?;
    eprintln!("job {job}: B = {} permutations", result.b_used);
    print_result(&result, cfg.top, cfg.out.as_ref())
}

fn cmd_submit(cfg: &ClientConfig) -> Result<(), CliError> {
    let data = cfg.data.as_ref().expect("parser enforces data");
    // The server reads the dataset from its own filesystem; send an absolute
    // path so client and server working directories need not agree.
    let path =
        std::fs::canonicalize(data).map_err(|e| runtime(format!("resolving {data:?}: {e}")))?;
    // Submission is idempotent (content-digest dedup), so a torn first
    // attempt resubmits safely.
    let req = protocol::submit_request(&path.display().to_string(), &cfg.opts);
    let resp = request_retrying(cfg, &req)?;
    let job = resp
        .get("job")
        .and_then(Json::as_u64)
        .ok_or_else(|| usage("malformed submit response"))?;
    let text = |k: &str| {
        resp.get(k)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let mut note = format!(
        "job {} {} (cache {}, {} permutations",
        job,
        text("state"),
        text("cache"),
        resp.get("total").and_then(Json::as_u64).unwrap_or(0),
    );
    let resumed = resp.get("resumed_from").and_then(Json::as_u64).unwrap_or(0);
    if resumed > 0 {
        note.push_str(&format!(", resumed from {resumed}"));
    }
    if resp.get("deduped").and_then(Json::as_bool) == Some(true) {
        note.push_str(", deduplicated");
    }
    note.push(')');
    eprintln!("{note}");
    if cfg.wait {
        fetch_and_print_result(cfg, job, true)
    } else {
        println!("{job}");
        Ok(())
    }
}

fn cmd_status(cfg: &ClientConfig) -> Result<(), CliError> {
    let job = cfg.job.expect("parser enforces job");
    let resp = request_retrying(cfg, &protocol::job_request("status", job))?;
    print_status_line(&resp);
    Ok(())
}

fn cmd_result(cfg: &ClientConfig) -> Result<(), CliError> {
    let job = cfg.job.expect("parser enforces job");
    fetch_and_print_result(cfg, job, cfg.wait)
}

fn cmd_cancel(cfg: &ClientConfig) -> Result<(), CliError> {
    let job = cfg.job.expect("parser enforces job");
    // Cancelling an already-terminal job is a no-op status echo, so retrying
    // a torn cancel is safe.
    let resp = request_retrying(cfg, &protocol::job_request("cancel", job))?;
    print_status_line(&resp);
    Ok(())
}

fn cmd_watch(cfg: &ClientConfig) -> Result<(), CliError> {
    let job = cfg.job.expect("parser enforces job");
    let policy = retry_policy(cfg);
    // Watching is idempotent: every (re)subscription starts with a status
    // snapshot, so after a dropped stream we reconnect and resume. Only
    // transport errors are retried; protocol errors surface immediately.
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let stream = Client::connect_with(&cfg.addr, cfg.timeout).and_then(|mut client| {
            let mut resp = client.request(&protocol::job_request("watch", job))?;
            loop {
                let ok = expect_ok(resp).map_err(|wire| {
                    io::Error::new(io::ErrorKind::InvalidData, encode_wire(wire))
                })?;
                print_status_line(&ok);
                let state = ok.get("state").and_then(Json::as_str).unwrap_or("");
                if matches!(state, "finished" | "cancelled" | "failed") {
                    return Ok(());
                }
                resp = client.read_response()?;
            }
        });
        match stream {
            Ok(()) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData && e.get_ref().is_some() => {
                // A daemon-delivered error (unknown job, usage) — not a
                // transport fault, so never retried.
                return Err(decode_wire(&e.to_string()));
            }
            Err(e) if attempt < policy.attempts.max(1) => {
                eprintln!("watch: {e}; reconnecting (attempt {attempt})");
                std::thread::sleep(policy.backoff(attempt + 1));
            }
            Err(e) => return Err(runtime(format!("watching job {job}: {e}"))),
        }
    }
}

/// Smuggle a wire error `(message, code)` through `io::Error` so the watch
/// closure can stay `io::Result`.
fn encode_wire((msg, code): (String, String)) -> String {
    format!("{code}\u{1f}{msg}")
}

fn decode_wire(encoded: &str) -> CliError {
    match encoded.split_once('\u{1f}') {
        Some((code, msg)) => CliError::from_wire((msg.to_string(), code.to_string())),
        None => runtime(encoded.to_string()),
    }
}

fn cmd_shutdown(addr: &str, drain: bool) -> Result<(), CliError> {
    // Deliberately not retried: with `--drain` the ack only arrives after the
    // daemon settles all work, and retrying a torn ack against the now-dead
    // server would misreport a successful shutdown as a failure.
    let mut client = connect(addr)?;
    request(&mut client, &protocol::shutdown_request(drain))?;
    eprintln!(
        "jobd at {addr}: shut down{}",
        if drain { " (drained)" } else { "" }
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("run") => parse_run(&args[1..])
            .map_err(usage)
            .and_then(|cfg| cmd_run(&cfg)),
        Some("generate") => parse_generate(&args[1..])
            .map_err(usage)
            .and_then(|cfg| cmd_generate(&cfg)),
        Some("serve") => parse_serve(&args[1..])
            .map_err(usage)
            .and_then(|cfg| cmd_serve(&cfg)),
        Some("submit") => parse_client(&args[1..], true, false)
            .map_err(usage)
            .and_then(|cfg| cmd_submit(&cfg)),
        Some("status") => parse_client(&args[1..], false, true)
            .map_err(usage)
            .and_then(|cfg| cmd_status(&cfg)),
        Some("result") => parse_client(&args[1..], false, true)
            .map(|mut cfg| {
                // `result` waits by default; `--no-wait` polls.
                if !args[1..].iter().any(|a| a == "--no-wait") {
                    cfg.wait = true;
                }
                cfg
            })
            .map_err(usage)
            .and_then(|cfg| cmd_result(&cfg)),
        Some("cancel") => parse_client(&args[1..], false, true)
            .map_err(usage)
            .and_then(|cfg| cmd_cancel(&cfg)),
        Some("watch") => parse_client(&args[1..], false, true)
            .map_err(usage)
            .and_then(|cfg| cmd_watch(&cfg)),
        Some("shutdown") => {
            let rest = &args[1..];
            let drain = rest.iter().any(|a| a == "--drain");
            let extra: Vec<&String> = rest
                .iter()
                .filter(|a| a.as_str() != "--drain" && !a.starts_with("--"))
                .collect();
            match (
                extra.as_slice(),
                rest.iter().all(|a| !a.starts_with("--") || a == "--drain"),
            ) {
                ([addr], true) => cmd_shutdown(addr, drain),
                _ => Err(usage("usage: pmaxt shutdown <addr> [--drain]")),
            }
        }
        _ => Err(usage(usage_text())),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
        Err(CliError::Ranks(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_run_defaults() {
        let cfg = parse_run(&strs(&["data.tsv"])).unwrap();
        assert_eq!(cfg.input, PathBuf::from("data.tsv"));
        assert_eq!(cfg.opts, PmaxtOptions::default());
        assert_eq!(cfg.ranks, 1);
        assert!(!cfg.minp);
        assert_eq!(cfg.top, 10);
    }

    #[test]
    fn parse_run_full_flags() {
        let cfg = parse_run(&strs(&[
            "d.tsv",
            "--test",
            "wilcoxon",
            "--side",
            "upper",
            "--fixed-seed",
            "n",
            "-B",
            "500",
            "--nonpara",
            "y",
            "--na",
            "-999",
            "--seed",
            "7",
            "--ranks",
            "4",
            "--minp",
            "--kernel",
            "scalar",
            "--precision",
            "f32",
            "--threads",
            "3",
            "--batch",
            "16",
            "--out",
            "r.tsv",
            "--top",
            "25",
        ]))
        .unwrap();
        assert_eq!(cfg.opts.test, TestMethod::Wilcoxon);
        assert_eq!(cfg.opts.kernel, KernelChoice::Scalar);
        assert_eq!(cfg.opts.precision, Precision::F32);
        assert_eq!(cfg.opts.side, Side::Upper);
        assert_eq!(cfg.opts.sampling, SamplingMode::Stored);
        assert_eq!(cfg.opts.b, 500);
        assert!(cfg.opts.nonpara);
        assert_eq!(cfg.opts.na, Some(-999.0));
        assert_eq!(cfg.opts.seed, 7);
        assert_eq!(cfg.opts.threads, 3);
        assert_eq!(cfg.opts.batch, 16);
        assert_eq!(cfg.ranks, 4);
        assert!(cfg.minp);
        assert_eq!(cfg.out, Some(PathBuf::from("r.tsv")));
        assert_eq!(cfg.top, 25);
    }

    #[test]
    fn parse_run_rejects_garbage() {
        assert!(parse_run(&strs(&["--test"])).is_err());
        assert!(parse_run(&strs(&["d.tsv", "--bogus"])).is_err());
        assert!(parse_run(&strs(&["d.tsv", "--test", "zzz"])).is_err());
        assert!(parse_run(&strs(&[])).is_err());
    }

    #[test]
    fn parse_generate_round_trip() {
        let cfg = parse_generate(&strs(&[
            "out.tsv",
            "--genes",
            "100",
            "--n0",
            "5",
            "--n1",
            "6",
            "--diff",
            "0.2",
            "--effect",
            "3.0",
            "--na-rate",
            "0.1",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(cfg.genes, 100);
        assert_eq!(cfg.n0, 5);
        assert_eq!(cfg.n1, 6);
        assert_eq!(cfg.diff, 0.2);
        assert_eq!(cfg.effect, 3.0);
        assert_eq!(cfg.na_rate, 0.1);
        assert_eq!(cfg.seed, 9);
        assert!(parse_generate(&strs(&["--genes", "5"])).is_err());
    }

    #[test]
    fn parse_serve_flags() {
        let cfg = parse_serve(&strs(&[
            "unix:/tmp/x.sock",
            "--workers",
            "4",
            "--span",
            "1000",
            "--queue",
            "8",
            "--job-threads",
            "2",
            "--cache",
            "/tmp/cachedir",
        ]))
        .unwrap();
        assert_eq!(cfg.addr, "unix:/tmp/x.sock");
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.span, 1000);
        assert_eq!(cfg.queue, 8);
        assert_eq!(cfg.job_threads, 2);
        assert_eq!(cfg.cache, Some(PathBuf::from("/tmp/cachedir")));
        assert_eq!(cfg.durability, Durability::Batch);
        let no_cache = parse_serve(&strs(&["127.0.0.1:0", "--no-cache"])).unwrap();
        assert_eq!(no_cache.cache, None);
        // The default durability degrades without a cache; an explicit
        // request is a conflict.
        assert_eq!(no_cache.durability, Durability::Off);
        assert!(parse_serve(&strs(&["a:1", "--no-cache", "--durability", "full"])).is_err());
        let full = parse_serve(&strs(&["a:1", "--durability", "full"])).unwrap();
        assert_eq!(full.durability, Durability::Full);
        assert!(parse_serve(&strs(&["a:1", "--durability", "sometimes"])).is_err());
        assert!(parse_serve(&strs(&[])).is_err());
        assert!(parse_serve(&strs(&["a:1", "--span", "0"])).is_err());
    }

    #[test]
    fn parse_client_submit_and_job_forms() {
        let cfg = parse_client(
            &strs(&["unix:/s.sock", "d.tsv", "-B", "500", "--wait", "--top", "3"]),
            true,
            false,
        )
        .unwrap();
        assert_eq!(cfg.addr, "unix:/s.sock");
        assert_eq!(cfg.data, Some(PathBuf::from("d.tsv")));
        assert_eq!(cfg.opts.b, 500);
        assert!(cfg.wait);
        assert_eq!(cfg.top, 3);

        let cfg = parse_client(&strs(&["127.0.0.1:9000", "17"]), false, true).unwrap();
        assert_eq!(cfg.job, Some(17));
        assert!(parse_client(&strs(&["addr:1"]), false, true).is_err());
        assert!(parse_client(&strs(&[]), true, false).is_err());
    }

    #[test]
    fn exit_code_mapping_from_core_errors() {
        let ranks = CoreError::RanksExceedPermutations { b: 5, ranks: 9 };
        assert!(matches!(CliError::from_core(ranks), CliError::Ranks(_)));
        let opt = CoreError::BadOption {
            param: "side",
            value: "x".into(),
        };
        assert!(matches!(CliError::from_core(opt), CliError::Usage(_)));
        let comm = CoreError::Comm("boom".into());
        assert!(matches!(CliError::from_core(comm), CliError::Runtime(_)));
        assert!(matches!(
            CliError::from_wire(("m".into(), "usage".into())),
            CliError::Usage(_)
        ));
        assert!(matches!(
            CliError::from_wire(("m".into(), "busy".into())),
            CliError::Runtime(_)
        ));
    }

    #[test]
    fn generate_then_run_end_to_end() {
        let dir = std::env::temp_dir();
        let data = dir.join(format!("pmaxt-cli-{}.tsv", std::process::id()));
        let out = dir.join(format!("pmaxt-cli-{}-result.tsv", std::process::id()));
        cmd_generate(&GenerateConfig {
            output: data.clone(),
            genes: 50,
            n0: 5,
            n1: 5,
            diff: 0.1,
            effect: 3.0,
            na_rate: 0.02,
            seed: 3,
        })
        .unwrap();
        let cfg = RunConfig {
            input: data.clone(),
            opts: PmaxtOptions::default().permutations(100),
            ranks: 2,
            minp: false,
            out: Some(out.clone()),
            top: 5,
            perm_file: None,
        };
        cmd_run(&cfg).unwrap();
        let table = std::fs::read_to_string(&out).unwrap();
        assert!(table.starts_with("index\tteststat\trawp\tadjp"));
        assert_eq!(table.lines().count(), 51); // header + 50 genes
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn run_rejects_oversubscribed_ranks_with_typed_error() {
        let dir = std::env::temp_dir();
        let data = dir.join(format!("pmaxt-cli-ranks-{}.tsv", std::process::id()));
        cmd_generate(&GenerateConfig {
            output: data.clone(),
            genes: 10,
            n0: 4,
            n1: 4,
            diff: 0.0,
            effect: 2.0,
            na_rate: 0.0,
            seed: 5,
        })
        .unwrap();
        let cfg = RunConfig {
            input: data.clone(),
            opts: PmaxtOptions::default().permutations(3),
            ranks: 8,
            minp: false,
            out: None,
            top: 3,
            perm_file: None,
        };
        let err = cmd_run(&cfg).unwrap_err();
        assert!(matches!(err, CliError::Ranks(_)), "got {err:?}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn parse_run_mode_flag() {
        let cfg = parse_run(&strs(&["d.tsv", "--mode", "adaptive"])).unwrap();
        assert_eq!(cfg.opts.mode, Mode::Adaptive);
        assert!(parse_run(&strs(&["d.tsv", "--mode", "guess"])).is_err());
        // The submit parser shares parse_opts_flag, so --mode rides along.
        let cfg =
            parse_client(&strs(&["a:1", "d.tsv", "--mode", "adaptive"]), true, false).unwrap();
        assert_eq!(cfg.opts.mode, Mode::Adaptive);
    }

    #[test]
    fn run_adaptive_mode_end_to_end() {
        let dir = std::env::temp_dir();
        let data = dir.join(format!("pmaxt-cli-adaptive-{}.tsv", std::process::id()));
        let out = dir.join(format!(
            "pmaxt-cli-adaptive-{}-result.tsv",
            std::process::id()
        ));
        cmd_generate(&GenerateConfig {
            output: data.clone(),
            genes: 40,
            n0: 5,
            n1: 5,
            diff: 0.05,
            effect: 4.0,
            na_rate: 0.0,
            seed: 6,
        })
        .unwrap();
        let mut opts = PmaxtOptions::default().permutations(2000);
        opts.mode = Mode::Adaptive;
        let cfg = RunConfig {
            input: data.clone(),
            opts,
            ranks: 1,
            minp: false,
            out: Some(out.clone()),
            top: 5,
            perm_file: None,
        };
        cmd_run(&cfg).unwrap();
        let table = std::fs::read_to_string(&out).unwrap();
        assert!(table.starts_with(
            "index\tteststat\tp_point\tp_lower\tp_upper\tscored\tstopped_at\ttail_p\ttail_good"
        ));
        assert_eq!(table.lines().count(), 41); // header + 40 genes

        // Adaptive refuses the exact-only combinations with a usage error.
        let mut minp_opts = PmaxtOptions::default().permutations(200);
        minp_opts.mode = Mode::Adaptive;
        let bad = RunConfig {
            input: data.clone(),
            opts: minp_opts,
            ranks: 1,
            minp: true,
            out: None,
            top: 5,
            perm_file: None,
        };
        assert!(matches!(cmd_run(&bad).unwrap_err(), CliError::Usage(_)));
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn run_minp_path_works() {
        let dir = std::env::temp_dir();
        let data = dir.join(format!("pmaxt-cli-minp-{}.tsv", std::process::id()));
        cmd_generate(&GenerateConfig {
            output: data.clone(),
            genes: 20,
            n0: 4,
            n1: 4,
            diff: 0.1,
            effect: 3.0,
            na_rate: 0.0,
            seed: 4,
        })
        .unwrap();
        let cfg = RunConfig {
            input: data.clone(),
            opts: PmaxtOptions::default().permutations(60),
            ranks: 1,
            minp: true,
            out: None,
            top: 3,
            perm_file: None,
        };
        cmd_run(&cfg).unwrap();
        std::fs::remove_file(&data).ok();
    }
}
