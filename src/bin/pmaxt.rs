//! `pmaxt` — command-line permutation testing over TSV datasets.
//!
//! The CLI equivalent of the paper's
//! `mpiexec -n NSLOTS R --no-save -f SPRINT_SCRIPT_NAME`:
//!
//! ```text
//! # make a demo dataset (600 genes, 8 + 8 samples)
//! pmaxt generate demo.tsv --genes 600 --n0 8 --n1 8 --seed 1
//!
//! # run the permutation test on 4 ranks and write the result table
//! pmaxt run demo.tsv --ranks 4 -B 10000 --test t --side abs --out result.tsv
//!
//! # step-down minP instead of maxT
//! pmaxt run demo.tsv -B 2000 --minp
//! ```
//!
//! Dataset format: the `microarray::io` TSV (`#classlabel` header + one row
//! per gene, `NA` for missing cells).

use std::path::PathBuf;
use std::process::ExitCode;

use microarray::io::{read_dataset, write_dataset};
use microarray::prelude::*;
use sprint_core::maxt::minp::pminp;
use sprint_core::maxt::MaxTResult;
use sprint_core::options::{KernelChoice, PmaxtOptions, SamplingMode, TestMethod};
use sprint_core::pmaxt::pmaxt;
use sprint_core::side::Side;

/// Parsed command line for `pmaxt run`.
#[derive(Debug, Clone, PartialEq)]
struct RunConfig {
    input: PathBuf,
    opts: PmaxtOptions,
    ranks: usize,
    minp: bool,
    out: Option<PathBuf>,
    top: usize,
}

/// Parsed command line for `pmaxt generate`.
#[derive(Debug, Clone, PartialEq)]
struct GenerateConfig {
    output: PathBuf,
    genes: usize,
    n0: usize,
    n1: usize,
    diff: f64,
    effect: f64,
    na_rate: f64,
    seed: u64,
}

fn usage() -> &'static str {
    "usage:\n  pmaxt run <data.tsv> [--test t|t.equalvar|wilcoxon|f|pairt|blockf]\n            [--side abs|upper|lower] [--fixed-seed y|n] [-B N (0=complete)]\n            [--nonpara y|n] [--na CODE] [--seed N] [--ranks N] [--minp]\n            [--kernel auto|scalar|fast] [--threads N (0=auto)] [--batch N (0=auto)]\n            [--out result.tsv] [--top N]\n  pmaxt generate <out.tsv> [--genes N] [--n0 N] [--n1 N] [--diff F]\n            [--effect F] [--na-rate F] [--seed N]"
}

fn parse_run(args: &[String]) -> Result<RunConfig, String> {
    let mut input = None;
    let mut opts = PmaxtOptions::default();
    let mut ranks = 1usize;
    let mut minp = false;
    let mut out = None;
    let mut top = 10usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--test" => {
                opts.test = TestMethod::parse(take("--test")?).map_err(|e| e.to_string())?
            }
            "--side" => opts.side = Side::parse(take("--side")?).map_err(|e| e.to_string())?,
            "--fixed-seed" => {
                opts.sampling =
                    SamplingMode::parse(take("--fixed-seed")?).map_err(|e| e.to_string())?
            }
            "-B" | "--permutations" => {
                opts.b = take("-B")?.parse().map_err(|e| format!("bad -B: {e}"))?
            }
            "--nonpara" => opts.nonpara = take("--nonpara")? == "y",
            "--na" => {
                opts.na = Some(
                    take("--na")?
                        .parse()
                        .map_err(|e| format!("bad --na: {e}"))?,
                )
            }
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--ranks" => {
                ranks = take("--ranks")?
                    .parse()
                    .map_err(|e| format!("bad --ranks: {e}"))?
            }
            "--kernel" => {
                opts.kernel = KernelChoice::parse(take("--kernel")?).map_err(|e| e.to_string())?
            }
            "--threads" => {
                opts.threads = take("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--batch" => {
                opts.batch = take("--batch")?
                    .parse()
                    .map_err(|e| format!("bad --batch: {e}"))?
            }
            "--minp" => minp = true,
            "--out" => out = Some(PathBuf::from(take("--out")?)),
            "--top" => {
                top = take("--top")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?
            }
            other if !other.starts_with('-') && input.is_none() => {
                input = Some(PathBuf::from(other))
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(RunConfig {
        input: input.ok_or("missing input dataset path")?,
        opts,
        ranks: ranks.max(1),
        minp,
        out,
        top,
    })
}

fn parse_generate(args: &[String]) -> Result<GenerateConfig, String> {
    let mut cfg = GenerateConfig {
        output: PathBuf::new(),
        genes: 600,
        n0: 8,
        n1: 8,
        diff: 0.05,
        effect: 2.0,
        na_rate: 0.0,
        seed: 1,
    };
    let mut have_out = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        macro_rules! num {
            ($flag:literal, $field:expr) => {{
                let v = take($flag)?;
                $field = v.parse().map_err(|e| format!("bad {}: {e}", $flag))?;
            }};
        }
        match a.as_str() {
            "--genes" => num!("--genes", cfg.genes),
            "--n0" => num!("--n0", cfg.n0),
            "--n1" => num!("--n1", cfg.n1),
            "--diff" => num!("--diff", cfg.diff),
            "--effect" => num!("--effect", cfg.effect),
            "--na-rate" => num!("--na-rate", cfg.na_rate),
            "--seed" => num!("--seed", cfg.seed),
            other if !other.starts_with('-') && !have_out => {
                cfg.output = PathBuf::from(other);
                have_out = true;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !have_out {
        return Err("missing output path".into());
    }
    Ok(cfg)
}

fn write_result_table(path: &std::path::Path, result: &MaxTResult) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "index\tteststat\trawp\tadjp")?;
    for row in result.by_significance() {
        writeln!(
            w,
            "{}\t{:.6}\t{:.6}\t{:.6}",
            row.index, row.teststat, row.rawp, row.adjp
        )?;
    }
    w.flush()
}

fn cmd_run(cfg: &RunConfig) -> Result<(), String> {
    let (data, labels) =
        read_dataset(&cfg.input).map_err(|e| format!("reading {:?}: {e}", cfg.input))?;
    eprintln!(
        "loaded {} genes x {} samples; test={} side={} B={} ranks={}{}",
        data.rows(),
        data.cols(),
        cfg.opts.test.as_str(),
        cfg.opts.side.as_str(),
        cfg.opts.b,
        cfg.ranks,
        if cfg.minp { " (minP)" } else { "" }
    );
    let t0 = std::time::Instant::now();
    let result = if cfg.minp {
        pminp(&data, &labels, &cfg.opts, None, cfg.ranks).map_err(|e| e.to_string())?
    } else {
        pmaxt(&data, &labels, &cfg.opts, cfg.ranks)
            .map_err(|e| e.to_string())?
            .result
    };
    eprintln!(
        "done: B = {} permutations in {:.2?}",
        result.b_used,
        t0.elapsed()
    );
    println!(
        "{:>6} {:>12} {:>9} {:>9}",
        "index", "teststat", "rawp", "adjp"
    );
    for row in result.by_significance().take(cfg.top) {
        println!(
            "{:>6} {:>12.4} {:>9.5} {:>9.5}",
            row.index, row.teststat, row.rawp, row.adjp
        );
    }
    if let Some(out) = &cfg.out {
        write_result_table(out, &result).map_err(|e| format!("writing {out:?}: {e}"))?;
        eprintln!("full table written to {out:?}");
    }
    Ok(())
}

fn cmd_generate(cfg: &GenerateConfig) -> Result<(), String> {
    let ds = SynthConfig::two_class(cfg.genes, cfg.n0, cfg.n1)
        .diff_fraction(cfg.diff)
        .effect_size(cfg.effect)
        .na_rate(cfg.na_rate)
        .seed(cfg.seed)
        .generate();
    write_dataset(&cfg.output, &ds.matrix, &ds.labels)
        .map_err(|e| format!("writing {:?}: {e}", cfg.output))?;
    eprintln!(
        "wrote {} genes x {} samples ({} planted differential) to {:?}",
        ds.matrix.rows(),
        ds.matrix.cols(),
        ds.truth.iter().filter(|&&t| t).count(),
        cfg.output
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("run") => parse_run(&args[1..]).and_then(|cfg| cmd_run(&cfg)),
        Some("generate") => parse_generate(&args[1..]).and_then(|cfg| cmd_generate(&cfg)),
        _ => Err(usage().to_string()),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_run_defaults() {
        let cfg = parse_run(&strs(&["data.tsv"])).unwrap();
        assert_eq!(cfg.input, PathBuf::from("data.tsv"));
        assert_eq!(cfg.opts, PmaxtOptions::default());
        assert_eq!(cfg.ranks, 1);
        assert!(!cfg.minp);
        assert_eq!(cfg.top, 10);
    }

    #[test]
    fn parse_run_full_flags() {
        let cfg = parse_run(&strs(&[
            "d.tsv",
            "--test",
            "wilcoxon",
            "--side",
            "upper",
            "--fixed-seed",
            "n",
            "-B",
            "500",
            "--nonpara",
            "y",
            "--na",
            "-999",
            "--seed",
            "7",
            "--ranks",
            "4",
            "--minp",
            "--kernel",
            "scalar",
            "--threads",
            "3",
            "--batch",
            "16",
            "--out",
            "r.tsv",
            "--top",
            "25",
        ]))
        .unwrap();
        assert_eq!(cfg.opts.test, TestMethod::Wilcoxon);
        assert_eq!(cfg.opts.kernel, KernelChoice::Scalar);
        assert_eq!(cfg.opts.side, Side::Upper);
        assert_eq!(cfg.opts.sampling, SamplingMode::Stored);
        assert_eq!(cfg.opts.b, 500);
        assert!(cfg.opts.nonpara);
        assert_eq!(cfg.opts.na, Some(-999.0));
        assert_eq!(cfg.opts.seed, 7);
        assert_eq!(cfg.opts.threads, 3);
        assert_eq!(cfg.opts.batch, 16);
        assert_eq!(cfg.ranks, 4);
        assert!(cfg.minp);
        assert_eq!(cfg.out, Some(PathBuf::from("r.tsv")));
        assert_eq!(cfg.top, 25);
    }

    #[test]
    fn parse_run_rejects_garbage() {
        assert!(parse_run(&strs(&["--test"])).is_err());
        assert!(parse_run(&strs(&["d.tsv", "--bogus"])).is_err());
        assert!(parse_run(&strs(&["d.tsv", "--test", "zzz"])).is_err());
        assert!(parse_run(&strs(&[])).is_err());
    }

    #[test]
    fn parse_generate_round_trip() {
        let cfg = parse_generate(&strs(&[
            "out.tsv",
            "--genes",
            "100",
            "--n0",
            "5",
            "--n1",
            "6",
            "--diff",
            "0.2",
            "--effect",
            "3.0",
            "--na-rate",
            "0.1",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(cfg.genes, 100);
        assert_eq!(cfg.n0, 5);
        assert_eq!(cfg.n1, 6);
        assert_eq!(cfg.diff, 0.2);
        assert_eq!(cfg.effect, 3.0);
        assert_eq!(cfg.na_rate, 0.1);
        assert_eq!(cfg.seed, 9);
        assert!(parse_generate(&strs(&["--genes", "5"])).is_err());
    }

    #[test]
    fn generate_then_run_end_to_end() {
        let dir = std::env::temp_dir();
        let data = dir.join(format!("pmaxt-cli-{}.tsv", std::process::id()));
        let out = dir.join(format!("pmaxt-cli-{}-result.tsv", std::process::id()));
        cmd_generate(&GenerateConfig {
            output: data.clone(),
            genes: 50,
            n0: 5,
            n1: 5,
            diff: 0.1,
            effect: 3.0,
            na_rate: 0.02,
            seed: 3,
        })
        .unwrap();
        let cfg = RunConfig {
            input: data.clone(),
            opts: PmaxtOptions::default().permutations(100),
            ranks: 2,
            minp: false,
            out: Some(out.clone()),
            top: 5,
        };
        cmd_run(&cfg).unwrap();
        let table = std::fs::read_to_string(&out).unwrap();
        assert!(table.starts_with("index\tteststat\trawp\tadjp"));
        assert_eq!(table.lines().count(), 51); // header + 50 genes
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn run_minp_path_works() {
        let dir = std::env::temp_dir();
        let data = dir.join(format!("pmaxt-cli-minp-{}.tsv", std::process::id()));
        cmd_generate(&GenerateConfig {
            output: data.clone(),
            genes: 20,
            n0: 4,
            n1: 4,
            diff: 0.1,
            effect: 3.0,
            na_rate: 0.0,
            seed: 4,
        })
        .unwrap();
        let cfg = RunConfig {
            input: data.clone(),
            opts: PmaxtOptions::default().permutations(60),
            ranks: 1,
            minp: true,
            out: None,
            top: 3,
        };
        cmd_run(&cfg).unwrap();
        std::fs::remove_file(&data).ok();
    }
}
