//! The extension procedures beyond the paper: step-down **minP** (the
//! companion `multtest` adjustment) and **sequential early stopping**
//! (Besag–Clifford style), compared against maxT on the same data — plus
//! `pcor`, the SPRINT library's original parallel correlation function.

use microarray::prelude::*;
use sprint::driver::standard_registry;
use sprint::framework::Sprint;
use sprint::pcor::call_pcor;
use sprint_core::maxt::minp::mt_minp;
use sprint_core::maxt::sequential::sequential_rawp;
use sprint_core::prelude::*;

fn main() {
    let ds = SynthConfig::two_class(300, 9, 9)
        .diff_fraction(0.07)
        .effect_size(2.5)
        .seed(90)
        .generate();
    let opts = PmaxtOptions::default().permutations(4_000);

    // maxT (the paper's procedure) vs minP (extension): same raw p-values,
    // differently balanced adjustments.
    let maxt = mt_maxt(&ds.matrix, &ds.labels, &opts).expect("maxT");
    let minp = mt_minp(&ds.matrix, &ds.labels, &opts, None).expect("minP");
    println!(
        "maxT vs minP on {} genes (B = {}):",
        ds.matrix.rows(),
        opts.b
    );
    println!(
        "{:>6} {:>10} {:>9} {:>11} {:>11} {:>8}",
        "gene", "teststat", "rawp", "adjp(maxT)", "adjp(minP)", "planted"
    );
    for row in maxt.by_significance().take(8) {
        println!(
            "{:>6} {:>10.3} {:>9.5} {:>11.5} {:>11.5} {:>8}",
            row.index,
            row.teststat,
            row.rawp,
            row.adjp,
            minp.adjp[row.index],
            if ds.truth[row.index] { "yes" } else { "no" }
        );
    }
    let agree = maxt
        .rawp
        .iter()
        .zip(&minp.rawp)
        .filter(|(a, b)| (*a - *b).abs() < 1e-12)
        .count();
    println!(
        "raw p-values agree on {agree}/{} genes (identical by definition)\n",
        ds.matrix.rows()
    );

    // Sequential early stopping: same answer for the boring genes at a
    // fraction of the permutations.
    let seq = sequential_rawp(&ds.matrix, &ds.labels, &opts, 15, opts.b).expect("sequential");
    println!(
        "sequential stopping (h = 15): consumed {} of {} permutations (stopped early: {})",
        seq.b_done, opts.b, seq.stopped_early
    );
    let max_dev = seq
        .rawp
        .iter()
        .zip(&maxt.rawp)
        .filter(|(a, b)| !a.is_nan() && !b.is_nan() && **b > 0.05)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |sequential − fixed-B| over non-significant genes: {max_dev:.4}\n");

    // pcor through the framework: correlation of the top differential genes.
    let top: Vec<usize> = maxt.by_significance().take(6).map(|r| r.index).collect();
    let mut sub = Vec::new();
    for &g in &top {
        sub.extend_from_slice(ds.matrix.row(g));
    }
    let sub_matrix = Matrix::from_vec(top.len(), ds.matrix.cols(), sub).expect("submatrix");
    let n = top.len();
    let cor = Sprint::new(standard_registry())
        .run(3, move |master| call_pcor(master, sub_matrix))
        .expect("pcor run");
    println!("pcor(3 ranks): correlation of the top {n} genes:");
    for i in 0..n {
        let row: Vec<String> = (0..n).map(|j| format!("{:+.2}", cor[i * n + j])).collect();
        println!("  gene {:>4}: {}", top[i], row.join(" "));
    }
}
