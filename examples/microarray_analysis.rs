//! A full microarray analysis workflow — the use case the paper's
//! introduction motivates: a biostatistician pre-processes an expression
//! matrix, picks a statistic per experimental design, and runs permutation
//! testing through the SPRINT framework with no HPC knowledge required.
//!
//! Exercises: NA handling, non-expressed-gene filtering, three different
//! experimental designs (two-class Welch t, multi-class F, paired t),
//! non-parametric mode, and the SPRINT master/worker framework.

use microarray::design::LabelDesign;
use microarray::prelude::*;
use sprint::driver::{call_pmaxt, standard_registry};
use sprint::framework::Sprint;
use sprint_core::prelude::*;

fn summarize(name: &str, result: &MaxTResult, truth: Option<&[bool]>) {
    let hits = result.significant_at(0.05);
    match truth {
        Some(t) => {
            let tp = hits.iter().filter(|&&g| t[g]).count();
            let planted = t.iter().filter(|&&x| x).count();
            println!(
                "{name}: {} hits at adj p<=0.05 ({tp}/{planted} planted recovered, {} false)",
                hits.len(),
                hits.len() - tp
            );
        }
        None => println!("{name}: {} hits at adj p<=0.05", hits.len()),
    }
}

fn two_class_with_preprocessing() {
    println!("--- two-class Welch t with NA cells and expression filtering ---");
    // 2000 probes, 2% missing cells, 8 vs 8 samples.
    let raw = SynthConfig::two_class(2_000, 8, 8)
        .diff_fraction(0.05)
        .effect_size(2.5)
        .na_rate(0.02)
        .seed(1001)
        .generate();
    println!(
        "raw matrix: {} probes, {} NA cells",
        raw.matrix.rows(),
        raw.matrix.na_count()
    );
    // Pre-processing: drop non-expressed probes (the paper's 6102-row matrix
    // is the survivor set of exactly this step).
    let filtered = filter_non_expressed(&raw.matrix, 6.0, 0.01);
    println!("after filtering: {} probes", filtered.matrix.rows());
    let truth: Vec<bool> = filtered.kept.iter().map(|&g| raw.truth[g]).collect();

    let opts = PmaxtOptions::default().permutations(5_000);
    let result = mt_maxt(&filtered.matrix, &raw.labels, &opts).expect("run");
    summarize("welch-t", &result, Some(&truth));

    // The Wilcoxon variant is robust to the log-scale assumption entirely.
    let wilcoxon = mt_maxt(
        &filtered.matrix,
        &raw.labels,
        &PmaxtOptions::default()
            .test(TestMethod::Wilcoxon)
            .permutations(5_000),
    )
    .expect("run");
    summarize("wilcoxon", &wilcoxon, Some(&truth));
    // With only 8+8 samples the rank-sum statistic is so discrete that its
    // best achievable value recurs in the null maximum over ~1600 genes, so
    // maxT-adjusted significance at 0.05 is mathematically out of reach —
    // compare the *ranking* instead:
    let top_planted = wilcoxon
        .by_significance()
        .take(50)
        .filter(|row| truth[row.index])
        .count();
    println!(
        "wilcoxon still ranks the signal on top: {top_planted}/50 of its top-50 genes are planted"
    );
}

fn multi_class_f() {
    println!("--- three-dose design, F statistic, through the SPRINT framework ---");
    let ds = SynthConfig::new(
        800,
        LabelDesign::MultiClass {
            counts: vec![6, 6, 6],
        },
    )
    .diff_fraction(0.08)
    .effect_size(1.2)
    .seed(1002)
    .generate();
    let opts = PmaxtOptions::default()
        .test(TestMethod::F)
        .permutations(3_000);
    // Run exactly as an R user would through SPRINT: a master script calling
    // the parallel function on 4 ranks.
    let (matrix, labels, truth) = (ds.matrix.clone(), ds.labels.clone(), ds.truth.clone());
    let result = Sprint::new(standard_registry())
        .run(4, move |master| call_pmaxt(master, matrix, &labels, &opts))
        .expect("framework run");
    summarize("f-test(4 ranks)", &result, Some(&truth));
}

fn paired_design() {
    println!("--- before/after paired design, paired t, complete enumeration ---");
    // 12 patients sampled before and after treatment: 2^12 = 4096 complete
    // sign-flip permutations (B = 0 requests them all).
    let ds = SynthConfig::new(600, LabelDesign::Paired { pairs: 12 })
        .diff_fraction(0.05)
        .effect_size(1.5)
        .seed(1003)
        .generate();
    let opts = PmaxtOptions::default()
        .test(TestMethod::PairT)
        .permutations(0);
    let result = mt_maxt(&ds.matrix, &ds.labels, &opts).expect("run");
    println!("complete enumeration used B = {}", result.b_used);
    summarize("paired-t", &result, Some(&ds.truth));

    // Non-parametric variant: rank-transform first.
    let nonpara = mt_maxt(
        &ds.matrix,
        &ds.labels,
        &PmaxtOptions::default()
            .test(TestMethod::PairT)
            .permutations(0)
            .nonpara(true),
    )
    .expect("run");
    summarize("paired-t nonpara", &nonpara, Some(&ds.truth));
}

fn main() {
    two_class_with_preprocessing();
    println!();
    multi_class_f();
    println!();
    paired_design();
}
