//! The permutation-distribution scheme of Figure 2 made visible, plus a real
//! local scaling run.
//!
//! Prints how the permutation indices are split into equal chunks with the
//! master owning the special first (identity) permutation and every worker
//! forwarding its generator with skip-ahead — then verifies on a live run
//! that every split of the same B produces bit-identical p-values.

use microarray::prelude::*;
use sprint_core::pmaxt::chunk_for_rank;
use sprint_core::prelude::*;

fn print_figure2(b: u64, procs: u64) {
    println!("Figure 2 layout: B = {b} permutations over {procs} processes");
    println!("(permutation 1 is the observed labelling; only the master counts it)");
    for rank in 0..procs {
        let (start, take) = chunk_for_rank(b, procs, rank).expect("procs <= B in the figure");
        let role = if rank == 0 { "master" } else { "worker" };
        // Present 1-based indices as the figure does.
        if rank == 0 {
            println!(
                "  process {rank} ({role:6}): permutation 1 + permutations {}..={}",
                start + 2,
                start + take
            );
        } else {
            println!(
                "  process {rank} ({role:6}): skip, then permutations {}..={}",
                start + 1,
                start + take
            );
        }
    }
    println!();
}

fn main() {
    // The figure's own numbers: 23 permutations over 3 processes.
    print_figure2(23, 3);
    // The paper's benchmark configuration.
    print_figure2(150_000, 512);

    // Live check: many different rank counts, one answer.
    let ds = SynthConfig::two_class(300, 38, 38)
        .diff_fraction(0.05)
        .seed(77)
        .generate();
    let opts = PmaxtOptions::default().permutations(2_000);
    println!(
        "live run: {} genes x {} samples, B = {}",
        ds.matrix.rows(),
        ds.matrix.cols(),
        opts.b
    );
    let reference = mt_maxt(&ds.matrix, &ds.labels, &opts).expect("serial");
    println!(
        "{:>6} {:>12} {:>10} {:>12}",
        "ranks", "kernel(s)", "total(s)", "identical?"
    );
    for ranks in [1usize, 2, 3, 4, 6, 8] {
        let t0 = std::time::Instant::now();
        let run = pmaxt(&ds.matrix, &ds.labels, &opts, ranks).expect("parallel");
        let total = t0.elapsed().as_secs_f64();
        let kernel = run
            .profile
            .seconds(sprint_core::pmaxt::sections::MAIN_KERNEL);
        println!(
            "{:>6} {:>12.3} {:>10.3} {:>12}",
            ranks,
            kernel,
            total,
            if run.result == reference {
                "yes"
            } else {
                "NO!"
            }
        );
        assert_eq!(run.result, reference);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n(ranks are threads on this {cores}-core machine; kernel seconds are the \
         master's wall clock and include time-sharing when ranks > cores)"
    );
}
