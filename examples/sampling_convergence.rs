//! Monte-Carlo vs complete enumeration: the two generator families of
//! mt.maxT/pmaxT (paper §3.1) answer the same question at different costs.
//!
//! For a small design the complete permutation distribution is enumerable
//! (B = 0), giving *exact* p-values. Random sampling (B > 0) must converge to
//! those exact values as B grows — this example measures the convergence and
//! also compares the fixed-seed and stored sampling modes.

use microarray::prelude::*;
use sprint_core::prelude::*;

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .filter(|(x, y)| !x.is_nan() && !y.is_nan())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn main() {
    // 6 + 6 samples: C(12,6) = 924 complete relabellings — enumerable.
    let ds = SynthConfig::two_class(250, 6, 6)
        .diff_fraction(0.08)
        .effect_size(2.0)
        .seed(31)
        .generate();

    let exact = mt_maxt(
        &ds.matrix,
        &ds.labels,
        &PmaxtOptions::default().permutations(0),
    )
    .expect("complete enumeration");
    println!(
        "exact: complete enumeration of B = {} relabellings of {} genes",
        exact.b_used,
        exact.genes()
    );
    let exact_hits = exact.significant_at(0.05).len();
    println!("exact hits at adj p<=0.05: {exact_hits}\n");

    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "B", "max|rawp-exact|", "max|adjp-exact|", "hits@0.05"
    );
    for b in [500u64, 2_000, 8_000, 32_000] {
        let mc = mt_maxt(
            &ds.matrix,
            &ds.labels,
            &PmaxtOptions::default().permutations(b).seed(7),
        )
        .expect("sampled run");
        println!(
            "{:>8} {:>16.5} {:>16.5} {:>10}",
            b,
            max_abs_diff(&mc.rawp, &exact.rawp),
            max_abs_diff(&mc.adjp, &exact.adjp),
            mc.significant_at(0.05).len()
        );
    }

    // The two sampling modes draw different streams but estimate the same
    // distribution.
    println!("\nfixed-seed vs stored sampling at B = 8000:");
    let fly = mt_maxt(
        &ds.matrix,
        &ds.labels,
        &PmaxtOptions::default().permutations(8_000),
    )
    .expect("on-the-fly");
    let stored = mt_maxt(
        &ds.matrix,
        &ds.labels,
        &PmaxtOptions::default()
            .permutations(8_000)
            .fixed_seed_sampling("n")
            .expect("valid option"),
    )
    .expect("stored");
    println!(
        "  max|rawp difference| between modes: {:.5} (independent Monte-Carlo streams)",
        max_abs_diff(&fly.rawp, &stored.rawp)
    );
    println!(
        "  both within Monte-Carlo error of exact: {:.5} / {:.5}",
        max_abs_diff(&fly.rawp, &exact.rawp),
        max_abs_diff(&stored.rawp, &exact.rawp)
    );

    // And the parallel version agrees with the serial one under sampling too.
    let par = pmaxt(
        &ds.matrix,
        &ds.labels,
        &PmaxtOptions::default().permutations(8_000),
        4,
    )
    .expect("parallel");
    assert_eq!(par.result, fly);
    println!("\npmaxT(4 ranks) at B = 8000 is bit-identical to mt.maxT ✓");
}
