//! Reproduce the paper's platform study: Tables I–V, Table VI and Figure 3
//! from the calibrated platform models, plus the model-vs-paper error
//! summary.
//!
//! This is the "life scientist chooses a platform" story of §5: exercise the
//! workflow on a cheap platform, then scale the same analysis to a
//! supercomputer — the simulator shows what each platform would deliver.

use cluster_sim::figure::{ascii_plot, figure3_series};
use cluster_sim::platform::{ec2, ecdf, hector, ness, quadcore};
use cluster_sim::tables::{format_table6, profile_table, table6};
use cluster_sim::{compare, simulate, Workload, REFERENCE};

fn main() {
    for (label, plat) in [
        ("Table I", hector()),
        ("Table II", ecdf()),
        ("Table III", ec2()),
        ("Table IV", ness()),
        ("Table V", quadcore()),
    ] {
        println!("=== {label}: {} ===", plat.name);
        print!("{}", profile_table(&plat));
        println!();
    }

    println!("=== Table VI: large workloads on 256 HECToR processes ===");
    print!("{}", format_table6(&table6(&hector(), 256), 256));
    println!();

    println!("=== Figure 3 ===");
    print!("{}", ascii_plot(&figure3_series(), 72, 22));
    println!();

    // The decision the paper's conclusion describes: how long would *your*
    // analysis take on each platform at its maximum size?
    println!("=== 'Scale up your workflow': 1M permutations on 36,612 genes ===");
    let w = Workload::new(36_612, 1_000_000);
    for plat in [quadcore(), ness(), ec2(), ecdf(), hector()] {
        let p = *plat.proc_counts.last().unwrap();
        let t = simulate(&plat, w, p).total();
        let t1 = simulate(&plat, w, 1).total();
        println!(
            "{:<12} {:>4} procs: {:>9.1} s  (serial estimate {:>9.0} s, {:>5.1}x)",
            plat.name,
            p,
            t,
            t1,
            t1 / t
        );
    }
    println!();

    // Model fidelity summary.
    let mut worst_kernel = 0.0f64;
    let mut worst_speedup = 0.0f64;
    let mut cells = 0usize;
    for (_, rows) in compare::compare_all() {
        for r in rows {
            worst_kernel = worst_kernel.max(r.kernel_rel_error());
            worst_speedup = worst_speedup.max(r.speedup_rel_error());
            cells += 1;
        }
    }
    println!(
        "model vs paper over {cells} published cells (reference workload {}x{}, B={}):",
        REFERENCE.genes, REFERENCE.samples, REFERENCE.permutations
    );
    println!(
        "  worst kernel-time error {:.1}%, worst total-speedup error {:.1}%",
        100.0 * worst_kernel,
        100.0 * worst_speedup
    );
}
