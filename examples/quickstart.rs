//! Quickstart: the Rust spelling of the paper's R session.
//!
//! ```text
//! mpiexec -n NSLOTS R --no-save -f script.R     # the paper
//! cargo run --example quickstart                # this reproduction
//! ```
//!
//! Generates a small synthetic microarray, runs the serial `mt.maxT`
//! reference and the parallel `pmaxT` on four ranks, shows they agree
//! bit-for-bit, and prints the top of the significance table.

use microarray::prelude::*;
use sprint_core::prelude::*;

fn main() {
    // A 500-gene, 10+10-sample two-class experiment with 10% truly
    // differential genes planted at 2.0 log2-fold change.
    let dataset = SynthConfig::two_class(500, 10, 10)
        .diff_fraction(0.10)
        .effect_size(2.0)
        .seed(42)
        .generate();
    println!(
        "dataset: {} genes x {} samples ({:.2} MB), {} planted differential genes",
        dataset.matrix.rows(),
        dataset.matrix.cols(),
        dataset.megabytes(),
        dataset.truth.iter().filter(|&&t| t).count()
    );

    // The R default call: pmaxT(X, classlabel, test="t", side="abs",
    // fixed.seed.sampling="y", B=10000).
    let opts = PmaxtOptions::default().permutations(10_000);

    // Serial reference (mt.maxT)…
    let t0 = std::time::Instant::now();
    let serial = mt_maxt(&dataset.matrix, &dataset.labels, &opts).expect("serial run");
    let serial_time = t0.elapsed();

    // …and the parallel version on 4 ranks.
    let t0 = std::time::Instant::now();
    let parallel = pmaxt(&dataset.matrix, &dataset.labels, &opts, 4).expect("parallel run");
    let parallel_time = t0.elapsed();

    assert_eq!(
        parallel.result, serial,
        "pmaxT reproduces mt.maxT bit-for-bit"
    );
    println!("serial {serial_time:?}, parallel(4 ranks) {parallel_time:?} — results identical\n");

    println!("top 10 genes by adjusted p-value (the mt.maxT data frame):");
    println!(
        "{:>6} {:>10} {:>9} {:>9} {:>8}",
        "index", "teststat", "rawp", "adjp", "planted"
    );
    for row in serial.by_significance().take(10) {
        println!(
            "{:>6} {:>10.4} {:>9.5} {:>9.5} {:>8}",
            row.index,
            row.teststat,
            row.rawp,
            row.adjp,
            if dataset.truth[row.index] {
                "yes"
            } else {
                "no"
            }
        );
    }

    let hits = serial.significant_at(0.05);
    let true_hits = hits.iter().filter(|&&g| dataset.truth[g]).count();
    println!(
        "\n{} genes significant at adjusted p <= 0.05; {true_hits} of them are planted",
        hits.len()
    );
}
