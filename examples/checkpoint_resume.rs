//! Fault tolerance (future-work item 1): a long permutation run is
//! interrupted mid-flight, then resumed from its checkpoint file and finishes
//! with p-values bit-identical to an uninterrupted run.

use microarray::prelude::*;
use sprint::checkpoint::{load, run_with_checkpoints};
use sprint_core::prelude::*;

fn main() {
    let ds = SynthConfig::two_class(400, 10, 10)
        .diff_fraction(0.08)
        .effect_size(2.0)
        .seed(4242)
        .generate();
    let opts = PmaxtOptions::default().permutations(8_000);
    let path = std::env::temp_dir().join(format!("pmaxt-demo-{}.ckpt", std::process::id()));

    println!(
        "workload: {} genes, B = {}; checkpoint every 1000 permutations",
        ds.matrix.rows(),
        opts.b
    );

    // Session 1: process 3500 permutations, then "crash".
    let (partial, info) =
        run_with_checkpoints(&ds.matrix, &ds.labels, &opts, &path, 1_000, Some(3_500))
            .expect("session 1");
    assert!(partial.is_none());
    println!(
        "session 1: processed 3500 permutations, wrote {} checkpoints, then 'crashed'",
        info.checkpoints_written
    );
    let state = load(&path).expect("readable").expect("present");
    println!(
        "checkpoint on disk: cursor = {} of {}, counts for {} genes",
        state.cursor,
        state.b,
        state.counts.genes()
    );

    // Session 2: resume and finish.
    let (finished, info) =
        run_with_checkpoints(&ds.matrix, &ds.labels, &opts, &path, 1_000, None).expect("session 2");
    let resumed = finished.expect("complete");
    println!(
        "session 2: resumed from permutation {}, finished the remaining {}",
        info.resumed_from,
        opts.b - info.resumed_from
    );
    assert!(!path.exists(), "checkpoint removed after completion");

    // The moment of truth.
    let direct = mt_maxt(&ds.matrix, &ds.labels, &opts).expect("uninterrupted run");
    assert_eq!(resumed, direct);
    println!("resumed result is bit-identical to an uninterrupted run ✓");

    let top = resumed.by_significance().next().expect("some gene");
    println!(
        "top gene: index {} (teststat {:.3}, adj p = {:.5})",
        top.index, top.teststat, top.adjp
    );
}
