//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the *small slice* of the `parking_lot` API it actually uses: a
//! `Mutex`/`RwLock` whose `lock()` returns the guard directly (no poisoning).
//! Backed by `std::sync`; a poisoned lock is recovered rather than propagated,
//! matching `parking_lot`'s no-poisoning semantics.

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive with `parking_lot`'s panic-safe `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-safe accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
