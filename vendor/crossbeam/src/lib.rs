//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by this
//! workspace (the MPI mesh simulator). This shim provides an unbounded MPMC
//! channel over `Mutex<VecDeque>` + `Condvar` with crossbeam's disconnect
//! semantics: `recv` blocks until a message or all senders drop; `try_recv`
//! returns an error when the queue is empty or disconnected.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers have dropped.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders have dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Push a message; fails only when every receiver has dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Pop a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            if let Some(v) = state.items.pop_front() {
                Ok(v)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn try_recv_empty_then_disconnected() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(9));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cross_thread_send_recv() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        handle.join().unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
