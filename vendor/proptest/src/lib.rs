//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors the
//! slice of proptest it uses: `Strategy` (ranges, tuples, `Just`,
//! `collection::vec`, `prop_flat_map`, `prop_map`, `any::<bool>()`), the
//! `proptest!` macro with optional `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from upstream, deliberate for this environment:
//!
//! - **Deterministic**: every test's RNG is seeded from a hash of its module
//!   path and name, so runs are reproducible with no persistence files and no
//!   flakes. Upstream's random re-seeding and failure-persistence directory
//!   are omitted.
//! - **No shrinking**: a failing case reports its inputs' case index; given
//!   determinism, re-running reproduces it exactly.

use std::ops::Range;

/// Deterministic generator used to drive strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier (stable FNV-1a hash of the name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let r = self.next_u64();
            if r <= zone {
                return r % bound;
            }
        }
    }
}

/// A recipe for producing random values of an associated type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Chain: use a drawn value to build a follow-up strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Transform drawn values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + rng.next_unit_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                let draw = if span == 0 {
                    rng.next_u64() // full-width range (wrapped abs_diff)
                } else {
                    rng.next_below(span)
                };
                self.start.wrapping_add(draw as $ty)
            }
        }
    )*};
}

impl_strategy_for_int_range!(u64, usize, i64, u32, i32, u8, u16);

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy carrier for [`Arbitrary`] primitives.
#[derive(Debug, Default, Clone)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}

impl Strategy for AnyPrimitive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u64 {
    type Strategy = AnyPrimitive<u64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for a `Vec` of fixed length drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `len` independent draws from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true` with probability `probability`.
    pub struct Weighted {
        probability: f64,
    }

    /// `true` with the given probability in `[0, 1]`.
    pub fn weighted(probability: f64) -> Weighted {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability out of range"
        );
        Weighted { probability }
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            // 53-bit uniform unit draw, as elsewhere in the shim.
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            unit < self.probability
        }
    }
}

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Define property tests: each `fn` runs `config.cases` deterministic random
/// cases, drawing every `pat in strategy` binding fresh per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        msg
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure reports the drawn case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assert_eq failed: {:?} != {:?}",
                left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assert_eq failed: {:?} != {:?}: {}",
                left,
                right,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = super::TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = super::TestRng::for_test("x");
        let mut b = super::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn flat_map_and_collection_vec() {
        let strat =
            (1usize..4).prop_flat_map(|n| (Just(n), crate::collection::vec(0.0f64..1.0, n)));
        let mut rng = super::TestRng::for_test("flat_map");
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_and_asserts(
            x in 0u64..10,
            flag in any::<bool>(),
        ) {
            prop_assert!(x < 10, "x={x}");
            prop_assert_eq!(u64::from(flag) * 10 + x < 20, true);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(v in crate::collection::vec(-1.0f64..1.0, 5)) {
            prop_assert_eq!(v.len(), 5);
        }
    }
}
