//! Offline stand-in for the `rayon` crate.
//!
//! Provides the slice of rayon used by this workspace — `ThreadPoolBuilder`,
//! `ThreadPool::install`, and `slice.par_iter().map(f).collect::<Vec<_>>()` —
//! with genuine parallelism via `std::thread::scope`. Each `map` closure runs
//! on one of N OS threads (N = the installed pool's size, default = available
//! parallelism), and `collect` preserves input order, so results are
//! positionally identical to the sequential evaluation.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static CURRENT_POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error from [`ThreadPoolBuilder::build`]; this shim never produces one, the
/// type exists so callers can keep their `Result` handling.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count; 0 means "use available parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Construct the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical pool: it carries a thread budget that `install` makes current.
/// Worker threads are spawned per parallel operation (scoped), not kept alive,
/// which keeps the shim simple while preserving the degree of parallelism.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Number of worker threads this pool represents.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool as the ambient pool for `par_iter` calls.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        CURRENT_POOL_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.num_threads);
            let out = op();
            c.set(prev);
            out
        })
    }
}

fn ambient_threads() -> usize {
    let n = CURRENT_POOL_THREADS.with(|c| c.get());
    if n == 0 {
        default_threads()
    } else {
        n
    }
}

/// Parallel-iterator adaptor over a slice (produced by `par_iter`).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// `ParIter` followed by a `map`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Evaluate the map on the ambient pool's threads, preserving order.
    pub fn collect<C: FromParallel<R>>(self) -> C {
        let n = self.items.len();
        let workers = ambient_threads().min(n).max(1);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        if workers <= 1 {
            for (slot, item) in out.iter_mut().zip(self.items) {
                *slot = Some((self.f)(item));
            }
        } else {
            let next = AtomicUsize::new(0);
            let items = self.items;
            let f = &self.f;
            // Hand each worker a striped view of the output slots; claims go
            // through an atomic cursor so threads steal work, not fixed chunks.
            let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
                out.iter_mut().map(std::sync::Mutex::new).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let value = f(&items[i]);
                        **slots[i].lock().unwrap() = Some(value);
                    });
                }
            });
            drop(slots);
        }
        C::from_ordered(
            out.into_iter()
                .map(|slot| slot.expect("parallel map produced every slot")),
        )
    }
}

/// Collection types `ParMap::collect` can build.
pub trait FromParallel<R> {
    /// Build from results in input order.
    fn from_ordered(iter: impl Iterator<Item = R>) -> Self;
}

impl<R> FromParallel<R> for Vec<R> {
    fn from_ordered(iter: impl Iterator<Item = R>) -> Self {
        iter.collect()
    }
}

/// Traits that give slices/Vecs the `par_iter` entry point.
pub mod prelude {
    use super::ParIter;

    /// Conversion into a parallel iterator over `&T`.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type yielded by reference.
        type Item: Sync + 'a;
        /// Create the parallel iterator.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..97).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let doubled: Vec<u64> = pool.install(|| input.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled, (0..97).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let input: Vec<usize> = (0..64).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let _: Vec<()> = pool.install(|| {
            input
                .par_iter()
                .map(|_| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_millis(1));
                })
                .collect()
        });
        assert!(ids.lock().unwrap().len() > 1, "expected >1 worker thread");
    }

    #[test]
    fn single_thread_pool_works() {
        let input = vec![1, 2, 3];
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<i32> = pool.install(|| input.par_iter().map(|&x| x + 1).collect());
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn works_without_install() {
        let input = vec![5u8, 6, 7];
        let out: Vec<u8> = input.par_iter().map(|&x| x).collect();
        assert_eq!(out, input);
    }
}
