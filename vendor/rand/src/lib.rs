//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment cannot reach crates.io, so the workspace vendors the
//! slice of `rand` it uses: the `Rng` trait with `random_range` over float and
//! integer ranges, `SeedableRng::seed_from_u64`, and a deterministic
//! `rngs::StdRng`. The generator is xoshiro256** seeded via splitmix64 — a
//! high-quality, well-published construction; it is *not* the upstream ChaCha
//! StdRng, so streams differ from crates.io `rand`, but every consumer in this
//! workspace only requires determinism per seed and sound distributions.

use std::ops::Range;

/// Types that can be sampled from uniformly over a half-open range.
///
/// Implemented for the primitive types this workspace draws: `f64`, `u64`,
/// `usize`, `i64`, `u32`, `i32`.
pub trait SampleUniform: Sized {
    /// Draw a value uniformly from `range` using `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range in random_range");
        // 53 random bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = range.start + unit * (range.end - range.start);
        // Guard against rounding up to the excluded endpoint.
        if v < range.end {
            v
        } else {
            range.start
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<$ty>) -> $ty {
                assert!(range.start < range.end, "empty range in random_range");
                let span = range.end.abs_diff(range.start) as u64;
                // Debiased multiply-shift (Lemire); span == 0 cannot happen for
                // a non-empty Range of these widths except the full u64 span,
                // where abs_diff wraps to 0 — fall back to a raw draw there.
                let draw = if span == 0 {
                    rng.next_u64()
                } else {
                    let zone = u64::MAX - (u64::MAX - span + 1) % span;
                    loop {
                        let r = rng.next_u64();
                        if r <= zone {
                            break r % span;
                        }
                    }
                };
                range.start.wrapping_add(draw as $ty)
            }
        }
    )*};
}

impl_sample_uniform_int!(u64, usize, i64, u32, i32);

/// Random number generator trait (the `rand 0.9` methods this repo uses).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open range.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_range(self, 0.0..1.0) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};
    use sprint_rng::Xoshiro256;

    /// Deterministic standard generator: xoshiro256** seeded via splitmix64.
    ///
    /// Delegates to the workspace's single shared implementation in
    /// `sprint-rng` — the same seeding expansion and output function this
    /// shim previously duplicated inline, so streams are bitwise-unchanged
    /// (pinned by `seed_from_u64_sequence_is_pinned` below).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        inner: Xoshiro256,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                inner: Xoshiro256::seed_from(state),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn seed_from_u64_sequence_is_pinned() {
        // Synthetic datasets (and everything digested from them) depend on
        // this exact stream; values recorded before the generator was
        // deduplicated into sprint-rng.
        let mut rng = StdRng::seed_from_u64(42);
        assert_eq!(rng.next_u64(), 0x15780b2e0c2ec716);
        assert_eq!(rng.next_u64(), 0x6104d9866d113a7e);
        assert_eq!(rng.next_u64(), 0xae17533239e499a1);
        assert_eq!(rng.next_u64(), 0xecb8ad4703b360a1);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0x99ec5f36cb75f2b4);
        assert_eq!(rng.next_u64(), 0xbf6e1f784956452a);
        assert_eq!(rng.next_u64(), 0x1a5f849d4933e6e0);
        assert_eq!(rng.next_u64(), 0x6aa594f1262d2d2c);
    }

    #[test]
    fn float_range_in_bounds_and_uses_span() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let v = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            if v < 0.0 {
                lo_half += 1;
            }
        }
        // Roughly balanced halves.
        assert!((3_500..=6_500).contains(&lo_half), "lo_half={lo_half}");
    }

    #[test]
    fn int_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let dynrng: &mut StdRng = &mut rng;
        let _ = draw(dynrng);
    }
}
