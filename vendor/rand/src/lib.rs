//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment cannot reach crates.io, so the workspace vendors the
//! slice of `rand` it uses: the `Rng` trait with `random_range` over float and
//! integer ranges, `SeedableRng::seed_from_u64`, and a deterministic
//! `rngs::StdRng`. The generator is xoshiro256** seeded via splitmix64 — a
//! high-quality, well-published construction; it is *not* the upstream ChaCha
//! StdRng, so streams differ from crates.io `rand`, but every consumer in this
//! workspace only requires determinism per seed and sound distributions.

use std::ops::Range;

/// Types that can be sampled from uniformly over a half-open range.
///
/// Implemented for the primitive types this workspace draws: `f64`, `u64`,
/// `usize`, `i64`, `u32`, `i32`.
pub trait SampleUniform: Sized {
    /// Draw a value uniformly from `range` using `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range in random_range");
        // 53 random bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = range.start + unit * (range.end - range.start);
        // Guard against rounding up to the excluded endpoint.
        if v < range.end {
            v
        } else {
            range.start
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<$ty>) -> $ty {
                assert!(range.start < range.end, "empty range in random_range");
                let span = range.end.abs_diff(range.start) as u64;
                // Debiased multiply-shift (Lemire); span == 0 cannot happen for
                // a non-empty Range of these widths except the full u64 span,
                // where abs_diff wraps to 0 — fall back to a raw draw there.
                let draw = if span == 0 {
                    rng.next_u64()
                } else {
                    let zone = u64::MAX - (u64::MAX - span + 1) % span;
                    loop {
                        let r = rng.next_u64();
                        if r <= zone {
                            break r % span;
                        }
                    }
                };
                range.start.wrapping_add(draw as $ty)
            }
        }
    )*};
}

impl_sample_uniform_int!(u64, usize, i64, u32, i32);

/// Random number generator trait (the `rand 0.9` methods this repo uses).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open range.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_range(self, 0.0..1.0) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic standard generator: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden xoshiro state; splitmix64
            // cannot produce four zeros from any seed, but keep the guard.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut n = [s0, s1, s2, s3];
            n[2] ^= n[0];
            n[3] ^= n[1];
            n[1] ^= n[2];
            n[0] ^= n[3];
            n[2] ^= t;
            n[3] = n[3].rotate_left(45);
            self.s = n;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_range_in_bounds_and_uses_span() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let v = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            if v < 0.0 {
                lo_half += 1;
            }
        }
        // Roughly balanced halves.
        assert!((3_500..=6_500).contains(&lo_half), "lo_half={lo_half}");
    }

    #[test]
    fn int_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let dynrng: &mut StdRng = &mut rng;
        let _ = draw(dynrng);
    }
}
