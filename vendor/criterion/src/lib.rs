//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API this workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `criterion_group!`/`criterion_main!`) over a plain `Instant` harness:
//! each benchmark is auto-batched until a sample takes ≳10 ms, then
//! `sample_size` samples are timed and the mean/min per-iteration times (and
//! throughput when declared) are printed. No statistics beyond that — the
//! numbers are honest wall-clock means, good enough to compare kernels on one
//! machine, and the repo's JSON perf artifacts come from `make_tables`, not
//! from this harness. Passing `--test` (as `cargo bench -- --test` does)
//! switches to a smoke mode that runs every benchmark body once without
//! calibration, so CI can prove the benches execute without paying for
//! timed samples.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared work per iteration, used to print throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id with both a name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// Id carrying only the parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&name.into(), None, sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure given by name.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.throughput, self.criterion.sample_size, &mut f);
        self
    }

    /// Benchmark a closure over one input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(
            &label,
            self.throughput,
            self.criterion.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (printing is incremental; this is a no-op bookend).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    batch: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, auto-batched so one sample is long enough to measure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.batch {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// True when the binary was invoked with `--test` (cargo's bench smoke
/// mode): run every benchmark body exactly once to prove it executes,
/// skipping calibration and sampling entirely.
fn smoke_mode() -> bool {
    use std::sync::OnceLock;
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    f: &mut F,
) {
    if smoke_mode() {
        let mut probe = Bencher {
            batch: 1,
            samples: Vec::with_capacity(1),
        };
        let start = Instant::now();
        f(&mut probe);
        println!(
            "  {label:<40} smoke ok ({} elapsed)",
            fmt_time(start.elapsed().as_secs_f64())
        );
        return;
    }
    // Calibrate: grow the batch until one batch costs at least ~10 ms, so
    // nanosecond-scale routines are not swamped by timer overhead.
    let mut batch = 1u64;
    loop {
        let mut probe = Bencher {
            batch,
            samples: Vec::with_capacity(1),
        };
        f(&mut probe);
        let elapsed = probe.samples.first().copied().unwrap_or_default();
        if elapsed >= Duration::from_millis(10) || batch >= 1 << 20 {
            break;
        }
        // At least double; overshoot toward the target using the measurement.
        let scale = (Duration::from_millis(12).as_nanos() as u64)
            .checked_div(elapsed.as_nanos().max(1) as u64)
            .unwrap_or(2);
        batch = batch.saturating_mul(scale.clamp(2, 1024)).min(1 << 20);
    }

    let mut bencher = Bencher {
        batch,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut bencher);

    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / batch as f64)
        .collect();
    if per_iter.is_empty() {
        println!("  {label:<40} (no samples: closure never called iter)");
        return;
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / mean)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!(
        "  {label:<40} mean {:>12}  min {:>12}{rate}",
        fmt_time(mean),
        fmt_time(min)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.bench_with_input(BenchmarkId::from_parameter(9), &9u64, |b, _| b.iter(|| 0));
        group.finish();
    }

    #[test]
    fn id_renderings() {
        assert_eq!(BenchmarkId::new("copy", 76).label, "copy/76");
        assert_eq!(BenchmarkId::from_parameter(512).label, "512");
    }
}
