//! Deterministic, seedable random number generation with O(1) stream
//! derivation — the single splitmix64/xoshiro256** implementation shared by
//! the whole workspace.
//!
//! The paper's `fixed.seed.sampling = "y"` mode derives the *b*-th permutation
//! from a seed that is a pure function of the permutation index *b*. That is
//! the property that lets a parallel rank jump straight to its chunk of the
//! permutation sequence without replaying its predecessors (paper §3.2,
//! Figure 2). We implement the same idea with SplitMix64 seeding a
//! xoshiro256** stream per index.
//!
//! We deliberately implement the generators in-crate rather than depending on
//! an external `rand`: the skip-ahead semantics of the permutation sequence
//! are part of this workspace's *specification* (parallel results must be
//! bit-identical to serial), so the stream derivation must be pinned down,
//! not delegated. Both `sprint_core::rng` and the vendored `rand` shim
//! re-use this crate, so there is exactly one splitmix64 in the tree and the
//! pinned-sequence tests below guard every seed-derived stream at once.

/// SplitMix64 — used to expand a user seed into xoshiro state and to mix a
/// permutation index into a fresh seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derive the seed for permutation index `index` from the user seed.
///
/// This is the fixed-seed-sampling function: deterministic, stateless, O(1).
#[inline]
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    // Feed both through SplitMix so adjacent indices give uncorrelated seeds.
    let mut sm = SplitMix64::new(seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
    sm.next_u64()
}

/// xoshiro256** — the work-horse PRNG for shuffles and sampling.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 expansion (the reference seeding procedure).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is invalid for xoshiro; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `0..bound` (bound > 0) by Lemire's method with
    /// rejection, bias-free.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Fast path for powers of two.
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// One uniformly random bit.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        // Use the high bit: xoshiro's low bits are the weakest.
        self.next_u64() >> 63 == 1
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_answer() {
        // Vigna's reference: splitmix64(0) first outputs.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn pinned_sequences_do_not_move() {
        // Every permutation stream, dataset generator and digest in the
        // workspace is derived from these primitives; the exact outputs are
        // part of the on-disk compatibility surface (checkpoints, caches).
        // Values recorded from the implementation this crate was extracted
        // from — if this test fails, seeds and digests have moved.
        let mut x = Xoshiro256::seed_from(42);
        assert_eq!(x.next_u64(), 0x15780b2e0c2ec716);
        assert_eq!(x.next_u64(), 0x6104d9866d113a7e);
        assert_eq!(x.next_u64(), 0xae17533239e499a1);
        assert_eq!(x.next_u64(), 0xecb8ad4703b360a1);
        let mut x = Xoshiro256::seed_from(0);
        assert_eq!(x.next_u64(), 0x99ec5f36cb75f2b4);
        assert_eq!(x.next_u64(), 0xbf6e1f784956452a);
        assert_eq!(x.next_u64(), 0x1a5f849d4933e6e0);
        assert_eq!(x.next_u64(), 0x6aa594f1262d2d2c);
        assert_eq!(mix_seed(44_561, 1), 0xc2c26ad2bb0f3d62);
        assert_eq!(mix_seed(44_561, 2), 0x5cdcbcf8998348b4);
        assert_eq!(mix_seed(0, 0), 0xe220a8397b1dcdaf);
    }

    #[test]
    fn mix_seed_is_deterministic_and_spread() {
        let s1 = mix_seed(42, 0);
        let s2 = mix_seed(42, 1);
        let s3 = mix_seed(43, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(mix_seed(42, 0), s1);
    }

    #[test]
    fn xoshiro_determinism() {
        let mut a = Xoshiro256::seed_from(7);
        let mut b = Xoshiro256::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Xoshiro256::seed_from(99);
        for bound in [1u64, 2, 3, 7, 16, 76, 1000] {
            for _ in 0..500 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from(3);
        let mut v: Vec<u32> = (0..76).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..76).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..76).collect::<Vec<_>>(),
            "shuffle of 76 left input unchanged"
        );
    }
}
