//! # mpi-sim — an in-process SPMD message-passing substrate
//!
//! The SPRINT paper parallelizes `mt.maxT` with MPI. This crate provides the
//! subset of MPI semantics that `pmaxT` actually uses — ranks, point-to-point
//! send/receive with tags, and the collectives broadcast, barrier, gather and
//! reduce — with ranks running as OS threads inside one process and messages
//! travelling over channels.
//!
//! The substitution is documented in `DESIGN.md`: the algorithmic structure of
//! the parallel permutation test (who talks to whom, in which order, with
//! which data) is identical whether ranks are MPI processes on a Cray XT or
//! threads here. Collectives are implemented as real message exchanges
//! (binomial trees, dissemination barrier), not shortcuts through shared
//! memory, so message counts and orderings match a classic MPI implementation.
//!
//! ## Quick example
//!
//! ```
//! use mpi_sim::Universe;
//!
//! // Four ranks each contribute rank*2; the root learns the sum.
//! let results = Universe::run(4, |comm| {
//!     let local = (comm.rank() * 2) as u64;
//!     comm.reduce(0, local, |a, b| a + b).unwrap()
//! })
//! .unwrap();
//! assert_eq!(results[0], Some(0 + 2 + 4 + 6));
//! assert!(results[1..].iter().all(|r| r.is_none()));
//! ```

mod comm;
mod comm_trait;
mod envelope;
mod error;
mod mesh;
mod tcp;
mod timer;
mod universe;

pub use comm::{Communicator, MessageStats};
pub use comm_trait::{
    decode_f64s, decode_u64s, encode_f64s, encode_u64s, CollectiveKind, Comm, TRAIT_COLL_BIT,
};
pub use error::{CommError, CommResult};
pub use tcp::{TcpComm, TcpConfig, TcpFleet, TcpStats};
pub use timer::{SectionProfile, SectionTimer};
pub use universe::{Universe, UniverseError};

/// The rank of the master process. SPRINT fixes the master at rank 0.
pub const MASTER: usize = 0;
