//! Type-erased message envelopes.
//!
//! Point-to-point channels carry [`Envelope`]s: a tag plus a boxed `Any`
//! payload. The receiving side downcasts back to the concrete type. This
//! mirrors MPI's untyped byte buffers while staying memory-safe.

use std::any::Any;

/// A single in-flight message.
pub(crate) struct Envelope {
    /// User- or collective-assigned tag used for matching.
    pub tag: u64,
    /// The boxed payload; receivers downcast to the expected type.
    pub payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("tag", &self.tag)
            .field("payload", &"<opaque>")
            .finish()
    }
}

impl Envelope {
    /// Wrap `value` with `tag`.
    pub fn new<T: Send + 'static>(tag: u64, value: T) -> Self {
        Envelope {
            tag,
            payload: Box::new(value),
        }
    }

    /// Attempt to take the payload as `T`, returning the envelope unchanged on
    /// type mismatch so it can be reported.
    pub fn open<T: 'static>(self) -> Result<T, Envelope> {
        match self.payload.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(payload) => Err(Envelope {
                tag: self.tag,
                payload,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_value_and_tag() {
        let env = Envelope::new(7, vec![1u32, 2, 3]);
        assert_eq!(env.tag, 7);
        let v: Vec<u32> = env.open().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn wrong_type_downcast_returns_envelope() {
        let env = Envelope::new(9, 42u64);
        let back = env.open::<String>().unwrap_err();
        assert_eq!(back.tag, 9);
        // The payload is still intact and can be opened with the right type.
        assert_eq!(back.open::<u64>().unwrap(), 42);
    }
}
