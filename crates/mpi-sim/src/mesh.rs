//! Construction of the all-pairs channel mesh.
//!
//! For a universe of `p` ranks we build `p * p` unbounded channels; rank `r`
//! owns the receiving ends of column `r` and the sending ends of row `r`
//! (including a self-loop, which lets collectives treat the root uniformly).

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::envelope::Envelope;

/// The per-rank view of the mesh: senders to every rank, receivers from every
/// rank.
pub(crate) struct Endpoints {
    /// `senders[d]` delivers to rank `d`.
    pub senders: Vec<Sender<Envelope>>,
    /// `receivers[s]` receives what rank `s` sent to us.
    pub receivers: Vec<Receiver<Envelope>>,
}

/// Build endpoints for all `size` ranks.
pub(crate) fn build_mesh(size: usize) -> Vec<Endpoints> {
    assert!(size > 0, "universe must have at least one rank");
    // txs[s][d] sends from s to d; rxs[d][s] receives at d from s.
    let mut txs: Vec<Vec<Option<Sender<Envelope>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    let mut rxs: Vec<Vec<Option<Receiver<Envelope>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    for (s, row) in txs.iter_mut().enumerate() {
        for (d, slot) in row.iter_mut().enumerate() {
            let (tx, rx) = unbounded();
            *slot = Some(tx);
            rxs[d][s] = Some(rx);
        }
    }
    txs.into_iter()
        .zip(rxs)
        .map(|(tx_row, rx_row)| Endpoints {
            senders: tx_row.into_iter().map(Option::unwrap).collect(),
            receivers: rx_row.into_iter().map(Option::unwrap).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_has_full_connectivity() {
        let size = 4;
        let eps = build_mesh(size);
        assert_eq!(eps.len(), size);
        for ep in &eps {
            assert_eq!(ep.senders.len(), size);
            assert_eq!(ep.receivers.len(), size);
        }
    }

    #[test]
    fn message_travels_along_correct_edge() {
        let mut eps = build_mesh(3);
        let ep2 = eps.pop().unwrap();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        // 0 -> 2
        ep0.senders[2].send(Envelope::new(5, 123u32)).unwrap();
        let env = ep2.receivers[0].recv().unwrap();
        assert_eq!(env.tag, 5);
        assert_eq!(env.open::<u32>().unwrap(), 123);
        // 1's channels saw nothing.
        assert!(ep1.receivers[0].try_recv().is_err());
    }

    #[test]
    fn self_loop_works() {
        let eps = build_mesh(1);
        eps[0].senders[0].send(Envelope::new(1, 9i64)).unwrap();
        assert_eq!(
            eps[0].receivers[0].recv().unwrap().open::<i64>().unwrap(),
            9
        );
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = build_mesh(0);
    }
}
