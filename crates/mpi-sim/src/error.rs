//! Error type for communicator operations.

use std::fmt;

/// Errors produced by point-to-point or collective operations.
#[derive(Debug)]
pub enum CommError {
    /// The peer's endpoint has been dropped (its rank body returned early or
    /// panicked), so the message can never be delivered or received.
    Disconnected {
        /// Rank of the unreachable peer.
        peer: usize,
    },
    /// A message arrived with the expected tag but its payload was not of the
    /// requested type. In a correct SPMD program this indicates mismatched
    /// send/receive types.
    TypeMismatch {
        /// Rank of the sender.
        src: usize,
        /// Tag of the offending message.
        tag: u64,
    },
    /// A rank index outside `0..size` was supplied.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// The communicator size.
        size: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Disconnected { peer } => {
                write!(f, "peer rank {peer} disconnected")
            }
            CommError::TypeMismatch { src, tag } => {
                write!(
                    f,
                    "payload type mismatch on message from rank {src} tag {tag}"
                )
            }
            CommError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Result alias for communicator operations.
pub type CommResult<T> = Result<T, CommError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let d = CommError::Disconnected { peer: 3 };
        assert!(d.to_string().contains("rank 3"));
        let t = CommError::TypeMismatch { src: 1, tag: 42 };
        assert!(t.to_string().contains("tag 42"));
        let r = CommError::InvalidRank { rank: 9, size: 4 };
        assert!(r.to_string().contains('9'));
        assert!(r.to_string().contains('4'));
    }

    #[test]
    fn error_trait_object_is_constructible() {
        let e: Box<dyn std::error::Error> = Box::new(CommError::Disconnected { peer: 0 });
        assert!(e.source().is_none());
    }
}
