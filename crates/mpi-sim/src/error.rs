//! Error type for communicator operations.

use std::fmt;

/// Errors produced by point-to-point or collective operations.
#[derive(Debug)]
pub enum CommError {
    /// The peer's endpoint has been dropped (its rank body returned early or
    /// panicked), so the message can never be delivered or received.
    Disconnected {
        /// Rank of the unreachable peer.
        peer: usize,
    },
    /// A message arrived with the expected tag but its payload was not of the
    /// requested type. In a correct SPMD program this indicates mismatched
    /// send/receive types.
    TypeMismatch {
        /// Rank of the sender.
        src: usize,
        /// Tag of the offending message.
        tag: u64,
    },
    /// A rank index outside `0..size` was supplied.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// The communicator size.
        size: usize,
    },
    /// A blocking receive exceeded its deadline. On a network backend this is
    /// how a dead or wedged peer is detected (the read deadline doubles as a
    /// failure detector).
    Timeout {
        /// Rank of the unresponsive peer.
        peer: usize,
    },
    /// A frame arrived malformed: bad magic, an oversized length prefix, or a
    /// payload that does not decode as the expected shape.
    Protocol {
        /// Rank of the peer that sent the offending frame.
        peer: usize,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A transport-level I/O failure outside any single peer conversation
    /// (bind, accept, connect exhausting its retry budget).
    Io(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Disconnected { peer } => {
                write!(f, "peer rank {peer} disconnected")
            }
            CommError::TypeMismatch { src, tag } => {
                write!(
                    f,
                    "payload type mismatch on message from rank {src} tag {tag}"
                )
            }
            CommError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            CommError::Timeout { peer } => {
                write!(f, "timed out waiting for peer rank {peer}")
            }
            CommError::Protocol { peer, detail } => {
                write!(f, "protocol violation from peer rank {peer}: {detail}")
            }
            CommError::Io(detail) => write!(f, "transport I/O error: {detail}"),
        }
    }
}

impl std::error::Error for CommError {}

/// Result alias for communicator operations.
pub type CommResult<T> = Result<T, CommError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let d = CommError::Disconnected { peer: 3 };
        assert!(d.to_string().contains("rank 3"));
        let t = CommError::TypeMismatch { src: 1, tag: 42 };
        assert!(t.to_string().contains("tag 42"));
        let r = CommError::InvalidRank { rank: 9, size: 4 };
        assert!(r.to_string().contains('9'));
        assert!(r.to_string().contains('4'));
    }

    #[test]
    fn error_trait_object_is_constructible() {
        let e: Box<dyn std::error::Error> = Box::new(CommError::Disconnected { peer: 0 });
        assert!(e.source().is_none());
    }
}
