//! Transport-generic communicator trait.
//!
//! [`Comm`] captures the message-passing surface `pmaxT` needs — rank
//! identity, tagged byte-level point-to-point transfer, and the collectives
//! barrier / broadcast / gather / reduce-sum — as default methods over two
//! required primitives (`send_bytes` / `recv_bytes`), so one SPMD rank body
//! runs unmodified over the in-process channel substrate
//! ([`Communicator`](crate::Communicator)) or a real network transport
//! ([`TcpComm`](crate::TcpComm)).
//!
//! The default collective algorithms mirror the concrete `Communicator`'s
//! inherent implementations message-for-message: binomial trees cost `p − 1`
//! messages total, the dissemination barrier `p·⌈log₂ p⌉`, the flat gather
//! funnel `p − 1`. The communication-complexity reasoning from the paper's
//! §4.4 therefore carries to every backend, and message-count assertions
//! written against one transport hold on the other.
//!
//! Collective tags live in a reserved tag space marked by bit 62
//! ([`TRAIT_COLL_BIT`]), disjoint both from user point-to-point tags (top
//! two bits clear) and from the concrete `Communicator`'s private bit-63
//! collective space, so trait-level and inherent collectives can interleave
//! on the same backend without matching each other's messages.

use crate::error::{CommError, CommResult};
use crate::MessageStats;

/// Bit marking a tag as belonging to a trait-level collective operation.
/// User point-to-point tags must keep the top two bits clear.
pub const TRAIT_COLL_BIT: u64 = 1 << 62;

/// Kind codes mixed into trait-level collective tags so different
/// collectives can never match each other's messages even if a backend
/// reorders delivery across tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Dissemination barrier.
    Barrier = 0,
    /// Binomial-tree broadcast.
    Bcast = 1,
    /// Flat gather funnel.
    Gather = 2,
    /// Binomial-tree reduction.
    Reduce = 3,
}

/// Encode a `u64` slice little-endian for the wire.
pub fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a little-endian `u64` payload; `src` only labels the error.
pub fn decode_u64s(bytes: &[u8], src: usize) -> CommResult<Vec<u64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(CommError::Protocol {
            peer: src,
            detail: format!("u64 payload length {} not a multiple of 8", bytes.len()),
        });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect())
}

/// Encode an `f64` slice via its IEEE-754 bit pattern, little-endian. Using
/// the bit pattern (not a decimal round trip) keeps wire transfer lossless,
/// which the bitwise-reproducibility contract requires.
pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Decode a little-endian IEEE-754 `f64` payload; `src` only labels the error.
pub fn decode_f64s(bytes: &[u8], src: usize) -> CommResult<Vec<f64>> {
    Ok(decode_u64s(bytes, src)?
        .into_iter()
        .map(f64::from_bits)
        .collect())
}

/// The transport-generic communicator: what a `pmaxT` rank needs from its
/// message-passing substrate.
///
/// Backends provide identity, tagged byte transfer with per-(src, tag)
/// ordering and out-of-order buffering, and a collective tag allocator; the
/// collectives themselves are default methods shared by every backend.
///
/// ## Contract for implementors
///
/// - `send_bytes` is non-blocking or buffered: a send must not deadlock
///   against the peer's own send (the collectives rely on this, as MPI
///   implementations rely on eager small-message sends).
/// - `recv_bytes(src, tag)` blocks for a message from exactly `src` with
///   exactly `tag`; messages from `src` with other tags are buffered, and
///   messages with the same tag arrive in send order.
/// - `next_collective` returns a tag in the [`TRAIT_COLL_BIT`] space that is
///   identical across ranks for the n-th collective call (SPMD discipline),
///   and bumps the backend's collective counter.
pub trait Comm {
    /// This rank's id, in `0..size`.
    fn rank(&self) -> usize;

    /// Number of ranks in the universe.
    fn size(&self) -> usize;

    /// Send `payload` to rank `dst` under `tag`.
    fn send_bytes(&self, dst: usize, tag: u64, payload: Vec<u8>) -> CommResult<()>;

    /// Receive the payload sent by `src` under `tag`, blocking until it
    /// arrives.
    fn recv_bytes(&self, src: usize, tag: u64) -> CommResult<Vec<u8>>;

    /// Allocate the tag for the next collective operation (identical across
    /// ranks by SPMD discipline) and count it.
    fn next_collective(&self, kind: CollectiveKind) -> u64;

    /// Snapshot of this rank's traffic counters.
    fn message_stats(&self) -> MessageStats;

    /// True for the SPRINT master (rank 0).
    fn is_master(&self) -> bool {
        self.rank() == crate::MASTER
    }

    /// Validate a peer rank against the communicator size.
    fn check_peer(&self, rank: usize) -> CommResult<()> {
        if rank >= self.size() {
            Err(CommError::InvalidRank {
                rank,
                size: self.size(),
            })
        } else {
            Ok(())
        }
    }

    /// Dissemination barrier: `⌈log₂ p⌉` rounds of shifted token passing.
    /// No rank exits before every rank has entered.
    fn barrier(&self) -> CommResult<()> {
        let tag = self.next_collective(CollectiveKind::Barrier);
        let (rank, size) = (self.rank(), self.size());
        let mut dist = 1usize;
        while dist < size {
            let to = (rank + dist) % size;
            let from = (rank + size - dist % size) % size;
            self.send_bytes(to, tag | (dist as u64) << 32, Vec::new())?;
            self.recv_bytes(from, tag | (dist as u64) << 32)?;
            dist <<= 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast from `root`. The root passes `Some(payload)`,
    /// everyone else `None`; all ranks return the payload.
    fn bcast_bytes(&self, root: usize, payload: Option<Vec<u8>>) -> CommResult<Vec<u8>> {
        self.check_peer(root)?;
        let tag = self.next_collective(CollectiveKind::Bcast);
        let (rank, size) = (self.rank(), self.size());
        let vr = (rank + size - root) % size; // virtual rank, root at 0
        let payload = if vr == 0 {
            payload.expect("broadcast root must supply a payload")
        } else {
            // Parent: clear the highest set bit of the virtual rank.
            let msb = usize::BITS - 1 - vr.leading_zeros();
            let parent_vr = vr & !(1usize << msb);
            let parent = (parent_vr + root) % size;
            self.recv_bytes(parent, tag)?
        };
        // Children: vr | 2^k for 2^k > vr (any k when vr == 0), child < size.
        let first_k = if vr == 0 {
            0
        } else {
            (usize::BITS - vr.leading_zeros()) as usize
        };
        for k in first_k..usize::BITS as usize {
            let child_vr = vr | (1usize << k);
            if child_vr == vr || child_vr >= size {
                if child_vr >= size {
                    break;
                }
                continue;
            }
            let child = (child_vr + root) % size;
            self.send_bytes(child, tag, payload.clone())?;
        }
        Ok(payload)
    }

    /// Flat gather: every rank sends `payload` to `root`, which returns the
    /// vector ordered by rank; non-roots return `None`.
    fn gather_bytes(&self, root: usize, payload: Vec<u8>) -> CommResult<Option<Vec<Vec<u8>>>> {
        self.check_peer(root)?;
        let tag = self.next_collective(CollectiveKind::Gather);
        let (rank, size) = (self.rank(), self.size());
        if rank == root {
            let mut out: Vec<Option<Vec<u8>>> = (0..size).map(|_| None).collect();
            out[root] = Some(payload);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.recv_bytes(src, tag)?);
                }
            }
            Ok(Some(out.into_iter().map(Option::unwrap).collect()))
        } else {
            self.send_bytes(root, tag, payload)?;
            Ok(None)
        }
    }

    /// Element-wise sum-reduce of equal-length `u64` vectors to `root` over a
    /// binomial tree. This is the collective `pmaxT` uses to combine per-rank
    /// permutation counts (paper §3.2 Step 5); partials combine in a fixed
    /// tree order and integer summation is associative, so the result is
    /// exact and bitwise-identical to serial for any rank count.
    fn reduce_sum_u64(&self, root: usize, mut value: Vec<u64>) -> CommResult<Option<Vec<u64>>> {
        self.check_peer(root)?;
        let tag = self.next_collective(CollectiveKind::Reduce);
        let (rank, size) = (self.rank(), self.size());
        let vr = (rank + size - root) % size;
        let mut mask = 1usize;
        while mask < size {
            if vr & mask != 0 {
                // Send the partial to the subtree parent and drop out.
                let dst_vr = vr & !mask;
                let dst = (dst_vr + root) % size;
                self.send_bytes(dst, tag, encode_u64s(&value))?;
                return Ok(None);
            }
            let src_vr = vr | mask;
            if src_vr < size {
                let src = (src_vr + root) % size;
                let other = decode_u64s(&self.recv_bytes(src, tag)?, src)?;
                if other.len() != value.len() {
                    return Err(CommError::Protocol {
                        peer: src,
                        detail: format!(
                            "reduce partial has {} elements, expected {}",
                            other.len(),
                            value.len()
                        ),
                    });
                }
                for (x, y) in value.iter_mut().zip(&other) {
                    *x += *y;
                }
            }
            mask <<= 1;
        }
        Ok(Some(value))
    }

    /// Element-wise sum-reduce of equal-length `f64` vectors to `root` over
    /// the same binomial tree: deterministic for a given rank count, though
    /// floating-point addition order differs from serial left-to-right.
    fn reduce_sum_f64(&self, root: usize, mut value: Vec<f64>) -> CommResult<Option<Vec<f64>>> {
        self.check_peer(root)?;
        let tag = self.next_collective(CollectiveKind::Reduce);
        let (rank, size) = (self.rank(), self.size());
        let vr = (rank + size - root) % size;
        let mut mask = 1usize;
        while mask < size {
            if vr & mask != 0 {
                let dst_vr = vr & !mask;
                let dst = (dst_vr + root) % size;
                self.send_bytes(dst, tag, encode_f64s(&value))?;
                return Ok(None);
            }
            let src_vr = vr | mask;
            if src_vr < size {
                let src = (src_vr + root) % size;
                let other = decode_f64s(&self.recv_bytes(src, tag)?, src)?;
                if other.len() != value.len() {
                    return Err(CommError::Protocol {
                        peer: src,
                        detail: format!(
                            "reduce partial has {} elements, expected {}",
                            other.len(),
                            value.len()
                        ),
                    });
                }
                for (x, y) in value.iter_mut().zip(&other) {
                    *x += *y;
                }
            }
            mask <<= 1;
        }
        Ok(Some(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    // A generic rank body proves the call sites compile against the trait,
    // not the concrete type — the same body the TCP backend tests reuse.
    fn sum_ranks<C: Comm>(comm: &C) -> Option<Vec<u64>> {
        let local = vec![comm.rank() as u64, 1];
        comm.reduce_sum_u64(0, local).unwrap()
    }

    #[test]
    fn trait_reduce_sum_matches_serial_over_channels() {
        for p in 1..=5 {
            let results = Universe::run(p, sum_ranks).unwrap();
            let expect: u64 = (0..p as u64).sum();
            assert_eq!(results[0], Some(vec![expect, p as u64]));
            assert!(results[1..].iter().all(Option::is_none));
        }
    }

    #[test]
    fn trait_bcast_delivers_to_every_rank() {
        let results = Universe::run(5, |comm| {
            let payload = if Comm::is_master(comm) {
                Some(vec![7u8, 1, 9])
            } else {
                None
            };
            comm.bcast_bytes(0, payload).unwrap()
        })
        .unwrap();
        assert!(results.iter().all(|r| r == &vec![7u8, 1, 9]));
    }

    #[test]
    fn trait_gather_orders_by_rank() {
        let results = Universe::run(4, |comm| {
            comm.gather_bytes(0, vec![Comm::rank(comm) as u8; 2])
                .unwrap()
        })
        .unwrap();
        let gathered = results[0].clone().unwrap();
        assert_eq!(
            gathered,
            vec![vec![0u8, 0], vec![1, 1], vec![2, 2], vec![3, 3]]
        );
        assert!(results[1..].iter().all(Option::is_none));
    }

    #[test]
    fn trait_barrier_synchronizes_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let entered = Arc::new(AtomicUsize::new(0));
        let results = Universe::run(4, {
            let entered = Arc::clone(&entered);
            move |comm| {
                entered.fetch_add(1, Ordering::SeqCst);
                Comm::barrier(comm).unwrap();
                // After the barrier, every rank must have entered.
                entered.load(Ordering::SeqCst)
            }
        })
        .unwrap();
        assert!(results.iter().all(|&seen| seen == 4));
    }

    #[test]
    fn trait_collectives_match_inherent_message_counts() {
        // Binomial bcast and reduce both cost p − 1 messages in total; the
        // trait defaults must match the concrete Communicator exactly.
        for p in [2usize, 3, 4, 5, 8] {
            let stats = Universe::run(p, |comm| {
                let payload = if Comm::is_master(comm) {
                    Some(vec![1u8; 16])
                } else {
                    None
                };
                comm.bcast_bytes(0, payload).unwrap();
                comm.reduce_sum_u64(0, vec![1, 2, 3]).unwrap();
                Comm::message_stats(comm)
            })
            .unwrap();
            let sent: u64 = stats.iter().map(|s| s.sent).sum();
            let received: u64 = stats.iter().map(|s| s.received).sum();
            assert_eq!(sent, 2 * (p as u64 - 1), "p={p}");
            assert_eq!(received, 2 * (p as u64 - 1), "p={p}");
            assert!(stats.iter().all(|s| s.collectives == 2));
        }
    }

    #[test]
    fn u64_and_f64_codecs_round_trip() {
        let u = vec![0u64, 1, u64::MAX, 0x0123_4567_89ab_cdef];
        assert_eq!(decode_u64s(&encode_u64s(&u), 0).unwrap(), u);
        let f = vec![0.0f64, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE];
        let back = decode_f64s(&encode_f64s(&f), 0).unwrap();
        assert_eq!(back.len(), f.len());
        for (a, b) in f.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // NaN survives bitwise.
        let nan = decode_f64s(&encode_f64s(&[f64::NAN]), 0).unwrap();
        assert!(nan[0].is_nan());
        // Torn payloads are protocol errors, not panics.
        assert!(decode_u64s(&[1, 2, 3], 7).is_err());
    }
}
