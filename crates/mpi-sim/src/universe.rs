//! SPMD launch: run one closure on every rank and join the results.

use std::fmt;
use std::thread;

use crate::comm::Communicator;
use crate::mesh::build_mesh;

/// Error returned when one or more ranks panicked.
#[derive(Debug)]
pub struct UniverseError {
    /// Ranks whose body panicked, with the panic message when it was a string.
    pub panicked: Vec<(usize, String)>,
}

impl fmt::Display for UniverseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ranks panicked:")?;
        for (rank, msg) in &self.panicked {
            write!(f, " [{rank}: {msg}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for UniverseError {}

/// Entry point of the SPMD model: [`Universe::run`] plays the role of
/// `mpiexec -n SIZE`.
pub struct Universe;

impl Universe {
    /// Run `body` on `size` ranks (threads), each with its own
    /// [`Communicator`], and return the per-rank results in rank order.
    ///
    /// If any rank panics the remaining ranks may observe
    /// [`crate::CommError::Disconnected`]; all threads are joined before the
    /// error is returned, so no thread leaks.
    pub fn run<T, F>(size: usize, body: F) -> Result<Vec<T>, UniverseError>
    where
        T: Send + 'static,
        F: Fn(&Communicator) -> T + Send + Sync + 'static,
    {
        assert!(size > 0, "universe must have at least one rank");
        let endpoints = build_mesh(size);
        let body = std::sync::Arc::new(body);
        let mut handles = Vec::with_capacity(size);
        for (rank, ep) in endpoints.into_iter().enumerate() {
            let body = std::sync::Arc::clone(&body);
            handles.push(
                thread::Builder::new()
                    .name(format!("mpi-sim-rank-{rank}"))
                    .spawn(move || {
                        let comm = Communicator::new(rank, ep);
                        body(&comm)
                    })
                    .expect("failed to spawn rank thread"),
            );
        }
        let mut results = Vec::with_capacity(size);
        let mut panicked = Vec::new();
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(v) => results.push(v),
                Err(e) => {
                    let msg = e
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| e.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic>".to_string());
                    panicked.push((rank, msg));
                }
            }
        }
        if panicked.is_empty() {
            Ok(results)
        } else {
            Err(UniverseError { panicked })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_rank_order() {
        let out = Universe::run(6, |c| c.rank() * 10).unwrap();
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn single_rank_universe() {
        let out = Universe::run(1, |c| (c.rank(), c.size())).unwrap();
        assert_eq!(out, vec![(0, 1)]);
    }

    #[test]
    fn panicking_rank_is_reported() {
        let err = Universe::run(3, |c| {
            if c.rank() == 1 {
                panic!("boom at rank one");
            }
            c.rank()
        })
        .unwrap_err();
        assert_eq!(err.panicked.len(), 1);
        assert_eq!(err.panicked[0].0, 1);
        assert!(err.panicked[0].1.contains("boom"));
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_size_rejected() {
        let _ = Universe::run(0, |_| ());
    }

    #[test]
    fn many_ranks_oversubscribe_cores() {
        // More ranks than cores must still complete (threads block on recv).
        let out =
            Universe::run(32, |c| c.allreduce(c.rank() as u64, |a, b| a + b).unwrap()).unwrap();
        assert!(out.iter().all(|&v| v == (0..32).sum::<u64>()));
    }
}
