//! The per-rank communicator: point-to-point messaging and collectives.
//!
//! Collectives are implemented as genuine message exchanges — binomial trees
//! for broadcast and reduce, a dissemination pattern for barrier, a flat
//! funnel for gather — matching the message complexity of a classic MPI
//! implementation rather than cheating through shared memory. All ranks must
//! call collectives in the same order (SPMD discipline), which is exactly the
//! contract MPI imposes.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use crossbeam::channel::{Receiver, Sender};

use crate::envelope::Envelope;
use crate::error::{CommError, CommResult};
use crate::mesh::Endpoints;

/// Bit marking a tag as belonging to a collective operation, keeping the
/// collective tag space disjoint from user point-to-point tags.
const COLL_BIT: u64 = 1 << 63;

/// Kind codes mixed into collective tags so different collectives can never
/// match each other's messages even if user code interleaves them.
#[derive(Clone, Copy)]
enum CollKind {
    Barrier = 0,
    Bcast = 1,
    Gather = 2,
    Reduce = 3,
    Scatter = 4,
    Allgather = 5,
    Alltoall = 6,
}

/// Snapshot of a rank's message traffic, for communication-complexity
/// assertions and instrumentation (the paper's §4.4 reasons about how the
/// collective sections grow with the process count; these counters let tests
/// pin the tree message counts down exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MessageStats {
    /// Point-to-point messages sent by this rank (collectives included).
    pub sent: u64,
    /// Point-to-point messages received by this rank (collectives included).
    pub received: u64,
    /// Collective operations started by this rank.
    pub collectives: u64,
}

/// A rank's handle to the universe: its identity plus its mesh endpoints.
///
/// `Communicator` is deliberately `!Sync`: each rank owns exactly one and uses
/// it from its own thread, as with `MPI_COMM_WORLD` in a rank process.
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    receivers: Vec<Receiver<Envelope>>,
    /// Out-of-order buffer: messages that arrived from `src` while we were
    /// waiting for a different tag.
    pending: Vec<RefCell<VecDeque<Envelope>>>,
    /// Collective sequence number; identical across ranks by SPMD discipline.
    coll_seq: Cell<u64>,
    /// Traffic counters (see [`MessageStats`]).
    sent: Cell<u64>,
    received: Cell<u64>,
    collectives: Cell<u64>,
}

impl Communicator {
    pub(crate) fn new(rank: usize, endpoints: Endpoints) -> Self {
        let size = endpoints.senders.len();
        Communicator {
            rank,
            size,
            senders: endpoints.senders,
            receivers: endpoints.receivers,
            pending: (0..size).map(|_| RefCell::new(VecDeque::new())).collect(),
            coll_seq: Cell::new(0),
            sent: Cell::new(0),
            received: Cell::new(0),
            collectives: Cell::new(0),
        }
    }

    /// This rank's id, in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// True for the SPRINT master (rank 0).
    #[inline]
    pub fn is_master(&self) -> bool {
        self.rank == crate::MASTER
    }

    /// Snapshot of this rank's traffic counters.
    pub fn message_stats(&self) -> MessageStats {
        MessageStats {
            sent: self.sent.get(),
            received: self.received.get(),
            collectives: self.collectives.get(),
        }
    }

    fn check_rank(&self, rank: usize) -> CommResult<()> {
        if rank >= self.size {
            Err(CommError::InvalidRank {
                rank,
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    /// Send `value` to rank `dst` with a user `tag` (must not set the top bit).
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u64, value: T) -> CommResult<()> {
        assert_eq!(
            tag & COLL_BIT,
            0,
            "user tags must not set the collective bit"
        );
        self.send_tagged(dst, tag, value)
    }

    fn send_tagged<T: Send + 'static>(&self, dst: usize, tag: u64, value: T) -> CommResult<()> {
        self.check_rank(dst)?;
        self.sent.set(self.sent.get() + 1);
        self.senders[dst]
            .send(Envelope::new(tag, value))
            .map_err(|_| CommError::Disconnected { peer: dst })
    }

    /// Receive a `T` from rank `src` with the given user `tag`, blocking until
    /// it arrives. Messages from `src` with other tags are buffered.
    pub fn recv<T: 'static>(&self, src: usize, tag: u64) -> CommResult<T> {
        assert_eq!(
            tag & COLL_BIT,
            0,
            "user tags must not set the collective bit"
        );
        self.recv_tagged(src, tag)
    }

    fn recv_tagged<T: 'static>(&self, src: usize, tag: u64) -> CommResult<T> {
        self.check_rank(src)?;
        // First look through messages that already arrived out of order.
        {
            let mut pend = self.pending[src].borrow_mut();
            if let Some(pos) = pend.iter().position(|e| e.tag == tag) {
                let env = pend.remove(pos).expect("position just found");
                self.received.set(self.received.get() + 1);
                return env.open::<T>().map_err(|env| {
                    // Put it back so state is not corrupted by the error.
                    self.pending[src].borrow_mut().push_front(env);
                    CommError::TypeMismatch { src, tag }
                });
            }
        }
        loop {
            let env = self.receivers[src]
                .recv()
                .map_err(|_| CommError::Disconnected { peer: src })?;
            if env.tag == tag {
                self.received.set(self.received.get() + 1);
                return env.open::<T>().map_err(|env| {
                    self.pending[src].borrow_mut().push_front(env);
                    CommError::TypeMismatch { src, tag }
                });
            }
            self.pending[src].borrow_mut().push_back(env);
        }
    }

    fn next_coll_tag(&self, kind: CollKind) -> u64 {
        self.collectives.set(self.collectives.get() + 1);
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        COLL_BIT | (seq << 3) | kind as u64
    }

    /// Dissemination barrier: `ceil(log2 p)` rounds of shifted token passing.
    /// No rank exits before every rank has entered.
    pub fn barrier(&self) -> CommResult<()> {
        let tag = self.next_coll_tag(CollKind::Barrier);
        let mut dist = 1usize;
        while dist < self.size {
            let to = (self.rank + dist) % self.size;
            let from = (self.rank + self.size - dist % self.size) % self.size;
            self.send_tagged(to, tag | (dist as u64) << 32, ())?;
            self.recv_tagged::<()>(from, tag | (dist as u64) << 32)?;
            dist <<= 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast from `root`. The root passes `Some(value)`,
    /// everyone else `None`; all ranks return the value.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> CommResult<T> {
        self.check_rank(root)?;
        let tag = self.next_coll_tag(CollKind::Bcast);
        let vr = (self.rank + self.size - root) % self.size; // virtual rank, root at 0
        let value = if vr == 0 {
            value.expect("broadcast root must supply a value")
        } else {
            // Parent: clear the highest set bit of the virtual rank.
            let msb = usize::BITS - 1 - vr.leading_zeros();
            let parent_vr = vr & !(1usize << msb);
            let parent = (parent_vr + root) % self.size;
            self.recv_tagged::<T>(parent, tag)?
        };
        // Children: vr | 2^k for 2^k > vr (any k when vr == 0), child < size.
        let first_k = if vr == 0 {
            0
        } else {
            (usize::BITS - vr.leading_zeros()) as usize
        };
        for k in first_k..usize::BITS as usize {
            let child_vr = vr | (1usize << k);
            if child_vr == vr || child_vr >= self.size {
                if child_vr >= self.size {
                    break;
                }
                continue;
            }
            let child = (child_vr + root) % self.size;
            self.send_tagged(child, tag, value.clone())?;
        }
        Ok(value)
    }

    /// Flat gather: every rank sends `value` to `root`, which returns the
    /// vector ordered by rank; non-roots return `None`.
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> CommResult<Option<Vec<T>>> {
        self.check_rank(root)?;
        let tag = self.next_coll_tag(CollKind::Gather);
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
            out[root] = Some(value);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.recv_tagged::<T>(src, tag)?);
                }
            }
            Ok(Some(out.into_iter().map(Option::unwrap).collect()))
        } else {
            self.send_tagged(root, tag, value)?;
            Ok(None)
        }
    }

    /// Binomial-tree reduction to `root` with combining operator `op`.
    /// Partial results are combined in a fixed tree order, so integer
    /// reductions are exact and deterministic; floating-point reductions are
    /// deterministic for a given rank count but may differ from serial
    /// left-to-right order.
    pub fn reduce<T, F>(&self, root: usize, value: T, op: F) -> CommResult<Option<T>>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.check_rank(root)?;
        let tag = self.next_coll_tag(CollKind::Reduce);
        let vr = (self.rank + self.size - root) % self.size;
        let mut acc = Some(value);
        let mut mask = 1usize;
        while mask < self.size {
            if vr & mask != 0 {
                // Send partial to the subtree parent and drop out.
                let dst_vr = vr & !mask;
                let dst = (dst_vr + root) % self.size;
                self.send_tagged(dst, tag, acc.take().expect("partial present"))?;
                break;
            }
            let src_vr = vr | mask;
            if src_vr < self.size {
                let src = (src_vr + root) % self.size;
                let other = self.recv_tagged::<T>(src, tag)?;
                let cur = acc.take().expect("partial present");
                acc = Some(op(cur, other));
            }
            mask <<= 1;
        }
        if self.rank == root {
            Ok(Some(acc.expect("root keeps the result")))
        } else {
            Ok(None)
        }
    }

    /// Reduce to `root`, then broadcast the result to everyone.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> CommResult<T>
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let reduced = self.reduce(crate::MASTER, value, op)?;
        self.bcast(crate::MASTER, reduced)
    }

    /// Flat scatter from `root`: the root supplies one `T` per rank (in rank
    /// order); every rank returns its element.
    pub fn scatter<T: Send + 'static>(&self, root: usize, values: Option<Vec<T>>) -> CommResult<T> {
        self.check_rank(root)?;
        let tag = self.next_coll_tag(CollKind::Scatter);
        if self.rank == root {
            let values = values.expect("scatter root must supply values");
            assert_eq!(
                values.len(),
                self.size,
                "scatter requires one value per rank"
            );
            let mut own = None;
            for (dst, v) in values.into_iter().enumerate() {
                if dst == root {
                    own = Some(v);
                } else {
                    self.send_tagged(dst, tag, v)?;
                }
            }
            Ok(own.expect("root element present"))
        } else {
            self.recv_tagged::<T>(root, tag)
        }
    }

    /// Allgather: every rank contributes `value`; every rank returns the
    /// vector of all contributions in rank order. Implemented as a ring
    /// (p−1 rounds), the classic bandwidth-optimal algorithm.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> CommResult<Vec<T>> {
        let tag = self.next_coll_tag(CollKind::Allgather);
        let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
        out[self.rank] = Some(value);
        if self.size > 1 {
            let next = (self.rank + 1) % self.size;
            let prev = (self.rank + self.size - 1) % self.size;
            // In round r, forward the piece that originated r hops back.
            for r in 0..self.size - 1 {
                let send_origin = (self.rank + self.size - r) % self.size;
                let piece = out[send_origin].clone().expect("piece present");
                self.send_tagged(next, tag | ((r as u64) << 32), piece)?;
                let recv_origin = (self.rank + self.size - r - 1) % self.size;
                let received = self.recv_tagged::<T>(prev, tag | ((r as u64) << 32))?;
                out[recv_origin] = Some(received);
            }
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("all pieces gathered"))
            .collect())
    }

    /// All-to-all personalized exchange: rank `i` supplies one `T` per rank;
    /// every rank returns the vector whose `j`-th element came from rank `j`.
    pub fn alltoall<T: Send + 'static>(&self, values: Vec<T>) -> CommResult<Vec<T>> {
        assert_eq!(values.len(), self.size, "alltoall needs one value per rank");
        let tag = self.next_coll_tag(CollKind::Alltoall);
        let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
        // Send each piece to its destination (self-piece moves directly),
        // then receive one piece from every peer.
        for (dst, v) in values.into_iter().enumerate() {
            if dst == self.rank {
                out[dst] = Some(v);
            } else {
                self.send_tagged(dst, tag, v)?;
            }
        }
        for (src, slot) in out.iter_mut().enumerate() {
            if src != self.rank {
                *slot = Some(self.recv_tagged::<T>(src, tag)?);
            }
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("piece received"))
            .collect())
    }

    /// Combined send-to-`dst` / receive-from-`src` with the same tag, as
    /// `MPI_Sendrecv` — deadlock-free for ring exchanges because sends never
    /// block in this substrate.
    pub fn sendrecv<T: Send + 'static>(
        &self,
        dst: usize,
        src: usize,
        tag: u64,
        value: T,
    ) -> CommResult<T> {
        self.send(dst, tag, value)?;
        self.recv(src, tag)
    }

    /// Element-wise sum-reduce of equal-length `u64` vectors to `root`.
    /// This is the collective `pmaxT` uses to combine per-rank permutation
    /// counts (paper §3.2 Step 5); integer summation makes it exact.
    pub fn reduce_sum_u64(&self, root: usize, value: Vec<u64>) -> CommResult<Option<Vec<u64>>> {
        self.reduce(root, value, |mut a, b| {
            assert_eq!(a.len(), b.len(), "count vectors must have equal length");
            for (x, y) in a.iter_mut().zip(&b) {
                *x += *y;
            }
            a
        })
    }

    /// Element-wise sum-reduce of equal-length `f64` vectors to `root`.
    pub fn reduce_sum_f64(&self, root: usize, value: Vec<f64>) -> CommResult<Option<Vec<f64>>> {
        self.reduce(root, value, |mut a, b| {
            assert_eq!(a.len(), b.len(), "vectors must have equal length");
            for (x, y) in a.iter_mut().zip(&b) {
                *x += *y;
            }
            a
        })
    }
}

/// The in-process channel substrate as one backend of the transport-generic
/// [`Comm`](crate::Comm) trait. Only the byte-level primitives are provided;
/// the trait's default collectives reuse the exact binomial/dissemination
/// topologies above, so generic rank bodies produce the same message counts
/// as code written against the concrete type.
impl crate::comm_trait::Comm for Communicator {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_bytes(&self, dst: usize, tag: u64, payload: Vec<u8>) -> CommResult<()> {
        debug_assert_eq!(
            tag & COLL_BIT,
            0,
            "trait-level tags must not enter the inherent collective space"
        );
        self.send_tagged(dst, tag, payload)
    }

    fn recv_bytes(&self, src: usize, tag: u64) -> CommResult<Vec<u8>> {
        debug_assert_eq!(
            tag & COLL_BIT,
            0,
            "trait-level tags must not enter the inherent collective space"
        );
        self.recv_tagged::<Vec<u8>>(src, tag)
    }

    fn next_collective(&self, kind: crate::comm_trait::CollectiveKind) -> u64 {
        // Shares the sequence counter with the inherent collectives (SPMD
        // discipline covers both), but stamps bit 62 instead of bit 63 so the
        // two tag spaces stay disjoint.
        self.collectives.set(self.collectives.get() + 1);
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        crate::comm_trait::TRAIT_COLL_BIT | (seq << 3) | kind as u64
    }

    fn message_stats(&self) -> MessageStats {
        Communicator::message_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn point_to_point_ring() {
        let out = Universe::run(5, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 10, c.rank() as u64).unwrap();
            c.recv::<u64>(prev, 10).unwrap()
        })
        .unwrap();
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn tags_demultiplex_out_of_order() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, "first".to_string()).unwrap();
                c.send(1, 2, "second".to_string()).unwrap();
                String::new()
            } else {
                // Receive in reverse tag order; tag-1 message is buffered.
                let b = c.recv::<String>(0, 2).unwrap();
                let a = c.recv::<String>(0, 1).unwrap();
                format!("{a}/{b}")
            }
        })
        .unwrap();
        assert_eq!(out[1], "first/second");
    }

    #[test]
    fn bcast_from_every_root_and_size() {
        for size in 1..=9 {
            for root in 0..size {
                let out = Universe::run(size, move |c| {
                    let v = if c.rank() == root {
                        Some(vec![root as u32, 99])
                    } else {
                        None
                    };
                    c.bcast(root, v).unwrap()
                })
                .unwrap();
                for v in out {
                    assert_eq!(v, vec![root as u32, 99]);
                }
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        for size in 1..=8 {
            let out = Universe::run(size, |c| c.gather(0, c.rank() as u32 * 3).unwrap()).unwrap();
            let at_root = out[0].as_ref().unwrap();
            let expect: Vec<u32> = (0..size as u32).map(|r| r * 3).collect();
            assert_eq!(at_root, &expect);
            for o in &out[1..] {
                assert!(o.is_none());
            }
        }
    }

    #[test]
    fn gather_to_nonzero_root() {
        let out = Universe::run(4, |c| c.gather(2, c.rank()).unwrap()).unwrap();
        assert_eq!(out[2].as_ref().unwrap(), &vec![0, 1, 2, 3]);
        assert!(out[0].is_none() && out[1].is_none() && out[3].is_none());
    }

    #[test]
    fn reduce_sums_exactly() {
        for size in 1..=9 {
            let out = Universe::run(size, |c| {
                c.reduce(0, (c.rank() + 1) as u64, |a, b| a + b).unwrap()
            })
            .unwrap();
            let n = size as u64;
            assert_eq!(out[0], Some(n * (n + 1) / 2));
        }
    }

    #[test]
    fn reduce_vector_counts() {
        let out = Universe::run(4, |c| {
            let v = vec![c.rank() as u64; 3];
            c.reduce_sum_u64(0, v).unwrap()
        })
        .unwrap();
        assert_eq!(out[0], Some(vec![6, 6, 6]));
    }

    #[test]
    fn allreduce_delivers_everywhere() {
        let out = Universe::run(6, |c| c.allreduce(1u64, |a, b| a + b).unwrap()).unwrap();
        assert!(out.iter().all(|&v| v == 6));
    }

    #[test]
    fn scatter_distributes_by_rank() {
        let out = Universe::run(4, |c| {
            let vals = if c.rank() == 0 {
                Some(vec![10u32, 11, 12, 13])
            } else {
                None
            };
            c.scatter(0, vals).unwrap()
        })
        .unwrap();
        assert_eq!(out, vec![10, 11, 12, 13]);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let before = Arc::new(AtomicUsize::new(0));
        let violations = Arc::new(AtomicUsize::new(0));
        let b2 = Arc::clone(&before);
        let v2 = Arc::clone(&violations);
        Universe::run(8, move |c| {
            b2.fetch_add(1, Ordering::SeqCst);
            c.barrier().unwrap();
            // After the barrier, every rank must have passed the increment.
            if b2.load(Ordering::SeqCst) != c.size() {
                v2.fetch_add(1, Ordering::SeqCst);
            }
        })
        .unwrap();
        assert_eq!(violations.load(std::sync::atomic::Ordering::SeqCst), 0);
        assert_eq!(before.load(std::sync::atomic::Ordering::SeqCst), 8);
    }

    #[test]
    fn successive_collectives_do_not_cross_talk() {
        let out = Universe::run(3, |c| {
            let a = c
                .bcast(0, if c.is_master() { Some(1u8) } else { None })
                .unwrap();
            let b = c
                .bcast(1, if c.rank() == 1 { Some(2u8) } else { None })
                .unwrap();
            let s = c.allreduce(1u32, |x, y| x + y).unwrap();
            (a, b, s)
        })
        .unwrap();
        assert!(out.iter().all(|&(a, b, s)| a == 1 && b == 2 && s == 3));
    }

    #[test]
    fn type_mismatch_reported() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 4, 1u32).unwrap();
                true
            } else {
                c.recv::<String>(0, 4).is_err()
            }
        })
        .unwrap();
        assert!(out[1]);
    }

    #[test]
    fn invalid_rank_rejected() {
        let out = Universe::run(2, |c| c.send(5, 1, ()).is_err()).unwrap();
        assert!(out[0] && out[1]);
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let out = Universe::run(1, |c| {
            c.barrier().unwrap();
            let b = c.bcast(0, Some(7u8)).unwrap();
            let g = c.gather(0, 9u8).unwrap().unwrap();
            let r = c.reduce(0, 5u8, |a, b| a + b).unwrap().unwrap();
            (b, g, r)
        })
        .unwrap();
        assert_eq!(out[0], (7, vec![9], 5));
    }
}

#[cfg(test)]
mod stats_tests {
    use crate::Universe;

    /// Total sends across the universe for one collective call.
    fn total_sent(size: usize, op: impl Fn(&crate::Communicator) + Send + Sync + 'static) -> u64 {
        Universe::run(size, move |c| {
            op(c);
            c.message_stats()
        })
        .unwrap()
        .iter()
        .map(|s| s.sent)
        .sum()
    }

    #[test]
    fn bcast_uses_exactly_p_minus_1_messages() {
        for size in [1usize, 2, 3, 5, 8, 13] {
            let sent = total_sent(size, |c| {
                let v = if c.is_master() { Some(7u8) } else { None };
                c.bcast(0, v).unwrap();
            });
            assert_eq!(sent, size as u64 - 1, "size={size}");
        }
    }

    #[test]
    fn gather_uses_exactly_p_minus_1_messages() {
        for size in [1usize, 2, 4, 7] {
            let sent = total_sent(size, |c| {
                c.gather(0, c.rank()).unwrap();
            });
            assert_eq!(sent, size as u64 - 1, "size={size}");
        }
    }

    #[test]
    fn reduce_uses_exactly_p_minus_1_messages() {
        for size in [1usize, 2, 4, 6, 9] {
            let sent = total_sent(size, |c| {
                c.reduce(0, 1u64, |a, b| a + b).unwrap();
            });
            assert_eq!(sent, size as u64 - 1, "size={size}");
        }
    }

    #[test]
    fn barrier_uses_p_times_ceil_log2_p_messages() {
        for size in [2usize, 3, 4, 8, 11] {
            let rounds = (usize::BITS - (size - 1).leading_zeros()) as u64;
            let sent = total_sent(size, |c| {
                c.barrier().unwrap();
            });
            assert_eq!(sent, size as u64 * rounds, "size={size}");
        }
    }

    #[test]
    fn sent_equals_received_after_quiesce() {
        let stats = Universe::run(6, |c| {
            c.allreduce(c.rank() as u64, |a, b| a + b).unwrap();
            c.barrier().unwrap();
            c.message_stats()
        })
        .unwrap();
        let sent: u64 = stats.iter().map(|s| s.sent).sum();
        let recv: u64 = stats.iter().map(|s| s.received).sum();
        assert_eq!(sent, recv, "no message lost or unconsumed");
        assert!(stats.iter().all(|s| s.collectives == 3)); // reduce+bcast+barrier
    }

    #[test]
    fn counters_start_at_zero() {
        let stats = Universe::run(2, |c| c.message_stats()).unwrap();
        for s in stats {
            assert_eq!(s, crate::comm::MessageStats::default());
        }
    }
}

#[cfg(test)]
mod extended_coll_tests {
    use crate::Universe;

    #[test]
    fn allgather_delivers_everything_everywhere() {
        for size in [1usize, 2, 3, 5, 8] {
            let out = Universe::run(size, |c| c.allgather(c.rank() as u32 * 10).unwrap()).unwrap();
            let expect: Vec<u32> = (0..size as u32).map(|r| r * 10).collect();
            for v in out {
                assert_eq!(v, expect, "size={size}");
            }
        }
    }

    #[test]
    fn allgather_of_vectors() {
        let out = Universe::run(4, |c| {
            c.allgather(vec![c.rank() as u8; c.rank() + 1]).unwrap()
        })
        .unwrap();
        for v in out {
            assert_eq!(v[0], vec![0]);
            assert_eq!(v[3], vec![3, 3, 3, 3]);
        }
    }

    #[test]
    fn alltoall_transposes_the_exchange_matrix() {
        for size in [1usize, 2, 4, 6] {
            let out = Universe::run(size, |c| {
                // Rank i sends (i, j) to rank j.
                let values: Vec<(usize, usize)> = (0..c.size()).map(|j| (c.rank(), j)).collect();
                c.alltoall(values).unwrap()
            })
            .unwrap();
            for (j, received) in out.into_iter().enumerate() {
                // Rank j must hold (i, j) at position i.
                for (i, v) in received.into_iter().enumerate() {
                    assert_eq!(v, (i, j), "size={size}");
                }
            }
        }
    }

    #[test]
    fn sendrecv_ring_rotation() {
        let out = Universe::run(5, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.sendrecv(next, prev, 9, c.rank()).unwrap()
        })
        .unwrap();
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn allgather_message_count_is_ring() {
        // Ring allgather: every rank sends p−1 pieces.
        let size = 6usize;
        let stats = Universe::run(size, |c| {
            c.allgather(1u8).unwrap();
            c.message_stats()
        })
        .unwrap();
        for s in stats {
            assert_eq!(s.sent, size as u64 - 1);
            assert_eq!(s.received, size as u64 - 1);
        }
    }

    #[test]
    fn mixed_collectives_in_sequence() {
        let out = Universe::run(3, |c| {
            let ag = c.allgather(c.rank() as u64).unwrap();
            let sum: u64 = ag.iter().sum();
            let a2a = c.alltoall(vec![sum; 3]).unwrap();
            c.allreduce(a2a.iter().sum::<u64>(), |a, b| a + b).unwrap()
        })
        .unwrap();
        // Each rank: ag = [0,1,2] sum 3; a2a all 3s sum 9; allreduce 27.
        assert!(out.iter().all(|&v| v == 27));
    }
}
