//! Section timing, mirroring the paper's five-section profile
//! (pre-processing, broadcast parameters, create data, main kernel, compute
//! p-values).

use std::time::{Duration, Instant};

/// Accumulates wall-clock time into named sections.
///
/// Sections may be entered repeatedly; durations accumulate. The finished
/// profile preserves first-entry order so tables print in the paper's column
/// order.
#[derive(Debug)]
pub struct SectionTimer {
    sections: Vec<(String, Duration)>,
    current: Option<(usize, Instant)>,
}

impl Default for SectionTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl SectionTimer {
    /// Create an empty timer.
    pub fn new() -> Self {
        SectionTimer {
            sections: Vec::new(),
            current: None,
        }
    }

    fn index_of(&mut self, name: &str) -> usize {
        if let Some(i) = self.sections.iter().position(|(n, _)| n == name) {
            i
        } else {
            self.sections.push((name.to_string(), Duration::ZERO));
            self.sections.len() - 1
        }
    }

    /// Start (or resume) timing `name`, closing any currently open section.
    pub fn start(&mut self, name: &str) {
        self.stop();
        let idx = self.index_of(name);
        self.current = Some((idx, Instant::now()));
    }

    /// Close the currently open section, if any.
    pub fn stop(&mut self) {
        if let Some((idx, began)) = self.current.take() {
            self.sections[idx].1 += began.elapsed();
        }
    }

    /// Time the closure as section `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        self.start(name);
        let out = f();
        self.stop();
        out
    }

    /// Finish and return the accumulated profile.
    pub fn finish(mut self) -> SectionProfile {
        self.stop();
        SectionProfile {
            sections: self.sections,
        }
    }
}

/// An immutable map of section name → accumulated duration, in first-entry
/// order.
#[derive(Debug, Clone)]
pub struct SectionProfile {
    sections: Vec<(String, Duration)>,
}

impl SectionProfile {
    /// Reassemble a profile from `(name, duration)` pairs, preserving order.
    /// This is the decode half of sending a profile over a byte transport
    /// (the rank-profile gather in `pmaxt` works on any [`Comm`](crate::Comm)
    /// backend, so profiles must survive serialization).
    pub fn from_sections(sections: Vec<(String, Duration)>) -> Self {
        SectionProfile { sections }
    }

    /// Duration of `name`, or zero if the section never ran.
    pub fn get(&self, name: &str) -> Duration {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .unwrap_or(Duration::ZERO)
    }

    /// Duration of `name` in seconds (zero if absent).
    pub fn seconds(&self, name: &str) -> f64 {
        self.get(name).as_secs_f64()
    }

    /// Iterate sections in first-entry order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.sections.iter().map(|(n, d)| (n.as_str(), *d))
    }

    /// Sum of all sections.
    pub fn total(&self) -> Duration {
        self.sections.iter().map(|(_, d)| *d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn sections_accumulate_and_keep_order() {
        let mut t = SectionTimer::new();
        t.time("alpha", || sleep(Duration::from_millis(5)));
        t.time("beta", || sleep(Duration::from_millis(5)));
        t.time("alpha", || sleep(Duration::from_millis(5)));
        let p = t.finish();
        let names: Vec<_> = p.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        assert!(p.get("alpha") >= Duration::from_millis(10));
        assert!(p.get("beta") >= Duration::from_millis(5));
        assert!(p.get("alpha") > p.get("beta"));
    }

    #[test]
    fn missing_section_is_zero() {
        let p = SectionTimer::new().finish();
        assert_eq!(p.get("nothing"), Duration::ZERO);
        assert_eq!(p.seconds("nothing"), 0.0);
    }

    #[test]
    fn start_implicitly_closes_previous() {
        let mut t = SectionTimer::new();
        t.start("a");
        sleep(Duration::from_millis(3));
        t.start("b");
        sleep(Duration::from_millis(3));
        let p = t.finish();
        assert!(p.get("a") >= Duration::from_millis(3));
        assert!(p.get("b") >= Duration::from_millis(3));
        assert!(p.total() >= Duration::from_millis(6));
    }

    #[test]
    fn closure_result_passes_through() {
        let mut t = SectionTimer::new();
        let v = t.time("calc", || 40 + 2);
        assert_eq!(v, 42);
    }

    #[test]
    fn stop_without_start_is_noop() {
        let mut t = SectionTimer::new();
        t.stop();
        let p = t.finish();
        assert_eq!(p.total(), Duration::ZERO);
    }
}
