//! TCP backend for the transport-generic [`Comm`] trait: `pmaxT` ranks over
//! a real wire.
//!
//! Every pair of ranks shares one full-duplex `TcpStream` (a full mesh, as
//! `MPI_COMM_WORLD` on an Ethernet cluster). Messages travel as
//! length-prefixed frames — magic, tag, payload length, payload — so a
//! receiver can always re-synchronize its expectations or reject garbage
//! deterministically. Per-peer delivery order is inherited from TCP's stream
//! ordering; messages for tags the receiver is not currently waiting on are
//! parked in a per-peer pending buffer, exactly as the in-process channel
//! substrate does, so the two backends present identical semantics.
//!
//! ## Mesh establishment
//!
//! Rank `r` *connects* to every lower rank and *accepts* from every higher
//! rank, identifying itself with a hello frame. Connect attempts retry with
//! exponential backoff so daemons may start in any order; accepts poll under
//! a deadline so a peer that never arrives fails the mesh instead of hanging
//! it. The handshake cannot deadlock: connects complete against the kernel's
//! listen backlog whether or not the peer has reached `accept` yet.
//!
//! ## Failure detection
//!
//! Blocking receives carry a read deadline ([`TcpConfig::read_timeout`]).
//! A peer that stops talking surfaces as [`CommError::Timeout`]; a closed
//! socket as [`CommError::Disconnected`]; a malformed frame as
//! [`CommError::Protocol`]. After a timeout the stream may have been left
//! mid-frame, so callers must treat the peer as failed rather than retry the
//! receive — which is precisely how jobd's span-reassignment logic uses it.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use crate::comm_trait::{CollectiveKind, TRAIT_COLL_BIT};
use crate::error::{CommError, CommResult};
use crate::MessageStats;

/// Frame magic: "SPRC" — SPRINT comm.
const MAGIC: u32 = 0x5350_5243;

/// Tag of the hello frame each connector sends to identify its rank. Lives in
/// the transport-private bit-63 space so it can never collide with user tags
/// (top two bits clear) or trait collective tags (bit 62).
const HELLO_TAG: u64 = (1 << 63) | 0x6865_6c6c;

/// Transport tuning knobs; the defaults suit a localhost or LAN fleet.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Connection attempts per peer during mesh establishment.
    pub connect_attempts: u32,
    /// Backoff before the second connect attempt; doubles per attempt.
    pub connect_base: Duration,
    /// Upper bound on any single connect backoff sleep.
    pub connect_max: Duration,
    /// Deadline for the whole accept side of mesh establishment.
    pub establish_timeout: Duration,
    /// Read deadline on blocking receives; `None` waits forever (no failure
    /// detection).
    pub read_timeout: Option<Duration>,
    /// Largest acceptable frame payload; larger length prefixes are protocol
    /// violations (they would otherwise let one bad frame allocate the moon).
    pub max_frame: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_attempts: 20,
            connect_base: Duration::from_millis(25),
            connect_max: Duration::from_secs(1),
            establish_timeout: Duration::from_secs(30),
            read_timeout: Some(Duration::from_secs(30)),
            max_frame: 1 << 28,
        }
    }
}

/// Wire-level traffic counters for one rank, superset of [`MessageStats`]:
/// the byte and retry counts only exist on a real transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpStats {
    /// Frames sent (hello frames excluded; they predate the mesh).
    pub frames_sent: u64,
    /// Frames received.
    pub frames_received: u64,
    /// Payload plus header bytes sent.
    pub bytes_sent: u64,
    /// Payload plus header bytes received.
    pub bytes_received: u64,
    /// Connect attempts beyond the first, summed over peers.
    pub connect_retries: u64,
    /// Collective operations started by this rank.
    pub collectives: u64,
}

/// One established peer link: buffered writer and reader halves of the same
/// socket, plus the out-of-order pending buffer.
struct Peer {
    writer: RefCell<BufWriter<TcpStream>>,
    reader: RefCell<BufReader<TcpStream>>,
    pending: RefCell<VecDeque<(u64, Vec<u8>)>>,
}

/// A rank's handle to a TCP mesh. Like the in-process `Communicator` it is
/// deliberately `!Sync`: each rank owns exactly one and drives it from its
/// own thread.
pub struct TcpComm {
    rank: usize,
    size: usize,
    peers: Vec<Option<Peer>>,
    coll_seq: Cell<u64>,
    frames_sent: Cell<u64>,
    frames_received: Cell<u64>,
    bytes_sent: Cell<u64>,
    bytes_received: Cell<u64>,
    connect_retries: u64,
    collectives: Cell<u64>,
}

const HEADER_LEN: usize = 16; // magic u32 | tag u64 | len u32

fn write_frame(w: &mut impl Write, tag: u64, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4..12].copy_from_slice(&tag.to_le_bytes());
    header[12..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Map a socket read error onto the comm error taxonomy for peer `peer`.
fn map_read_err(e: io::Error, peer: usize) -> CommError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => CommError::Timeout { peer },
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => CommError::Disconnected { peer },
        _ => CommError::Io(format!("read from peer {peer}: {e}")),
    }
}

fn map_write_err(e: io::Error, peer: usize) -> CommError {
    match e.kind() {
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => CommError::Disconnected { peer },
        _ => CommError::Io(format!("write to peer {peer}: {e}")),
    }
}

fn read_frame(r: &mut impl Read, peer: usize, max_frame: u32) -> CommResult<(u64, Vec<u8>)> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)
        .map_err(|e| map_read_err(e, peer))?;
    let magic = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(CommError::Protocol {
            peer,
            detail: format!("bad frame magic {magic:#010x}"),
        });
    }
    let tag = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(header[12..].try_into().expect("4 bytes"));
    if len > max_frame {
        return Err(CommError::Protocol {
            peer,
            detail: format!("frame length {len} exceeds cap {max_frame}"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| map_read_err(e, peer))?;
    Ok((tag, payload))
}

/// Connect to `addr` with exponential backoff; returns the stream and how
/// many retries it took.
fn connect_with_retry(addr: SocketAddr, cfg: &TcpConfig) -> Result<(TcpStream, u64), CommError> {
    let mut retries = 0u64;
    let mut last = None;
    for attempt in 0..cfg.connect_attempts.max(1) {
        if attempt > 0 {
            retries += 1;
            let backoff = cfg
                .connect_base
                .saturating_mul(1u32 << (attempt - 1).min(16))
                .min(cfg.connect_max);
            std::thread::sleep(backoff);
        }
        match TcpStream::connect(addr) {
            Ok(s) => return Ok((s, retries)),
            Err(e) => last = Some(e),
        }
    }
    Err(CommError::Io(format!(
        "connect to {addr} failed after {} attempts: {}",
        cfg.connect_attempts.max(1),
        last.map(|e| e.to_string()).unwrap_or_default()
    )))
}

/// Accept one connection under a deadline (poll + sleep; `TcpListener` has
/// no native accept timeout).
fn accept_deadline(listener: &TcpListener, deadline: Instant) -> Result<TcpStream, CommError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| CommError::Io(format!("listener nonblocking: {e}")))?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| CommError::Io(format!("stream blocking: {e}")))?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(CommError::Io(
                        "mesh establishment timed out waiting for peers to connect".into(),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(CommError::Io(format!("accept: {e}"))),
        }
    }
}

impl TcpComm {
    /// Establish rank `rank` of a `addrs.len()`-rank mesh. `listener` must be
    /// bound to `addrs[rank]`; every other entry names a peer's listener.
    /// Connects to all lower ranks (with retry, so start order is free),
    /// accepts from all higher ranks, and exchanges hello frames to bind
    /// sockets to ranks.
    pub fn establish(
        rank: usize,
        addrs: &[SocketAddr],
        listener: TcpListener,
        cfg: TcpConfig,
    ) -> CommResult<TcpComm> {
        let size = addrs.len();
        if rank >= size {
            return Err(CommError::InvalidRank { rank, size });
        }
        let deadline = Instant::now() + cfg.establish_timeout;
        let mut peers: Vec<Option<Peer>> = (0..size).map(|_| None).collect();
        let mut connect_retries = 0u64;

        // Connect side: this rank dials every lower rank and says hello.
        for (dst, addr) in addrs.iter().enumerate().take(rank) {
            let (stream, retries) = connect_with_retry(*addr, &cfg)?;
            connect_retries += retries;
            let _ = stream.set_nodelay(true);
            let mut w = BufWriter::new(
                stream
                    .try_clone()
                    .map_err(|e| CommError::Io(format!("clone stream to peer {dst}: {e}")))?,
            );
            write_frame(&mut w, HELLO_TAG, &(rank as u64).to_le_bytes())
                .map_err(|e| map_write_err(e, dst))?;
            peers[dst] = Some(Peer {
                writer: RefCell::new(w),
                reader: RefCell::new(BufReader::new(stream)),
                pending: RefCell::new(VecDeque::new()),
            });
        }

        // Accept side: every higher rank dials us; the hello frame says who.
        for _ in rank + 1..size {
            let stream = accept_deadline(&listener, deadline)?;
            let _ = stream.set_nodelay(true);
            // Bound the hello read by the remaining establishment budget.
            let remaining = deadline.saturating_duration_since(Instant::now());
            let _ = stream.set_read_timeout(Some(remaining.max(Duration::from_millis(10))));
            let mut reader = BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| CommError::Io(format!("clone accepted stream: {e}")))?,
            );
            let (tag, payload) = read_frame(&mut reader, size, cfg.max_frame)?;
            if tag != HELLO_TAG || payload.len() != 8 {
                return Err(CommError::Protocol {
                    peer: size,
                    detail: "expected hello frame on new connection".into(),
                });
            }
            let src = u64::from_le_bytes(payload.try_into().expect("8 bytes")) as usize;
            if src <= rank || src >= size {
                return Err(CommError::Protocol {
                    peer: src,
                    detail: format!("hello claims invalid rank {src} for acceptor {rank}"),
                });
            }
            if peers[src].is_some() {
                return Err(CommError::Protocol {
                    peer: src,
                    detail: format!("duplicate connection from rank {src}"),
                });
            }
            peers[src] = Some(Peer {
                writer: RefCell::new(BufWriter::new(stream)),
                reader: RefCell::new(reader),
                pending: RefCell::new(VecDeque::new()),
            });
        }

        // Arm the steady-state read deadline on every link.
        for peer in peers.iter().flatten() {
            let _ = peer
                .reader
                .borrow()
                .get_ref()
                .set_read_timeout(cfg.read_timeout);
        }

        Ok(TcpComm {
            rank,
            size,
            peers,
            coll_seq: Cell::new(0),
            frames_sent: Cell::new(0),
            frames_received: Cell::new(0),
            bytes_sent: Cell::new(0),
            bytes_received: Cell::new(0),
            connect_retries,
            collectives: Cell::new(0),
        })
    }

    /// Wire-level traffic counters.
    pub fn stats(&self) -> TcpStats {
        TcpStats {
            frames_sent: self.frames_sent.get(),
            frames_received: self.frames_received.get(),
            bytes_sent: self.bytes_sent.get(),
            bytes_received: self.bytes_received.get(),
            connect_retries: self.connect_retries,
            collectives: self.collectives.get(),
        }
    }

    fn peer(&self, rank: usize) -> CommResult<&Peer> {
        if rank >= self.size {
            return Err(CommError::InvalidRank {
                rank,
                size: self.size,
            });
        }
        self.peers[rank].as_ref().ok_or(CommError::InvalidRank {
            rank,
            size: self.size,
        })
    }
}

impl crate::comm_trait::Comm for TcpComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_bytes(&self, dst: usize, tag: u64, payload: Vec<u8>) -> CommResult<()> {
        let peer = self.peer(dst)?;
        let mut w = peer.writer.borrow_mut();
        write_frame(&mut *w, tag, &payload).map_err(|e| map_write_err(e, dst))?;
        self.frames_sent.set(self.frames_sent.get() + 1);
        self.bytes_sent
            .set(self.bytes_sent.get() + (HEADER_LEN + payload.len()) as u64);
        Ok(())
    }

    fn recv_bytes(&self, src: usize, tag: u64) -> CommResult<Vec<u8>> {
        let peer = self.peer(src)?;
        // First look through frames that already arrived out of order.
        {
            let mut pend = peer.pending.borrow_mut();
            if let Some(pos) = pend.iter().position(|(t, _)| *t == tag) {
                let (_, payload) = pend.remove(pos).expect("position just found");
                self.frames_received.set(self.frames_received.get() + 1);
                return Ok(payload);
            }
        }
        loop {
            let (got_tag, payload) = {
                let mut r = peer.reader.borrow_mut();
                read_frame(&mut *r, src, u32::MAX)?
            };
            self.bytes_received
                .set(self.bytes_received.get() + (HEADER_LEN + payload.len()) as u64);
            if got_tag == tag {
                self.frames_received.set(self.frames_received.get() + 1);
                return Ok(payload);
            }
            peer.pending.borrow_mut().push_back((got_tag, payload));
        }
    }

    fn next_collective(&self, kind: CollectiveKind) -> u64 {
        self.collectives.set(self.collectives.get() + 1);
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        TRAIT_COLL_BIT | (seq << 3) | kind as u64
    }

    fn message_stats(&self) -> MessageStats {
        MessageStats {
            sent: self.frames_sent.get(),
            received: self.frames_received.get(),
            collectives: self.collectives.get(),
        }
    }
}

/// A set of pre-bound localhost listeners: bind first, then spawn ranks, so
/// no connect can race a listener that does not exist yet. This is the test
/// and benchmark harness for the TCP backend — the cross-process analogue is
/// jobd's peer roster, where retry/backoff absorbs start-order races.
pub struct TcpFleet {
    addrs: Vec<SocketAddr>,
    listeners: Vec<TcpListener>,
    cfg: TcpConfig,
}

impl TcpFleet {
    /// Bind `size` port-0 listeners on 127.0.0.1 with default tuning.
    pub fn localhost(size: usize) -> io::Result<TcpFleet> {
        Self::localhost_with(size, TcpConfig::default())
    }

    /// Bind `size` port-0 listeners on 127.0.0.1 with explicit tuning.
    pub fn localhost_with(size: usize, cfg: TcpConfig) -> io::Result<TcpFleet> {
        assert!(size > 0, "a fleet needs at least one rank");
        let mut addrs = Vec::with_capacity(size);
        let mut listeners = Vec::with_capacity(size);
        for _ in 0..size {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }
        Ok(TcpFleet {
            addrs,
            listeners,
            cfg,
        })
    }

    /// The bound address of every rank's listener, in rank order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Run `body` once per rank, each rank on its own OS thread with its own
    /// established [`TcpComm`], and return the results in rank order —
    /// the TCP twin of `Universe::run`.
    pub fn run<T, F>(self, body: F) -> CommResult<Vec<T>>
    where
        T: Send,
        F: Fn(&TcpComm) -> T + Send + Sync,
    {
        let TcpFleet {
            addrs,
            listeners,
            cfg,
        } = self;
        std::thread::scope(|s| {
            let addrs = &addrs;
            let cfg = &cfg;
            let body = &body;
            let handles: Vec<_> = listeners
                .into_iter()
                .enumerate()
                .map(|(rank, listener)| {
                    s.spawn(move || -> CommResult<T> {
                        let comm = TcpComm::establish(rank, addrs, listener, cfg.clone())?;
                        Ok(body(&comm))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm_trait::Comm;

    #[test]
    fn point_to_point_round_trip_and_stats() {
        let results = TcpFleet::localhost(2)
            .unwrap()
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send_bytes(1, 7, vec![1, 2, 3]).unwrap();
                    let back = comm.recv_bytes(1, 8).unwrap();
                    (back, comm.stats())
                } else {
                    let got = comm.recv_bytes(0, 7).unwrap();
                    comm.send_bytes(0, 8, got.clone()).unwrap();
                    (got, comm.stats())
                }
            })
            .unwrap();
        assert_eq!(results[0].0, vec![1, 2, 3]);
        assert_eq!(results[1].0, vec![1, 2, 3]);
        for (_, stats) in &results {
            assert_eq!(stats.frames_sent, 1);
            assert_eq!(stats.frames_received, 1);
            // 16-byte header + 3-byte payload per frame, both directions.
            assert_eq!(stats.bytes_sent, 19);
            assert_eq!(stats.bytes_received, 19);
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered_per_peer() {
        let results = TcpFleet::localhost(2)
            .unwrap()
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send_bytes(1, 10, vec![10]).unwrap();
                    comm.send_bytes(1, 20, vec![20]).unwrap();
                    comm.send_bytes(1, 30, vec![30]).unwrap();
                    Vec::new()
                } else {
                    // Ask for the tags in reverse send order.
                    let a = comm.recv_bytes(0, 30).unwrap();
                    let b = comm.recv_bytes(0, 20).unwrap();
                    let c = comm.recv_bytes(0, 10).unwrap();
                    vec![a[0], b[0], c[0]]
                }
            })
            .unwrap();
        assert_eq!(results[1], vec![30, 20, 10]);
    }

    #[test]
    fn collectives_over_tcp_match_channel_backend() {
        for p in [1usize, 2, 3, 4] {
            let tcp = TcpFleet::localhost(p)
                .unwrap()
                .run(|comm| {
                    let payload = if comm.is_master() {
                        Some(vec![42u8; 5])
                    } else {
                        None
                    };
                    let b = comm.bcast_bytes(0, payload).unwrap();
                    comm.barrier().unwrap();
                    let r = comm.reduce_sum_u64(0, vec![comm.rank() as u64, 1]).unwrap();
                    let g = comm.gather_bytes(0, vec![comm.rank() as u8]).unwrap();
                    (b, r, g)
                })
                .unwrap();
            assert!(tcp.iter().all(|(b, _, _)| b == &vec![42u8; 5]));
            let expect: u64 = (0..p as u64).sum();
            assert_eq!(tcp[0].1, Some(vec![expect, p as u64]));
            assert_eq!(
                tcp[0].2,
                Some((0..p as u8).map(|r| vec![r]).collect::<Vec<_>>())
            );
            assert!(tcp[1..].iter().all(|(_, r, g)| r.is_none() && g.is_none()));
        }
    }

    #[test]
    fn read_deadline_detects_a_silent_peer() {
        let cfg = TcpConfig {
            read_timeout: Some(Duration::from_millis(100)),
            ..TcpConfig::default()
        };
        let results = TcpFleet::localhost_with(2, cfg)
            .unwrap()
            .run(|comm| {
                if comm.rank() == 0 {
                    // Peer 1 never sends on tag 5: the deadline must fire.
                    match comm.recv_bytes(1, 5) {
                        Err(CommError::Timeout { peer }) => format!("timeout:{peer}"),
                        other => format!("unexpected: {other:?}"),
                    }
                } else {
                    // Stay alive past rank 0's deadline without sending.
                    std::thread::sleep(Duration::from_millis(300));
                    "idle".to_string()
                }
            })
            .unwrap();
        assert_eq!(results[0], "timeout:1");
    }

    #[test]
    fn closed_peer_surfaces_as_disconnected() {
        let results = TcpFleet::localhost(2)
            .unwrap()
            .run(|comm| {
                if comm.rank() == 0 {
                    // Returning drops the sockets; rank 1's read sees EOF.
                    "gone".to_string()
                } else {
                    match comm.recv_bytes(0, 5) {
                        Err(CommError::Disconnected { peer }) => format!("disconnected:{peer}"),
                        other => format!("unexpected: {other:?}"),
                    }
                }
            })
            .unwrap();
        assert_eq!(results[1], "disconnected:0");
    }

    #[test]
    fn connect_retries_absorb_a_late_listener() {
        // Rank 1 dials rank 0's address before anything listens there: bind
        // the fleet, drop rank 0's listener... not possible through the fleet
        // API, so exercise connect_with_retry directly against a port that
        // starts listening late.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe); // port is now (very likely) closed
        let cfg = TcpConfig {
            connect_attempts: 40,
            connect_base: Duration::from_millis(10),
            ..TcpConfig::default()
        };
        let opener = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            TcpListener::bind(addr)
        });
        let (stream, retries) = connect_with_retry(addr, &cfg).unwrap();
        drop(stream);
        assert!(
            retries > 0,
            "the first attempt should have found no listener"
        );
        opener.join().unwrap().unwrap();
    }
}
