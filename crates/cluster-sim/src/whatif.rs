//! What-if analysis on top of the platform models: the questions a life
//! scientist (or the paper's §5 conclusions) would ask before choosing a
//! platform — how far does scaling stay efficient, which platform finishes a
//! given analysis first, and how sensitive is a cloud platform to its network.

use crate::model::simulate;
use crate::platform::PlatformSpec;
use crate::workload::Workload;

/// Parallel efficiency at `p` processes: `speedup(p) / p` over total time.
pub fn efficiency(platform: &PlatformSpec, workload: Workload, p: u32) -> f64 {
    let t1 = simulate(platform, workload, 1).total();
    let tp = simulate(platform, workload, p).total();
    t1 / tp / p as f64
}

/// The largest reported process count whose efficiency is at least
/// `min_efficiency` (scanning the platform's own `proc_counts`). Returns 1
/// when no multi-process point qualifies.
pub fn max_procs_at_efficiency(
    platform: &PlatformSpec,
    workload: Workload,
    min_efficiency: f64,
) -> u32 {
    platform
        .proc_counts
        .iter()
        .copied()
        .filter(|&p| efficiency(platform, workload, p) >= min_efficiency)
        .max()
        .unwrap_or(1)
}

/// The platform (index into `platforms`) with the smallest total time for
/// `workload` at each platform's maximum reported process count.
pub fn fastest_platform(platforms: &[PlatformSpec], workload: Workload) -> usize {
    platforms
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let ta = simulate(a, workload, *a.proc_counts.last().unwrap()).total();
            let tb = simulate(b, workload, *b.proc_counts.last().unwrap()).total();
            ta.partial_cmp(&tb).expect("finite times")
        })
        .map(|(i, _)| i)
        .expect("non-empty platform list")
}

/// Smallest permutation count (scanning powers of two in
/// `[b_min, b_max]`) at which platform `a` at `pa` processes beats platform
/// `b` at `pb` processes on total time. `None` if it never does in range.
///
/// This locates the *crossover* the paper's conclusion gestures at: overheads
/// dominate small analyses (favouring simple platforms), kernels dominate
/// large ones (favouring parallel machines).
pub fn crossover_permutations(
    a: &PlatformSpec,
    pa: u32,
    b: &PlatformSpec,
    pb: u32,
    genes: u64,
    b_min: u64,
    b_max: u64,
) -> Option<u64> {
    let mut bb = b_min.max(1);
    while bb <= b_max {
        let w = Workload::new(genes, bb);
        if simulate(a, w, pa).total() < simulate(b, w, pb).total() {
            return Some(bb);
        }
        bb = bb.saturating_mul(2);
    }
    None
}

/// Rescale a platform's inter-node communication constants by `factor`
/// (> 1 = worse network). Models the paper's EC2 discussion: "instances are
/// connected using a virtual ethernet network with no guarantees on bandwidth
/// or latency".
pub fn with_network_scaled(platform: &PlatformSpec, factor: f64) -> PlatformSpec {
    let mut p = platform.clone();
    p.comm.alpha_inter *= factor;
    p.comm.pv_base *= factor;
    p.comm.pv_round *= factor;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{ec2, ecdf, hector, ness, quadcore};
    use crate::workload::REFERENCE;

    #[test]
    fn efficiency_is_one_at_single_process() {
        for p in [hector(), ecdf(), ec2(), ness(), quadcore()] {
            assert!(
                (efficiency(&p, REFERENCE, 1) - 1.0).abs() < 1e-12,
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn efficiency_decreases_with_scale() {
        let h = hector();
        let e16 = efficiency(&h, REFERENCE, 16);
        let e512 = efficiency(&h, REFERENCE, 512);
        assert!(e16 > e512, "e16={e16} e512={e512}");
        assert!(e512 > 0.5, "HECToR stays >50% efficient at 512: {e512}");
    }

    #[test]
    fn hector_sustains_full_scale_at_half_efficiency() {
        assert_eq!(max_procs_at_efficiency(&hector(), REFERENCE, 0.5), 512);
        // EC2's efficiency collapses much earlier (paper Table III: speedup
        // 18.37 at 32 ⇒ 57%).
        let ec2_max = max_procs_at_efficiency(&ec2(), REFERENCE, 0.7);
        assert!(ec2_max <= 16, "EC2 at 70% efficiency: {ec2_max}");
    }

    #[test]
    fn fastest_platform_is_hector_for_the_reference_workload() {
        let platforms = vec![hector(), ecdf(), ec2(), ness(), quadcore()];
        assert_eq!(fastest_platform(&platforms, REFERENCE), 0);
    }

    #[test]
    fn crossover_exists_between_desktop_and_cloud() {
        // For tiny permutation counts the quad-core desktop (no network)
        // beats 32 EC2 processes (seconds of collective overhead); for the
        // paper's B = 150 000 the cloud wins. The crossover is in between.
        let quad = quadcore();
        let cloud = ec2();
        let tiny = Workload::new(6_102, 100);
        assert!(
            simulate(&quad, tiny, 4).total() < simulate(&cloud, tiny, 32).total(),
            "desktop should win at B=100"
        );
        assert!(
            simulate(&quad, REFERENCE, 4).total() > simulate(&cloud, REFERENCE, 32).total(),
            "cloud should win at B=150000"
        );
        let cross = crossover_permutations(&cloud, 32, &quad, 4, 6_102, 100, 1 << 22)
            .expect("crossover in range");
        assert!(cross > 100 && cross < 150_000, "crossover at B={cross}");
    }

    #[test]
    fn degrading_the_network_hurts_only_communication() {
        let base = ec2();
        let bad = with_network_scaled(&base, 10.0);
        let w = REFERENCE;
        let b32 = simulate(&base, w, 32);
        let d32 = simulate(&bad, w, 32);
        assert_eq!(b32.kernel, d32.kernel, "kernel untouched");
        assert!(d32.bcast > 5.0 * b32.bcast);
        assert!(d32.total() > b32.total());
        // Single process unaffected (no inter rounds).
        assert!((simulate(&base, w, 1).total() - simulate(&bad, w, 1).total()).abs() < 1e-9);
    }

    #[test]
    fn perfect_network_restores_near_kernel_speedup() {
        // With free communication, EC2's total speedup approaches its kernel
        // speedup.
        let ideal = with_network_scaled(&ec2(), 0.0);
        let t1 = simulate(&ideal, REFERENCE, 1).total();
        let t32 = simulate(&ideal, REFERENCE, 32).total();
        let kernel_speedup = ec2().kernel_t1 / simulate(&ec2(), REFERENCE, 32).kernel;
        let total_speedup = t1 / t32;
        assert!(
            (total_speedup - kernel_speedup).abs() / kernel_speedup < 0.05,
            "total {total_speedup} vs kernel {kernel_speedup}"
        );
    }
}
