//! The five-section performance model.
//!
//! For a platform, workload and process count the model produces the same
//! five wall-clock sections the paper profiles:
//!
//! - **pre-processing** — master-only constant;
//! - **broadcast parameters** — a collective tree: per-round latencies split
//!   into intra-node and inter-node rounds (EC2's virtual network makes the
//!   inter rounds expensive);
//! - **create data** — local working-copy construction, weakly growing with
//!   tree depth;
//! - **main kernel** — perfectly divisible work `T1·scale/p`, inflated by the
//!   platform's memory-bus contention profile (the mechanism behind the
//!   ECDF 4→8 and quad-core 2→4 drop-offs the paper discusses);
//! - **compute p-values** — count gather + reduction, kicking in once the
//!   process count crosses the platform's threshold.

use crate::platform::PlatformSpec;
use crate::workload::Workload;

/// Modelled wall-clock profile of one run, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimProfile {
    /// Process count.
    pub procs: u32,
    /// Pre-processing (s).
    pub pre: f64,
    /// Broadcast parameters (s).
    pub bcast: f64,
    /// Create data (s).
    pub create: f64,
    /// Main kernel (s).
    pub kernel: f64,
    /// Compute p-values (s).
    pub pvalues: f64,
}

impl SimProfile {
    /// Total run time.
    pub fn total(&self) -> f64 {
        self.pre + self.bcast + self.create + self.kernel + self.pvalues
    }
}

/// Model one run.
pub fn simulate(platform: &PlatformSpec, workload: Workload, procs: u32) -> SimProfile {
    assert!(procs >= 1, "at least one process");
    let c = &platform.comm;
    let (intra, inter) = platform.tree_rounds(procs);
    let rounds = intra + inter;

    let bcast = if procs == 1 {
        c.bcast_base
    } else {
        c.bcast_base + c.alpha_intra * intra as f64 + c.alpha_inter * inter as f64
    };

    // Create data grows with the first couple of tree rounds, then the
    // transform overlaps with communication (constant in the tables).
    let data_scale = workload.genes as f64 / crate::workload::REFERENCE.genes as f64;
    let create = c.create_base * data_scale.max(1.0) + c.create_round * rounds.min(2) as f64;

    let kernel =
        platform.kernel_t1 * workload.kernel_scale() / procs as f64 * platform.contention_at(procs);

    let pv_scale = data_scale.max(1.0);
    let pvalues = if procs >= c.pv_threshold.max(2) {
        let past = rounds.saturating_sub(if c.pv_threshold <= 2 {
            1
        } else {
            c.pv_threshold.trailing_zeros()
        });
        c.pv_serial * pv_scale + c.pv_base + c.pv_round * past as f64
    } else {
        c.pv_serial * pv_scale
    };

    SimProfile {
        procs,
        pre: c.pre,
        bcast,
        create,
        kernel,
        pvalues,
    }
}

/// Sweep the platform's reported process counts.
pub fn sweep(platform: &PlatformSpec, workload: Workload) -> Vec<SimProfile> {
    platform
        .proc_counts
        .iter()
        .map(|&p| simulate(platform, workload, p))
        .collect()
}

/// Total-time speedup of each profile relative to the first (p = 1) profile.
pub fn total_speedups(profiles: &[SimProfile]) -> Vec<f64> {
    let base = profiles[0].total();
    profiles.iter().map(|p| base / p.total()).collect()
}

/// Kernel-only speedups relative to the first profile.
pub fn kernel_speedups(profiles: &[SimProfile]) -> Vec<f64> {
    let base = profiles[0].kernel;
    profiles.iter().map(|p| base / p.kernel).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{ec2, ecdf, hector, ness, quadcore};
    use crate::workload::{Workload, REFERENCE};

    #[test]
    fn single_process_matches_calibration() {
        for plat in [hector(), ecdf(), ec2(), ness(), quadcore()] {
            let prof = simulate(&plat, REFERENCE, 1);
            assert!(
                (prof.kernel - plat.kernel_t1).abs() < 1e-9,
                "{}: kernel {} vs t1 {}",
                plat.name,
                prof.kernel,
                plat.kernel_t1
            );
            assert_eq!(prof.pre, plat.comm.pre);
        }
    }

    #[test]
    fn hector_kernel_near_paper_at_512() {
        // Paper Table I: kernel 1.633 s at 512 processes.
        let prof = simulate(&hector(), REFERENCE, 512);
        assert!(
            (prof.kernel - 1.633).abs() < 0.05,
            "modelled {}",
            prof.kernel
        );
    }

    #[test]
    fn ecdf_membus_dropoff_at_8() {
        // Paper: "a drop-off in speed-up occurs on ECDF at process counts of
        // 4–8 … likely to correspond to the memory bus bandwidth".
        let profiles = sweep(&ecdf(), REFERENCE);
        let ks = kernel_speedups(&profiles);
        // proc counts: 1,2,4,8,…: efficiency at 4 high, at 8 much lower.
        let eff4 = ks[2] / 4.0;
        let eff8 = ks[3] / 8.0;
        assert!(eff4 > 0.9, "eff4 {eff4}");
        assert!(eff8 < 0.8, "eff8 {eff8}");
    }

    #[test]
    fn quadcore_dropoff_at_4() {
        let profiles = sweep(&quadcore(), REFERENCE);
        let ks = kernel_speedups(&profiles);
        assert!((ks[1] - 2.0).abs() < 0.02, "2 procs ≈ perfect: {}", ks[1]);
        assert!(ks[2] < 3.6 && ks[2] > 3.2, "4 procs ≈ 3.38: {}", ks[2]);
    }

    #[test]
    fn kernel_time_decreases_monotonically() {
        for plat in [hector(), ecdf(), ec2(), ness(), quadcore()] {
            let profiles = sweep(&plat, REFERENCE);
            for w in profiles.windows(2) {
                assert!(
                    w[1].kernel < w[0].kernel,
                    "{}: kernel not decreasing at p={}",
                    plat.name,
                    w[1].procs
                );
            }
        }
    }

    #[test]
    fn total_and_kernel_speedups_diverge_at_scale() {
        // Paper §4.4: total and kernel speed-ups "start to diverge more and
        // more at higher process counts" on HECToR.
        let profiles = sweep(&hector(), REFERENCE);
        let total = total_speedups(&profiles);
        let kernel = kernel_speedups(&profiles);
        let low_gap = kernel[2] - total[2]; // p = 4
        let high_gap = kernel[9] - total[9]; // p = 512
        assert!(high_gap > low_gap * 10.0, "low {low_gap} high {high_gap}");
    }

    #[test]
    fn ec2_network_dominates_at_scale() {
        // EC2's broadcast + p-value sections blow up with instances.
        let p32 = simulate(&ec2(), REFERENCE, 32);
        let p4 = simulate(&ec2(), REFERENCE, 4);
        assert!(p32.bcast > 10.0 * p4.bcast.max(0.01));
        assert!(p32.pvalues > 3.0);
    }

    #[test]
    fn larger_workload_scales_kernel_linearly_in_b() {
        let w1 = Workload::new(36_612, 500_000);
        let w2 = Workload::new(36_612, 2_000_000);
        let a = simulate(&hector(), w1, 256);
        let b = simulate(&hector(), w2, 256);
        assert!((b.kernel / a.kernel - 4.0).abs() < 1e-9);
    }

    #[test]
    fn profile_total_sums_sections() {
        let p = simulate(&hector(), REFERENCE, 8);
        let manual = p.pre + p.bcast + p.create + p.kernel + p.pvalues;
        assert_eq!(p.total(), manual);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_procs_rejected() {
        let _ = simulate(&hector(), REFERENCE, 0);
    }
}
