//! # cluster-sim — analytic performance models of the paper's platforms
//!
//! The paper's evaluation ran on five systems we do not have: HECToR (a Cray
//! XT supercomputer), the ECDF cluster, Amazon EC2, the Ness SMP and a
//! quad-core desktop. Per the substitution policy in DESIGN.md, this crate
//! models each platform analytically and regenerates every table and figure
//! of the evaluation:
//!
//! - [`tables::profile_table`] — Tables I–V (five-section profile + total and
//!   kernel speedups, per process count);
//! - [`tables::table6`] — Table VI (large workloads at 256 processes vs the
//!   serial estimate);
//! - [`figure::figure3_series`] — Figure 3 (speedup curves vs optimal).
//!
//! The model captures the three mechanisms the paper's discussion (§4.4)
//! identifies — embarrassingly parallel kernel scaling, collective
//! communication growing with tree depth (catastrophically so on EC2's
//! virtual network), and per-node memory-bus contention (the ECDF 4→8 and
//! quad-core 2→4 drop-offs) — with constants calibrated against the paper's
//! published single-process timings. [`compare`] quantifies the model-vs-
//! paper agreement per table cell; the test suite asserts kernel times within
//! 10% and speedups within 15% for *every* published cell.

pub mod compare;
pub mod figure;
pub mod model;
pub mod paper_data;
pub mod platform;
pub mod tables;
pub mod whatif;
pub mod workload;

pub use model::{simulate, sweep, SimProfile};
pub use platform::PlatformSpec;
pub use workload::{Workload, REFERENCE};
