//! Figure 3: total-time speedup curves of all platforms against the optimal
//! diagonal, on log-log axes.

use crate::model::{sweep, total_speedups};
use crate::platform::PlatformSpec;
use crate::workload::REFERENCE;

/// One platform's speedup series.
#[derive(Debug, Clone)]
pub struct SpeedupSeries {
    /// Platform name.
    pub name: String,
    /// `(process count, total speedup)` points.
    pub points: Vec<(u32, f64)>,
}

/// Compute the Figure 3 series for every paper platform plus the optimal
/// diagonal over the widest process range.
pub fn figure3_series() -> Vec<SpeedupSeries> {
    let mut out = Vec::new();
    let mut max_procs = 1u32;
    for plat in PlatformSpec::all() {
        let profiles = sweep(&plat, REFERENCE);
        let speedups = total_speedups(&profiles);
        max_procs = max_procs.max(*plat.proc_counts.last().unwrap());
        out.push(SpeedupSeries {
            name: plat.name.to_string(),
            points: plat.proc_counts.iter().copied().zip(speedups).collect(),
        });
    }
    let mut optimal = Vec::new();
    let mut p = 1u32;
    while p <= max_procs {
        optimal.push((p, p as f64));
        p *= 2;
    }
    out.insert(
        0,
        SpeedupSeries {
            name: "Optimal".to_string(),
            points: optimal,
        },
    );
    out
}

/// Render the series as CSV (`platform,procs,speedup` per line).
pub fn to_csv(series: &[SpeedupSeries]) -> String {
    let mut s = String::from("platform,procs,speedup\n");
    for ser in series {
        for &(p, v) in &ser.points {
            s.push_str(&format!("{},{},{:.4}\n", ser.name, p, v));
        }
    }
    s
}

/// A simple ASCII log-log plot of the speedup curves (processes on x,
/// speedup on y), for terminal inspection.
pub fn ascii_plot(series: &[SpeedupSeries], width: usize, height: usize) -> String {
    let max_x = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(p, _)| p as f64))
        .fold(1.0f64, f64::max);
    let max_y = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(_, v)| v))
        .fold(1.0f64, f64::max);
    let lx = max_x.log2();
    let ly = max_y.log2();
    let mut grid = vec![vec![b' '; width]; height];
    let markers = [b'*', b'H', b'E', b'A', b'N', b'Q'];
    for (si, ser) in series.iter().enumerate() {
        let mark = markers[si % markers.len()];
        for &(p, v) in &ser.points {
            if v <= 0.0 {
                continue;
            }
            let x = ((p as f64).log2() / lx * (width - 1) as f64).round() as usize;
            let y = (v.log2() / ly * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "Speedup (log2, max {max_y:.0}) vs process count (log2, max {max_x:.0})\n"
    ));
    for (si, ser) in series.iter().enumerate() {
        out.push_str(&format!(
            "  {} = {}\n",
            markers[si % markers.len()] as char,
            ser.name
        ));
    }
    for row in grid {
        out.push('|');
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_cover_all_platforms_plus_optimal() {
        let s = figure3_series();
        assert_eq!(s.len(), 6);
        assert_eq!(s[0].name, "Optimal");
        let names: Vec<&str> = s.iter().map(|x| x.name.as_str()).collect();
        assert!(names.contains(&"HECToR"));
        assert!(names.contains(&"Amazon EC2"));
    }

    #[test]
    fn hector_dominates_other_platforms_at_32() {
        // Paper Figure 3: HECToR's curve is closest to optimal.
        let s = figure3_series();
        let at32 = |name: &str| {
            s.iter()
                .find(|x| x.name == name)
                .unwrap()
                .points
                .iter()
                .find(|&&(p, _)| p == 32)
                .map(|&(_, v)| v)
        };
        let hector = at32("HECToR").unwrap();
        let ecdf = at32("ECDF").unwrap();
        let ec2 = at32("Amazon EC2").unwrap();
        assert!(hector > ecdf, "hector {hector} ecdf {ecdf}");
        assert!(ecdf > ec2, "ecdf {ecdf} ec2 {ec2}");
    }

    #[test]
    fn speedups_monotone_increasing_on_hector() {
        let s = figure3_series();
        let h = s.iter().find(|x| x.name == "HECToR").unwrap();
        for w in h.points.windows(2) {
            assert!(w[1].1 > w[0].1, "speedup should grow: {:?}", w);
        }
    }

    #[test]
    fn below_optimal_everywhere() {
        for ser in figure3_series().iter().skip(1) {
            for &(p, v) in &ser.points {
                assert!(v <= p as f64 + 1e-9, "{}: {v} at {p}", ser.name);
            }
        }
    }

    #[test]
    fn csv_well_formed() {
        let csv = to_csv(&figure3_series());
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[0], "platform,procs,speedup");
        assert!(lines.len() > 30);
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), 3);
        }
    }

    #[test]
    fn ascii_plot_renders() {
        let plot = ascii_plot(&figure3_series(), 64, 20);
        assert!(plot.contains("HECToR"));
        assert!(plot.lines().count() > 20);
        assert!(plot.contains('H'));
    }
}
