//! Specifications of the paper's five benchmark platforms.
//!
//! Each platform is described by a handful of physically meaningful
//! constants: single-process kernel time for the reference workload, a
//! memory-bus *contention profile* (how much the kernel slows down as
//! processes pack a node), and communication latencies split into intra-node
//! and inter-node rounds of the collective trees, plus a cloud join penalty
//! for EC2's virtualized network. The constants are calibrated against the
//! paper's own published single-process measurements (see
//! `calibration notes` on each constructor and EXPERIMENTS.md for the
//! per-cell comparison).

/// Communication and fixed-cost constants of one platform, in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CommParams {
    /// Constant term of the parameter broadcast.
    pub bcast_base: f64,
    /// Cost of one intra-node round of a collective tree.
    pub alpha_intra: f64,
    /// Cost of one inter-node round of a collective tree.
    pub alpha_inter: f64,
    /// Base cost of the "create data" section at one process.
    pub create_base: f64,
    /// Additional create-data cost per broadcast round (capped at 2 rounds —
    /// the transform is overlapped beyond that).
    pub create_round: f64,
    /// Master pre-processing cost (constant in the paper's tables).
    pub pre: f64,
    /// Pure p-value computation cost at one process.
    pub pv_serial: f64,
    /// Process count at which the count-gather collective starts costing.
    pub pv_threshold: u32,
    /// Collective base cost of the compute-p-values section once above the
    /// threshold.
    pub pv_base: f64,
    /// Additional compute-p-values cost per tree round past the threshold.
    pub pv_round: f64,
}

/// A benchmark platform.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    /// Display name, as in the paper.
    pub name: &'static str,
    /// Cores sharing one memory bus (a node / box / instance).
    pub cores_per_node: u32,
    /// Kernel seconds at one process for the reference workload
    /// (6102 × 76, B = 150 000) — the paper's own measurement.
    pub kernel_t1: f64,
    /// Memory-bus contention anchors `(processes on a node, slowdown
    /// factor)`; linearly interpolated, clamped at the ends.
    pub contention: Vec<(u32, f64)>,
    /// Optional global slowdown anchors over the *total* process count
    /// (cross-node traffic at very high p); interpolated like `contention`.
    pub global_scale: Vec<(u32, f64)>,
    /// Communication constants.
    pub comm: CommParams,
    /// The process counts the paper reports for this platform.
    pub proc_counts: Vec<u32>,
}

/// Piecewise-linear interpolation over `(x, y)` anchors, clamped outside the
/// range. Anchors must be sorted by `x`.
pub fn interp(anchors: &[(u32, f64)], x: u32) -> f64 {
    if anchors.is_empty() {
        return 1.0;
    }
    if x <= anchors[0].0 {
        return anchors[0].1;
    }
    for w in anchors.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x <= x1 {
            let t = (x - x0) as f64 / (x1 - x0) as f64;
            return y0 + t * (y1 - y0);
        }
    }
    anchors.last().unwrap().1
}

impl PlatformSpec {
    /// Contention factor with `p` total processes: packing fills nodes, so
    /// the per-node occupancy is `min(p, cores_per_node)`.
    pub fn contention_at(&self, p: u32) -> f64 {
        let used = p.min(self.cores_per_node);
        interp(&self.contention, used) * interp(&self.global_scale, p)
    }

    /// Collective-tree rounds at `p` processes, split into (intra, inter).
    pub fn tree_rounds(&self, p: u32) -> (u32, u32) {
        let total = if p <= 1 {
            0
        } else {
            32 - (p - 1).leading_zeros()
        };
        let intra_cap = if self.cores_per_node <= 1 {
            0
        } else {
            32 - (self.cores_per_node - 1).leading_zeros()
        };
        let intra = total.min(intra_cap);
        (intra, total - intra)
    }

    /// All five paper platforms.
    pub fn all() -> Vec<PlatformSpec> {
        vec![hector(), ecdf(), ec2(), ness(), quadcore()]
    }
}

/// HECToR — Cray XT, 2.3 GHz AMD Opteron, four quad-core sockets per blade,
/// SeaStar2 interconnect. Calibration: Table I (kernel_t1 = 795.6 s;
/// contention ≈ +4.7% once ≥4 processes share a blade; broadcast ≈ 3 ms per
/// tree round).
pub fn hector() -> PlatformSpec {
    PlatformSpec {
        name: "HECToR",
        cores_per_node: 16,
        kernel_t1: 795.600,
        contention: vec![(1, 1.0), (2, 1.021), (4, 1.045), (8, 1.047), (16, 1.047)],
        global_scale: vec![],
        comm: CommParams {
            bcast_base: 0.001,
            alpha_intra: 0.003,
            alpha_inter: 0.003,
            create_base: 0.010,
            create_round: 0.0015,
            pre: 0.260,
            pv_serial: 0.002,
            pv_threshold: 2,
            pv_base: 0.650,
            pv_round: 0.0,
        },
        proc_counts: vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512],
    }
}

/// ECDF ("Eddie") — IBM iDataPlex cluster, two quad-core Intel Westmere per
/// node (8 cores sharing 16 GB), Gigabit Ethernet. Calibration: Table II
/// (kernel_t1 = 467.273 s; strong memory-bus penalty filling the node:
/// ≈ +36% at 8 procs/node; extra cross-switch droop at 128).
pub fn ecdf() -> PlatformSpec {
    PlatformSpec {
        name: "ECDF",
        cores_per_node: 8,
        kernel_t1: 467.273,
        contention: vec![(1, 1.0), (2, 1.005), (4, 1.054), (8, 1.360)],
        global_scale: vec![(64, 1.0), (128, 1.17)],
        comm: CommParams {
            bcast_base: 0.0,
            alpha_intra: 0.0013,
            alpha_inter: 0.020,
            create_base: 0.003,
            create_round: 0.001,
            pre: 0.160,
            pv_serial: 0.000,
            pv_threshold: 8,
            pv_base: 1.220,
            pv_round: 0.02,
        },
        proc_counts: vec![1, 2, 4, 8, 16, 32, 64, 128],
    }
}

/// Amazon EC2 — 4-virtual-core instances (8 EC2 compute units), virtual
/// Ethernet with no bandwidth or latency guarantees. Calibration: Table III
/// (kernel_t1 = 539.074 s; heavy in-instance contention ≈ +39% at 4; large
/// per-round network costs: ≈ 0.93 s per inter-instance broadcast round).
pub fn ec2() -> PlatformSpec {
    PlatformSpec {
        name: "Amazon EC2",
        cores_per_node: 4,
        kernel_t1: 539.074,
        contention: vec![(1, 1.0), (2, 1.082), (4, 1.390)],
        global_scale: vec![],
        comm: CommParams {
            bcast_base: 0.0,
            alpha_intra: 0.004,
            alpha_inter: 0.930,
            create_base: 0.006,
            create_round: 0.004,
            pre: 0.270,
            pv_serial: 0.000,
            pv_threshold: 8,
            pv_base: 2.200,
            pv_round: 0.9,
        },
        proc_counts: vec![1, 2, 4, 8, 16, 32],
    }
}

/// Ness — EPCC's SMP: 16 dual-core 2.6 GHz Opterons in two 16-core boxes,
/// main memory as the interconnect. Calibration: Table IV
/// (kernel_t1 = 852.223 s; contention ≈ +59% at 16 processes on a box).
pub fn ness() -> PlatformSpec {
    PlatformSpec {
        name: "Ness",
        cores_per_node: 16,
        kernel_t1: 852.223,
        contention: vec![(1, 1.0), (2, 1.040), (4, 1.017), (8, 1.101), (16, 1.585)],
        global_scale: vec![],
        comm: CommParams {
            bcast_base: 0.0,
            alpha_intra: 0.015,
            alpha_inter: 0.015,
            create_base: 0.010,
            create_round: 0.003,
            pre: 0.400,
            pv_serial: 0.000,
            pv_threshold: 32, // never reached: gathers ride the memory bus
            pv_base: 0.0,
            pv_round: 0.0,
        },
        proc_counts: vec![1, 2, 4, 8, 16],
    }
}

/// Quad-core desktop — Intel Core2 Quad Q9300, 3 GB. Calibration: Table V
/// (kernel_t1 = 566.638 s; perfect scaling to 2, ≈ +18% contention at 4).
pub fn quadcore() -> PlatformSpec {
    PlatformSpec {
        name: "Quad-core",
        cores_per_node: 4,
        kernel_t1: 566.638,
        contention: vec![(1, 1.0), (2, 1.000), (4, 1.182)],
        global_scale: vec![],
        comm: CommParams {
            bcast_base: 0.0,
            alpha_intra: 0.004,
            alpha_inter: 0.004,
            create_base: 0.007,
            create_round: 0.003,
            pre: 0.140,
            pv_serial: 0.001,
            pv_threshold: 2,
            pv_base: 0.080,
            pv_round: 0.62,
        },
        proc_counts: vec![1, 2, 4],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interp_clamps_and_interpolates() {
        let anchors = [(1u32, 1.0), (4, 2.0), (8, 4.0)];
        assert_eq!(interp(&anchors, 0), 1.0);
        assert_eq!(interp(&anchors, 1), 1.0);
        assert_eq!(interp(&anchors, 4), 2.0);
        assert!((interp(&anchors, 6) - 3.0).abs() < 1e-12);
        assert_eq!(interp(&anchors, 8), 4.0);
        assert_eq!(interp(&anchors, 100), 4.0);
        assert_eq!(interp(&[], 5), 1.0);
    }

    #[test]
    fn tree_rounds_split_intra_inter() {
        let h = hector(); // 16 cores per node
        assert_eq!(h.tree_rounds(1), (0, 0));
        assert_eq!(h.tree_rounds(2), (1, 0));
        assert_eq!(h.tree_rounds(16), (4, 0));
        assert_eq!(h.tree_rounds(32), (4, 1));
        assert_eq!(h.tree_rounds(512), (4, 5));
        let e = ec2(); // 4 cores per instance
        assert_eq!(e.tree_rounds(4), (2, 0));
        assert_eq!(e.tree_rounds(8), (2, 1));
        assert_eq!(e.tree_rounds(32), (2, 3));
    }

    #[test]
    fn contention_monotone_to_node_fill_on_ecdf() {
        let e = ecdf();
        assert!(e.contention_at(1) < e.contention_at(4));
        assert!(e.contention_at(4) < e.contention_at(8));
        // Packed nodes: same per-node contention from 8 up to 64.
        assert!((e.contention_at(8) - e.contention_at(64)).abs() < 1e-12);
        // Global droop kicks in at 128.
        assert!(e.contention_at(128) > e.contention_at(64));
    }

    #[test]
    fn all_platforms_well_formed() {
        for p in PlatformSpec::all() {
            assert!(p.kernel_t1 > 0.0, "{}", p.name);
            assert!(!p.proc_counts.is_empty());
            assert!(p.proc_counts.windows(2).all(|w| w[0] < w[1]));
            assert!(p.contention.windows(2).all(|w| w[0].0 < w[1].0));
            assert_eq!(p.contention_at(1), 1.0, "{}: no contention at 1", p.name);
            assert!(p.cores_per_node >= 1);
        }
    }

    #[test]
    fn single_process_kernel_matches_paper_t1() {
        assert_eq!(hector().kernel_t1, 795.6);
        assert_eq!(ecdf().kernel_t1, 467.273);
        assert_eq!(ec2().kernel_t1, 539.074);
        assert_eq!(ness().kernel_t1, 852.223);
        assert_eq!(quadcore().kernel_t1, 566.638);
    }
}
