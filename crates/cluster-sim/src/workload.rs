//! Workload description and kernel-cost scaling.
//!
//! The paper's reference workload is 6102 genes × 76 samples with 150 000
//! permutations (Tables I–V). Kernel cost scales linearly in the permutation
//! count (paper §4.3: serial runs "showed a linear increase in run time as
//! the permutation count increases") and slightly super-linearly in the row
//! count (Table VI: doubling the rows slightly more than doubles the time —
//! the working set outgrows caches), modelled as `(genes/6102)^1.06`.

/// A permutation-testing workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Number of genes (matrix rows).
    pub genes: u64,
    /// Number of samples (matrix columns).
    pub samples: u64,
    /// Number of permutations (B).
    pub permutations: u64,
}

/// The Tables I–V reference workload.
pub const REFERENCE: Workload = Workload {
    genes: 6_102,
    samples: 76,
    permutations: 150_000,
};

/// Cache-pressure exponent for the row count (calibrated on Table VI).
pub const ROW_EXPONENT: f64 = 1.06;

impl Workload {
    /// Construct a workload with the reference sample count.
    pub fn new(genes: u64, permutations: u64) -> Self {
        Workload {
            genes,
            samples: REFERENCE.samples,
            permutations,
        }
    }

    /// Dataset size in megabytes (f64 cells), as reported in Table VI.
    pub fn megabytes(&self) -> f64 {
        (self.genes * self.samples * 8) as f64 / (1024.0 * 1024.0)
    }

    /// Kernel-cost multiplier relative to the reference workload.
    pub fn kernel_scale(&self) -> f64 {
        let rows = (self.genes as f64 / REFERENCE.genes as f64).powf(ROW_EXPONENT);
        let perms = self.permutations as f64 / REFERENCE.permutations as f64;
        let cols = self.samples as f64 / REFERENCE.samples as f64;
        rows * perms * cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_scale_is_one() {
        assert!((REFERENCE.kernel_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_in_permutations() {
        let w1 = Workload::new(6_102, 150_000);
        let w2 = Workload::new(6_102, 300_000);
        assert!((w2.kernel_scale() / w1.kernel_scale() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn superlinear_in_rows() {
        let w1 = Workload::new(6_102, 150_000);
        let w2 = Workload::new(12_204, 150_000);
        let ratio = w2.kernel_scale() / w1.kernel_scale();
        assert!(ratio > 2.0 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn table6_sizes() {
        assert!((Workload::new(36_612, 500_000).megabytes() - 21.23).abs() < 0.02);
        assert!((Workload::new(73_224, 500_000).megabytes() - 42.47).abs() < 0.05);
    }
}
