//! Model-vs-paper comparison: per-cell relative errors between the simulated
//! tables and the published measurements. This is the machinery behind
//! EXPERIMENTS.md.

use crate::model::{sweep, total_speedups};
use crate::paper_data::{self, PaperRow};
use crate::platform::{ec2, ecdf, hector, ness, quadcore, PlatformSpec};
use crate::tables;
use crate::workload::REFERENCE;

/// Comparison of one process count.
#[derive(Debug, Clone, Copy)]
pub struct RowComparison {
    /// Process count.
    pub procs: u32,
    /// Modelled kernel seconds.
    pub kernel_model: f64,
    /// Published kernel seconds.
    pub kernel_paper: f64,
    /// Modelled total speedup.
    pub speedup_model: f64,
    /// Published total speedup.
    pub speedup_paper: f64,
}

impl RowComparison {
    /// Relative kernel error `|model − paper| / paper`.
    pub fn kernel_rel_error(&self) -> f64 {
        (self.kernel_model - self.kernel_paper).abs() / self.kernel_paper
    }

    /// Relative total-speedup error.
    pub fn speedup_rel_error(&self) -> f64 {
        (self.speedup_model - self.speedup_paper).abs() / self.speedup_paper
    }
}

/// Compare a platform's model against its published table.
pub fn compare_platform(platform: &PlatformSpec, paper: &[PaperRow]) -> Vec<RowComparison> {
    let profiles = sweep(platform, REFERENCE);
    let speedups = total_speedups(&profiles);
    paper
        .iter()
        .zip(profiles.iter().zip(&speedups))
        .map(|(p, (m, &s))| {
            assert_eq!(p.procs, m.procs, "row alignment");
            RowComparison {
                procs: p.procs,
                kernel_model: m.kernel,
                kernel_paper: p.kernel,
                speedup_model: s,
                speedup_paper: p.speedup_total,
            }
        })
        .collect()
}

/// All five table comparisons, keyed by platform name.
pub fn compare_all() -> Vec<(String, Vec<RowComparison>)> {
    vec![
        (
            "HECToR".into(),
            compare_platform(&hector(), &paper_data::table1_hector()),
        ),
        (
            "ECDF".into(),
            compare_platform(&ecdf(), &paper_data::table2_ecdf()),
        ),
        (
            "Amazon EC2".into(),
            compare_platform(&ec2(), &paper_data::table3_ec2()),
        ),
        (
            "Ness".into(),
            compare_platform(&ness(), &paper_data::table4_ness()),
        ),
        (
            "Quad-core".into(),
            compare_platform(&quadcore(), &paper_data::table5_quadcore()),
        ),
    ]
}

/// Comparison of Table VI totals.
#[derive(Debug, Clone, Copy)]
pub struct Table6Comparison {
    /// Matrix rows.
    pub genes: u64,
    /// Permutations.
    pub permutations: u64,
    /// Modelled total at 256 processes.
    pub total_model: f64,
    /// Published total.
    pub total_paper: f64,
}

impl Table6Comparison {
    /// Relative error of the 256-process total.
    pub fn rel_error(&self) -> f64 {
        (self.total_model - self.total_paper).abs() / self.total_paper
    }
}

/// Compare the Table VI model against the published values.
pub fn compare_table6() -> Vec<Table6Comparison> {
    let model = tables::table6(&hector(), 256);
    paper_data::table6()
        .iter()
        .zip(model)
        .map(|(p, m)| {
            assert_eq!(p.genes, m.genes);
            assert_eq!(p.permutations, m.permutations);
            Table6Comparison {
                genes: p.genes,
                permutations: p.permutations,
                total_model: m.total,
                total_paper: p.total_256,
            }
        })
        .collect()
}

/// Render a comparison as a markdown table (used to build EXPERIMENTS.md).
pub fn format_comparison(name: &str, rows: &[RowComparison]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "### {name}");
    let _ = writeln!(
        s,
        "| procs | kernel model (s) | kernel paper (s) | err | speedup model | speedup paper | err |"
    );
    let _ = writeln!(s, "|---|---|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {:.3} | {:.3} | {:.1}% | {:.2} | {:.2} | {:.1}% |",
            r.procs,
            r.kernel_model,
            r.kernel_paper,
            100.0 * r.kernel_rel_error(),
            r.speedup_model,
            r.speedup_paper,
            100.0 * r.speedup_rel_error()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline claim: the model reproduces every published kernel time
    /// within 10% and every published total speedup within 15%.
    #[test]
    fn model_matches_paper_within_tolerance() {
        for (name, rows) in compare_all() {
            for r in &rows {
                assert!(
                    r.kernel_rel_error() < 0.10,
                    "{name} p={}: kernel {:.3} vs {:.3} ({:.1}%)",
                    r.procs,
                    r.kernel_model,
                    r.kernel_paper,
                    100.0 * r.kernel_rel_error()
                );
                assert!(
                    r.speedup_rel_error() < 0.15,
                    "{name} p={}: speedup {:.2} vs {:.2} ({:.1}%)",
                    r.procs,
                    r.speedup_model,
                    r.speedup_paper,
                    100.0 * r.speedup_rel_error()
                );
            }
        }
    }

    #[test]
    fn table6_matches_paper_within_tolerance() {
        for c in compare_table6() {
            assert!(
                c.rel_error() < 0.10,
                "genes={} B={}: {:.2} vs {:.2} ({:.1}%)",
                c.genes,
                c.permutations,
                c.total_model,
                c.total_paper,
                100.0 * c.rel_error()
            );
        }
    }

    #[test]
    fn ordering_of_platforms_preserved() {
        // Who wins: at every shared process count the paper's platform
        // ordering by kernel time must be preserved by the model.
        let all = compare_all();
        for p in [2u32, 4, 8, 16] {
            let mut model: Vec<(String, f64)> = Vec::new();
            let mut paper: Vec<(String, f64)> = Vec::new();
            for (name, rows) in &all {
                if let Some(r) = rows.iter().find(|r| r.procs == p) {
                    model.push((name.clone(), r.kernel_model));
                    paper.push((name.clone(), r.kernel_paper));
                }
            }
            let sort_names = |mut v: Vec<(String, f64)>| {
                v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                v.into_iter().map(|(n, _)| n).collect::<Vec<_>>()
            };
            assert_eq!(sort_names(model), sort_names(paper), "p={p}");
        }
    }

    #[test]
    fn formatted_comparison_is_markdown() {
        let all = compare_all();
        let s = format_comparison(&all[0].0, &all[0].1);
        assert!(s.starts_with("### HECToR"));
        assert!(s.contains("| 512 |"));
    }
}
