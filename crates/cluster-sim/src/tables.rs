//! Rendering of simulated tables in the paper's format.

use crate::model::{kernel_speedups, simulate, sweep, total_speedups, SimProfile};
use crate::platform::PlatformSpec;
use crate::workload::{Workload, REFERENCE};

/// A rendered profile table (the shape of Tables I–V).
#[derive(Debug, Clone)]
pub struct ProfileTable {
    /// Platform name.
    pub platform: String,
    /// The modelled rows.
    pub profiles: Vec<SimProfile>,
    /// Total speedups, aligned with `profiles`.
    pub speedup_total: Vec<f64>,
    /// Kernel speedups, aligned with `profiles`.
    pub speedup_kernel: Vec<f64>,
}

/// Build the profile table of a platform for the reference workload.
pub fn profile_table(platform: &PlatformSpec) -> ProfileTable {
    let profiles = sweep(platform, REFERENCE);
    let speedup_total = total_speedups(&profiles);
    let speedup_kernel = kernel_speedups(&profiles);
    ProfileTable {
        platform: platform.name.to_string(),
        profiles,
        speedup_total,
        speedup_kernel,
    }
}

impl std::fmt::Display for ProfileTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Profile of pmaxT implementation ({})", self.platform)?;
        writeln!(
            f,
            "{:>7} {:>12} {:>12} {:>10} {:>12} {:>12} {:>9} {:>9}",
            "Procs",
            "Preproc(s)",
            "Bcast(s)",
            "Create(s)",
            "Kernel(s)",
            "P-values(s)",
            "Speedup",
            "Spd(krn)"
        )?;
        for (i, p) in self.profiles.iter().enumerate() {
            writeln!(
                f,
                "{:>7} {:>12.3} {:>12.3} {:>10.3} {:>12.3} {:>12.3} {:>9.2} {:>9.2}",
                p.procs,
                p.pre,
                p.bcast,
                p.create,
                p.kernel,
                p.pvalues,
                self.speedup_total[i],
                self.speedup_kernel[i]
            )?;
        }
        Ok(())
    }
}

/// One row of the Table VI reproduction.
#[derive(Debug, Clone, Copy)]
pub struct Table6Row {
    /// Matrix rows.
    pub genes: u64,
    /// Dataset size in MB.
    pub megabytes: f64,
    /// Permutation count.
    pub permutations: u64,
    /// Modelled total time on `procs` processes.
    pub total: f64,
    /// Modelled serial (1-process) kernel estimate.
    pub serial_estimate: f64,
}

/// Reproduce Table VI: large workloads on 256 HECToR processes, with the
/// 1-process estimate alongside.
pub fn table6(platform: &PlatformSpec, procs: u32) -> Vec<Table6Row> {
    let mut rows = Vec::new();
    for genes in [36_612u64, 73_224] {
        for b in [500_000u64, 1_000_000, 2_000_000] {
            let w = Workload::new(genes, b);
            let prof = simulate(platform, w, procs);
            let serial = simulate(platform, w, 1);
            rows.push(Table6Row {
                genes,
                megabytes: w.megabytes(),
                permutations: b,
                total: prof.total(),
                serial_estimate: serial.total(),
            });
        }
    }
    rows
}

/// Render Table VI.
pub fn format_table6(rows: &[Table6Row], procs: u32) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Elapsed run times of pmaxT ({procs} processes) vs serial estimate"
    );
    let _ = writeln!(
        s,
        "{:>10} {:>9} {:>12} {:>12} {:>20}",
        "Genes", "Size(MB)", "Perms", "Total(s)", "Serial estimate(s)"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>10} {:>9.2} {:>12} {:>12.2} {:>20.0}",
            r.genes, r.megabytes, r.permutations, r.total, r.serial_estimate
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{hector, quadcore};

    #[test]
    fn profile_table_has_all_proc_counts() {
        let t = profile_table(&hector());
        assert_eq!(t.profiles.len(), 10);
        assert_eq!(t.speedup_total.len(), 10);
        assert!((t.speedup_total[0] - 1.0).abs() < 1e-12);
        let rendered = t.to_string();
        assert!(rendered.contains("HECToR"));
        assert!(rendered.contains("512"));
    }

    #[test]
    fn table6_has_six_rows_and_scales() {
        let rows = table6(&hector(), 256);
        assert_eq!(rows.len(), 6);
        // Linear in B within a dataset.
        assert!((rows[1].total / rows[0].total - 2.0).abs() < 0.1);
        assert!((rows[2].total / rows[0].total - 4.0).abs() < 0.2);
        // Doubling rows ≈ doubles the time.
        let ratio = rows[3].total / rows[0].total;
        assert!(ratio > 1.9 && ratio < 2.2, "ratio {ratio}");
        // Serial estimate is ~hours, parallel ~minutes.
        assert!(rows[0].serial_estimate > 100.0 * rows[0].total);
        let rendered = format_table6(&rows, 256);
        assert!(rendered.contains("36612") || rendered.contains("36 612"));
    }

    #[test]
    fn quadcore_table_matches_paper_shape() {
        let t = profile_table(&quadcore());
        // Paper Table V: speedups 1.00, 2.00, 3.37.
        assert!((t.speedup_total[1] - 2.0).abs() < 0.02);
        assert!((t.speedup_total[2] - 3.37).abs() < 0.1);
    }
}
