//! The paper's published measurements (Tables I–VI), embedded verbatim for
//! model validation and the EXPERIMENTS.md comparison.

/// One row of a profile table (Tables I–V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Process count.
    pub procs: u32,
    /// Pre-processing (s).
    pub pre: f64,
    /// Broadcast parameters (s).
    pub bcast: f64,
    /// Create data (s).
    pub create: f64,
    /// Main kernel (s).
    pub kernel: f64,
    /// Compute p-values (s).
    pub pvalues: f64,
    /// Published total speedup.
    pub speedup_total: f64,
    /// Published kernel speedup.
    pub speedup_kernel: f64,
}

/// Table I — HECToR.
pub fn table1_hector() -> Vec<PaperRow> {
    [
        (1, 0.260, 0.001, 0.010, 795.600, 0.002, 1.00, 1.00),
        (2, 0.261, 0.004, 0.012, 406.204, 0.884, 1.95, 1.95),
        (4, 0.259, 0.009, 0.013, 207.776, 0.005, 3.82, 3.82),
        (8, 0.260, 0.013, 0.013, 104.169, 0.489, 7.58, 7.63),
        (16, 0.259, 0.015, 0.013, 51.931, 0.713, 15.03, 15.32),
        (32, 0.259, 0.017, 0.013, 25.993, 0.784, 29.40, 30.60),
        (64, 0.259, 0.020, 0.013, 13.028, 0.611, 57.11, 61.06),
        (128, 0.259, 0.023, 0.013, 6.516, 0.662, 106.48, 122.09),
        (256, 0.260, 0.024, 0.013, 3.257, 0.611, 190.99, 244.27),
        (512, 0.260, 0.028, 0.013, 1.633, 0.606, 313.09, 487.20),
    ]
    .into_iter()
    .map(to_row)
    .collect()
}

/// Table II — ECDF.
pub fn table2_ecdf() -> Vec<PaperRow> {
    [
        (1, 0.157, 0.000, 0.003, 467.273, 0.000, 1.00, 1.00),
        (2, 0.163, 0.002, 0.003, 234.848, 0.000, 1.99, 1.99),
        (4, 0.162, 0.003, 0.004, 123.174, 0.000, 3.79, 3.79),
        (8, 0.159, 0.004, 0.005, 79.576, 1.217, 5.77, 5.87),
        (16, 0.158, 0.032, 0.005, 39.467, 1.224, 11.43, 11.84),
        (32, 0.164, 0.072, 0.005, 19.862, 1.235, 21.91, 23.53),
        (64, 0.157, 0.072, 0.005, 9.935, 1.297, 40.77, 47.03),
        (128, 0.162, 0.086, 0.007, 5.813, 1.304, 63.40, 80.38),
    ]
    .into_iter()
    .map(to_row)
    .collect()
}

/// Table III — Amazon EC2.
pub fn table3_ec2() -> Vec<PaperRow> {
    [
        (1, 0.272, 0.000, 0.006, 539.074, 0.000, 1.00, 1.00),
        (2, 0.271, 0.004, 0.009, 291.514, 0.005, 1.84, 1.84),
        (4, 0.273, 0.011, 0.014, 187.342, 0.043, 2.87, 2.87),
        (8, 0.278, 0.880, 0.014, 90.806, 2.574, 5.70, 5.93),
        (16, 0.268, 1.735, 0.022, 43.756, 4.983, 10.62, 12.32),
        (32, 0.270, 2.917, 0.019, 22.308, 3.834, 18.37, 24.16),
    ]
    .into_iter()
    .map(to_row)
    .collect()
}

/// Table IV — Ness.
pub fn table4_ness() -> Vec<PaperRow> {
    [
        (1, 0.393, 0.000, 0.010, 852.223, 0.000, 1.00, 1.00),
        (2, 0.467, 0.007, 0.012, 443.050, 0.001, 1.92, 1.92),
        (4, 0.398, 0.029, 0.012, 216.595, 0.001, 3.93, 3.93),
        (8, 0.394, 0.032, 0.014, 117.317, 0.001, 7.24, 7.26),
        (16, 0.436, 0.109, 0.019, 84.442, 0.001, 10.03, 10.09),
    ]
    .into_iter()
    .map(to_row)
    .collect()
}

/// Table V — quad-core desktop.
pub fn table5_quadcore() -> Vec<PaperRow> {
    [
        (1, 0.140, 0.000, 0.007, 566.638, 0.001, 1.00, 1.00),
        (2, 0.136, 0.003, 0.008, 282.623, 0.085, 2.00, 2.00),
        (4, 0.135, 0.010, 0.013, 167.439, 0.705, 3.37, 3.38),
    ]
    .into_iter()
    .map(to_row)
    .collect()
}

fn to_row(t: (u32, f64, f64, f64, f64, f64, f64, f64)) -> PaperRow {
    PaperRow {
        procs: t.0,
        pre: t.1,
        bcast: t.2,
        create: t.3,
        kernel: t.4,
        pvalues: t.5,
        speedup_total: t.6,
        speedup_kernel: t.7,
    }
}

/// One row of Table VI (HECToR, 256 processes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTable6Row {
    /// Matrix rows (genes).
    pub genes: u64,
    /// Permutation count.
    pub permutations: u64,
    /// Published total run time on 256 cores (s).
    pub total_256: f64,
    /// Published serial-R estimate (s).
    pub serial_estimate: f64,
}

/// Table VI — large workloads on 256 HECToR cores vs estimated serial R.
pub fn table6() -> Vec<PaperTable6Row> {
    [
        (36_612u64, 500_000u64, 73.18, 20_750.0),
        (36_612, 1_000_000, 146.64, 41_500.0),
        (36_612, 2_000_000, 290.22, 83_000.0),
        (73_224, 500_000, 148.46, 35_000.0),
        (73_224, 1_000_000, 294.61, 70_000.0),
        (73_224, 2_000_000, 591.48, 140_000.0),
    ]
    .into_iter()
    .map(
        |(genes, permutations, total_256, serial_estimate)| PaperTable6Row {
            genes,
            permutations,
            total_256,
            serial_estimate,
        },
    )
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_speedups_are_consistent_with_times() {
        // The published total speedup must equal total(1)/total(p) within
        // rounding of the published two-decimal values.
        for (name, table) in [
            ("hector", table1_hector()),
            ("ecdf", table2_ecdf()),
            ("ec2", table3_ec2()),
            ("ness", table4_ness()),
            ("quadcore", table5_quadcore()),
        ] {
            let t1: f64 = {
                let r = table[0];
                r.pre + r.bcast + r.create + r.kernel + r.pvalues
            };
            for r in &table {
                let total = r.pre + r.bcast + r.create + r.kernel + r.pvalues;
                let speedup = t1 / total;
                assert!(
                    (speedup - r.speedup_total).abs() < 0.03 * r.speedup_total.max(1.0),
                    "{name} p={}: recomputed {speedup:.2} vs published {}",
                    r.procs,
                    r.speedup_total
                );
            }
        }
    }

    #[test]
    fn kernel_speedups_consistent() {
        for r in table1_hector() {
            let s = 795.6 / r.kernel;
            assert!(
                (s - r.speedup_kernel).abs() < 0.02 * r.speedup_kernel.max(1.0),
                "p={}",
                r.procs
            );
        }
    }

    #[test]
    fn table6_times_scale_linearly_in_b() {
        let t6 = table6();
        // Within each dataset the published time is ~linear in B.
        for base in [0usize, 3] {
            let r1 = t6[base];
            let r2 = t6[base + 1];
            let r4 = t6[base + 2];
            assert!((r2.total_256 / r1.total_256 - 2.0).abs() < 0.05);
            assert!((r4.total_256 / r1.total_256 - 4.0).abs() < 0.05);
        }
    }

    #[test]
    fn table6_doubling_rows_roughly_doubles_time() {
        // Paper §4.4: "doubling the input dataset size results in a close to
        // doubling of the elapsed time".
        let t6 = table6();
        for i in 0..3 {
            let ratio = t6[i + 3].total_256 / t6[i].total_256;
            assert!(ratio > 1.9 && ratio < 2.15, "ratio {ratio}");
        }
    }
}
