//! Typed argument values passed from the master's script to parallel
//! functions — the framework-level analogue of the R argument list that
//! `pmaxT` receives.

use std::collections::BTreeMap;

/// A single argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer scalar.
    Int(i64),
    /// Floating scalar.
    Float(f64),
    /// String option (e.g. `test = "t"`).
    Str(String),
    /// Byte vector (e.g. class labels).
    Bytes(Vec<u8>),
    /// Float vector (e.g. the flattened expression matrix).
    Floats(Vec<f64>),
}

impl Value {
    /// Extract an integer, if that is what this value holds.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a float.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Extract a byte slice.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(v) => Some(v),
            _ => None,
        }
    }

    /// Extract a float slice.
    pub fn as_floats(&self) -> Option<&[f64]> {
        match self {
            Value::Floats(v) => Some(v),
            _ => None,
        }
    }
}

/// An ordered name → value map (deterministic iteration keeps broadcasts and
/// encodings reproducible).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Args {
    map: BTreeMap<String, Value>,
}

impl Args {
    /// Empty argument list.
    pub fn new() -> Self {
        Args::default()
    }

    /// Insert (builder style).
    pub fn with(mut self, name: &str, value: Value) -> Self {
        self.map.insert(name.to_string(), value);
        self
    }

    /// Insert.
    pub fn set(&mut self, name: &str, value: Value) {
        self.map.insert(name.to_string(), value);
    }

    /// Look up.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.map.get(name)
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let args = Args::new()
            .with("b", Value::Int(10_000))
            .with("test", Value::Str("t".into()))
            .with("data", Value::Floats(vec![1.0, 2.0]));
        assert_eq!(args.len(), 3);
        assert_eq!(args.get("b").unwrap().as_int(), Some(10_000));
        assert_eq!(args.get("test").unwrap().as_str(), Some("t"));
        assert_eq!(args.get("data").unwrap().as_floats(), Some(&[1.0, 2.0][..]));
        assert!(args.get("missing").is_none());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let args = Args::new()
            .with("zeta", Value::Int(1))
            .with("alpha", Value::Int(2));
        let names: Vec<&str> = args.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn typed_extractors_reject_wrong_types() {
        let v = Value::Str("x".into());
        assert!(v.as_int().is_none());
        assert!(v.as_float().is_none());
        assert!(v.as_bytes().is_none());
        assert!(v.as_floats().is_none());
        assert_eq!(v.as_str(), Some("x"));
        let b = Value::Bytes(vec![1, 2]);
        assert_eq!(b.as_bytes(), Some(&[1u8, 2][..]));
        assert!(b.as_str().is_none());
    }

    #[test]
    fn set_overwrites() {
        let mut args = Args::new();
        args.set("k", Value::Int(1));
        args.set("k", Value::Int(2));
        assert_eq!(args.get("k").unwrap().as_int(), Some(2));
        assert_eq!(args.len(), 1);
    }
}
