//! The function registry: named parallel functions the master's script can
//! invoke, executed SPMD on every rank (Figure 1 of the paper — "SPRINT
//! provides an interface to HPC and a library of parallel functions").

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use mpi_sim::Communicator;
use parking_lot::Mutex;

use crate::args::Args;

/// Master-side out-of-band payloads, keyed by name: big inputs the script
/// stages for the next call without shipping them through the (small)
/// command broadcast. The parallel function itself distributes them, exactly
/// like `pmaxT` broadcasts its dataset in its "create data" step.
#[derive(Default)]
pub struct MasterPayload {
    items: Mutex<HashMap<String, Box<dyn Any + Send>>>,
}

impl MasterPayload {
    /// Create an empty stash.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage a payload under `key`.
    pub fn put<T: Any + Send>(&self, key: &str, value: T) {
        self.items.lock().insert(key.to_string(), Box::new(value));
    }

    /// Take a payload out (the call consumes it).
    pub fn take<T: Any + Send>(&self, key: &str) -> Option<T> {
        let boxed = self.items.lock().remove(key)?;
        boxed.downcast::<T>().ok().map(|b| *b)
    }

    /// True if a payload is staged under `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.items.lock().contains_key(key)
    }
}

/// Execution context handed to a parallel function on each rank.
pub struct TaskContext<'a> {
    /// The rank's communicator.
    pub comm: &'a Communicator,
    /// The master's payload stash (empty on workers).
    pub payload: &'a MasterPayload,
}

/// A parallel function: runs on every rank; returns `Some` on the master.
pub type ParallelFn =
    Arc<dyn Fn(&TaskContext<'_>, &Args) -> Option<Box<dyn Any + Send>> + Send + Sync>;

/// Named function table. Function codes (indices) are what the master
/// broadcasts to wake the workers, mirroring SPRINT's command codes.
#[derive(Clone, Default)]
pub struct Registry {
    entries: Vec<(String, ParallelFn)>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `f` under `name`; returns its function code.
    pub fn register<F>(&mut self, name: &str, f: F) -> u32
    where
        F: Fn(&TaskContext<'_>, &Args) -> Option<Box<dyn Any + Send>> + Send + Sync + 'static,
    {
        assert!(
            self.code_of(name).is_none(),
            "function {name:?} already registered"
        );
        self.entries.push((name.to_string(), Arc::new(f)));
        (self.entries.len() - 1) as u32
    }

    /// Look up a function code by name.
    pub fn code_of(&self, name: &str) -> Option<u32> {
        self.entries
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| i as u32)
    }

    /// Fetch a function by code.
    pub fn by_code(&self, code: u32) -> Option<&ParallelFn> {
        self.entries.get(code as usize).map(|(_, f)| f)
    }

    /// Registered names in code order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = Registry::new();
        let code = reg.register("echo", |_ctx, args| {
            Some(Box::new(args.len()) as Box<dyn Any + Send>)
        });
        assert_eq!(code, 0);
        assert_eq!(reg.code_of("echo"), Some(0));
        assert!(reg.by_code(0).is_some());
        assert!(reg.by_code(1).is_none());
        assert_eq!(reg.names(), vec!["echo"]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_names_rejected() {
        let mut reg = Registry::new();
        reg.register("f", |_, _| None);
        reg.register("f", |_, _| None);
    }

    #[test]
    fn payload_stash_round_trips() {
        let stash = MasterPayload::new();
        stash.put("vec", vec![1u32, 2, 3]);
        assert!(stash.contains("vec"));
        let v: Vec<u32> = stash.take("vec").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(!stash.contains("vec"), "take consumes");
        assert!(stash.take::<Vec<u32>>("vec").is_none());
    }

    #[test]
    fn payload_type_mismatch_returns_none() {
        let stash = MasterPayload::new();
        stash.put("x", 42u64);
        assert!(stash.take::<String>("x").is_none());
        // Downcast failure consumed the entry — documented behaviour of the
        // consuming API; assert it so a change is noticed.
        assert!(!stash.contains("x"));
    }
}
