//! The `pmaxT` entry in the SPRINT function library, plus a typed script-side
//! wrapper — the last piece of Figure 1: an R user's `pmaxT(X, classlabel,
//! …)` call becomes a function-code broadcast that wakes the workers, which
//! then collectively evaluate the C-level implementation.

use std::any::Any;
use std::sync::Arc;

use sprint_core::matrix::Matrix;
use sprint_core::maxt::MaxTResult;
use sprint_core::options::PmaxtOptions;
use sprint_core::pmaxt::pmaxt_rank;

use crate::args::Value;
use crate::framework::Master;
use crate::marshal;
use crate::registry::Registry;

/// Payload key under which the master's script stages the dataset.
pub const PMAXT_INPUT_KEY: &str = "pmaxt:input";

/// Register the `pmaxt` parallel function. Returns its function code.
///
/// The command broadcast carries only the (integer-codable) options and the
/// class labels; the expression matrix is staged master-side and distributed
/// by `pmaxt`'s own "create data" broadcast, exactly as in the paper.
pub fn register_pmaxt(registry: &mut Registry) -> u32 {
    registry.register("pmaxt", |ctx, args| {
        let input: Option<Arc<(Matrix, Vec<u8>, PmaxtOptions)>> = if ctx.comm.is_master() {
            let matrix: Matrix = ctx
                .payload
                .take(PMAXT_INPUT_KEY)
                .expect("script must stage the dataset before calling pmaxt");
            let labels = args
                .get("classlabel")
                .and_then(Value::as_bytes)
                .expect("classlabel argument")
                .to_vec();
            let opts = marshal::args_to_options(args).expect("validated options");
            Some(Arc::new((matrix, labels, opts)))
        } else {
            None
        };
        pmaxt_rank(ctx.comm, input.as_ref())
            .map(|(result, _profile, _ranks)| Box::new(result) as Box<dyn Any + Send>)
    })
}

/// A registry pre-loaded with the full SPRINT function library of this
/// reproduction: `pmaxt` (this paper) and `pcor` (the framework's original
/// correlation function).
pub fn standard_registry() -> Registry {
    let mut reg = Registry::new();
    register_pmaxt(&mut reg);
    crate::pcor::register_pcor(&mut reg);
    reg
}

/// Script-side typed wrapper: run `pmaxT` through the framework.
///
/// This is the Rust spelling of the R call
/// `pmaxT(X, classlabel, test=…, side=…, fixed.seed.sampling=…, B=…)`.
pub fn call_pmaxt(
    master: &Master<'_>,
    data: Matrix,
    classlabel: &[u8],
    opts: &PmaxtOptions,
) -> MaxTResult {
    master.stage(PMAXT_INPUT_KEY, data);
    let args = marshal::options_to_args(opts).with("classlabel", Value::Bytes(classlabel.to_vec()));
    *master
        .call("pmaxt", args)
        .downcast::<MaxTResult>()
        .expect("pmaxt returns a MaxTResult")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Sprint;
    use sprint_core::maxt::serial::mt_maxt;
    use sprint_core::options::TestMethod;

    fn data_and_labels() -> (Matrix, Vec<u8>) {
        let data = Matrix::from_vec(
            3,
            6,
            vec![
                1.0, 2.0, 1.5, 9.0, 10.0, 9.5, 5.0, 4.0, 6.0, 5.5, 4.5, 5.2, 2.0, 8.0, 3.0, 7.0,
                2.5, 7.5,
            ],
        )
        .unwrap();
        (data, vec![0u8, 0, 0, 1, 1, 1])
    }

    #[test]
    fn framework_pmaxt_equals_serial() {
        let (data, labels) = data_and_labels();
        let opts = PmaxtOptions::default().permutations(40);
        let serial = mt_maxt(&data, &labels, &opts).unwrap();
        for ranks in [1usize, 2, 4] {
            let d = data.clone();
            let l = labels.clone();
            let o = opts.clone();
            let result = Sprint::new(standard_registry())
                .run(ranks, move |master| call_pmaxt(master, d, &l, &o))
                .unwrap();
            assert_eq!(result, serial, "ranks={ranks}");
        }
    }

    #[test]
    fn script_can_run_multiple_analyses() {
        let (data, labels) = data_and_labels();
        let out = Sprint::new(standard_registry())
            .run(3, move |master| {
                let a = call_pmaxt(
                    master,
                    data.clone(),
                    &labels,
                    &PmaxtOptions::default().permutations(20),
                );
                let b = call_pmaxt(
                    master,
                    data.clone(),
                    &labels,
                    &PmaxtOptions::default()
                        .test(TestMethod::Wilcoxon)
                        .permutations(20),
                );
                (a, b)
            })
            .unwrap();
        assert_eq!(out.0.b_used, 20);
        assert_eq!(out.1.b_used, 20);
        assert_ne!(out.0.teststat, out.1.teststat);
    }

    #[test]
    fn complete_enumeration_through_framework() {
        let (data, labels) = data_and_labels();
        let opts = PmaxtOptions::default().permutations(0);
        let serial = mt_maxt(&data, &labels, &opts).unwrap();
        let d = data;
        let l = labels;
        let result = Sprint::new(standard_registry())
            .run(2, move |master| call_pmaxt(master, d, &l, &opts))
            .unwrap();
        assert_eq!(result, serial);
        assert_eq!(result.b_used, 20);
    }
}
