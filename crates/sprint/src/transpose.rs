//! In-place non-square matrix transposition — the paper's future-work
//! item 2: "The current implementation performs an array transposition on the
//! input dataset. For this transformation, a new array is allocated.
//! Algorithms for in-place non-square array transposition exist that are able
//! to perform this step without the need for additional memory."
//!
//! Relevant here because R stores matrices column-major while the kernel
//! wants gene rows contiguous: ingesting an R matrix is exactly one
//! transposition. [`transpose_in_place`] is the cycle-following algorithm
//! with a bit-set of visited positions (n bits ≪ n·8 bytes of a copy);
//! [`transpose_copy`] is the allocate-new baseline. The `transpose_ablation`
//! bench compares them.

use sprint_core::error::Result;
use sprint_core::matrix::Matrix;

/// Out-of-place transpose of a `rows × cols` row-major buffer (the baseline
/// that allocates a full second array).
pub fn transpose_copy(data: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    assert_eq!(data.len(), rows * cols);
    let mut out = vec![0.0; data.len()];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = data[r * cols + c];
        }
    }
    out
}

/// In-place transpose of a `rows × cols` row-major buffer by following the
/// permutation cycles of the index map `i → (i·rows) mod (n−1)`. Extra memory
/// is one bit per element.
pub fn transpose_in_place(data: &mut [f64], rows: usize, cols: usize) {
    assert_eq!(data.len(), rows * cols);
    let n = data.len();
    if n <= 1 || rows == 1 || cols == 1 {
        // Degenerate shapes transpose to themselves (as flat buffers).
        return;
    }
    let last = n - 1;
    let mut visited = vec![false; n];
    visited[0] = true;
    visited[last] = true;
    for start in 1..last {
        if visited[start] {
            continue;
        }
        // Follow the cycle: the element that must move *into* `pos` lives at
        // `(pos * cols) % last` in the original layout; walking with
        // predecessor indices lets us move values with simple swaps.
        let mut pos = start;
        let mut carried = data[start];
        loop {
            // Destination of `carried` (source index `pos` in row-major,
            // target index in column-major layout).
            let dest = (pos % cols) * rows + pos / cols;
            let next = std::mem::replace(&mut data[dest], carried);
            visited[dest] = true;
            if dest == start {
                break;
            }
            carried = next;
            pos = dest;
        }
    }
}

/// Build a row-major [`Matrix`] from R's column-major data using the
/// in-place algorithm (no second array).
pub fn matrix_from_column_major(rows: usize, cols: usize, mut data: Vec<f64>) -> Result<Matrix> {
    // Column-major rows×cols is the row-major layout of the cols×rows
    // transpose; transposing it in place yields row-major rows×cols.
    transpose_in_place(&mut data, cols, rows);
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> Vec<f64> {
        (0..rows * cols).map(|i| i as f64 * 1.5 - 3.0).collect()
    }

    #[test]
    fn copy_transpose_small() {
        // [[0,1,2],[3,4,5]] → [[0,3],[1,4],[2,5]]
        let data = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let t = transpose_copy(&data, 2, 3);
        assert_eq!(t, vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
    }

    #[test]
    fn in_place_matches_copy_for_many_shapes() {
        for (rows, cols) in [
            (2, 3),
            (3, 2),
            (1, 7),
            (7, 1),
            (4, 4),
            (5, 8),
            (8, 5),
            (6102 / 100, 76),
            (13, 29),
        ] {
            let data = sample(rows, cols);
            let expect = transpose_copy(&data, rows, cols);
            let mut in_place = data.clone();
            transpose_in_place(&mut in_place, rows, cols);
            assert_eq!(in_place, expect, "{rows}x{cols}");
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        for (rows, cols) in [(3, 5), (5, 3), (2, 8), (9, 4)] {
            let data = sample(rows, cols);
            let mut work = data.clone();
            transpose_in_place(&mut work, rows, cols);
            transpose_in_place(&mut work, cols, rows);
            assert_eq!(work, data, "{rows}x{cols}");
        }
    }

    #[test]
    fn square_matrices_work_too() {
        let data = sample(6, 6);
        let mut in_place = data.clone();
        transpose_in_place(&mut in_place, 6, 6);
        assert_eq!(in_place, transpose_copy(&data, 6, 6));
    }

    #[test]
    fn column_major_ingestion() {
        // R-style column-major for [[1,2,3],[4,5,6]] is [1,4,2,5,3,6].
        let cm = vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        let m = matrix_from_column_major(2, 3, cm).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn single_row_and_column_are_noops() {
        let mut v = vec![1.0, 2.0, 3.0];
        transpose_in_place(&mut v, 1, 3);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        transpose_in_place(&mut v, 3, 1);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_and_singleton() {
        let mut empty: Vec<f64> = vec![];
        transpose_in_place(&mut empty, 0, 0);
        let mut one = vec![42.0];
        transpose_in_place(&mut one, 1, 1);
        assert_eq!(one, vec![42.0]);
    }
}
