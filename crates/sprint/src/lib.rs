//! # sprint — the framework layer of the SPRINT architecture
//!
//! Reproduces Figure 1 of the paper: all ranks instantiate the runtime and
//! the function library; workers enter a waiting loop; the master evaluates
//! the user's script, and each call to a parallel function broadcasts a
//! function code so the workers collectively evaluate it and return results
//! through a reduction.
//!
//! On top of the framework this crate implements all three of the paper's
//! §6 future-work items:
//!
//! 1. [`checkpoint`] — fault tolerance: periodic checkpointing of partial
//!    counts with bit-identical resume;
//! 2. [`transpose`] — in-place non-square array transposition for ingesting
//!    column-major (R-layout) matrices without a second allocation;
//! 3. [`marshal`] — integer-coded parameter broadcast replacing string
//!    options (with the string codec retained for the ablation bench).
//!
//! ```
//! use sprint::framework::Sprint;
//! use sprint::driver::{standard_registry, call_pmaxt};
//! use sprint_core::matrix::Matrix;
//! use sprint_core::options::PmaxtOptions;
//!
//! let data = Matrix::from_vec(2, 6, vec![
//!     1.0, 2.0, 1.5, 9.0, 10.0, 9.5,
//!     5.0, 4.0, 6.0, 5.5, 4.5, 5.2,
//! ]).unwrap();
//! let labels = vec![0u8, 0, 0, 1, 1, 1];
//! let opts = PmaxtOptions::default().permutations(0);
//!
//! // "mpiexec -n 3":
//! let result = Sprint::new(standard_registry())
//!     .run(3, move |master| call_pmaxt(master, data, &labels, &opts))
//!     .unwrap();
//! assert_eq!(result.b_used, 20);
//! ```

pub mod args;
pub mod checkpoint;
pub mod driver;
pub mod framework;
pub mod marshal;
pub mod pcor;
pub mod registry;
pub mod transpose;

pub use args::{Args, Value};
pub use framework::{Master, Sprint};
pub use registry::Registry;
