//! `pcor` — parallel Pearson correlation, the second function of the SPRINT
//! library.
//!
//! The paper's introduction: SPRINT's prototype "parallelized a key
//! statistical correlation function of important generic use to machine
//! learning algorithms (clustering, classification) in genomic data analysis"
//! (Hill et al. 2008) before `pmaxT` was added. This module reproduces it:
//! the gene × gene Pearson correlation matrix of the expression rows,
//! distributed by *row blocks* (in contrast to `pmaxT`'s permutation-count
//! distribution — the two functions exercise both decomposition styles the
//! framework supports).
//!
//! Missing values use pairwise-complete observations (R's
//! `use = "pairwise.complete.obs"`), and pairs with fewer than three shared
//! observations or zero variance yield `NaN`.

use std::any::Any;
use std::sync::Arc;

use mpi_sim::{Communicator, MASTER};
use sprint_core::matrix::Matrix;

use crate::args::Value;
use crate::framework::Master;
use crate::registry::Registry;

/// Pearson correlation of two rows over pairwise-complete cells.
pub fn pearson_pairwise(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut n = 0usize;
    let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        if x.is_nan() || y.is_nan() {
            continue;
        }
        n += 1;
        sa += x;
        sb += y;
        saa += x * x;
        sbb += y * y;
        sab += x * y;
    }
    if n < 3 {
        return f64::NAN;
    }
    let nf = n as f64;
    let cov = sab - sa * sb / nf;
    let va = saa - sa * sa / nf;
    let vb = sbb - sb * sb / nf;
    if va <= 0.0 || vb <= 0.0 {
        return f64::NAN;
    }
    (cov / (va * vb).sqrt()).clamp(-1.0, 1.0)
}

/// Serial reference: the full genes × genes correlation matrix (row-major).
///
/// ```
/// use sprint_core::matrix::Matrix;
/// use sprint::pcor::cor_matrix;
///
/// let m = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 2.0, 4.0, 6.0, 8.0]).unwrap();
/// let c = cor_matrix(&m);
/// assert!((c[1] - 1.0).abs() < 1e-12); // rows are proportional
/// ```
pub fn cor_matrix(data: &Matrix) -> Vec<f64> {
    let n = data.rows();
    let mut out = vec![0.0f64; n * n];
    for i in 0..n {
        out[i * n + i] = 1.0;
        for j in (i + 1)..n {
            let r = pearson_pairwise(data.row(i), data.row(j));
            out[i * n + j] = r;
            out[j * n + i] = r;
        }
    }
    out
}

/// The contiguous row block assigned to `rank` of `size`: `(start, len)`.
pub fn row_block(rows: usize, size: usize, rank: usize) -> (usize, usize) {
    let base = rows / size;
    let extra = rows % size;
    let len = base + usize::from(rank < extra);
    let start = rank * base + rank.min(extra);
    (start, len)
}

/// SPMD body: broadcast the matrix, compute the local row block against all
/// rows, gather blocks on the master. Returns the full matrix on the master.
pub fn pcor_rank(comm: &Communicator, master_data: Option<&Arc<Matrix>>) -> Option<Vec<f64>> {
    let payload = if comm.is_master() {
        let m = master_data.expect("master supplies the matrix");
        Some((m.rows(), m.cols(), m.as_slice().to_vec()))
    } else {
        None
    };
    let (rows, cols, data) = comm.bcast(MASTER, payload).expect("data broadcast");
    let local = Matrix::from_vec(rows, cols, data).expect("validated dims");
    let (start, len) = row_block(rows, comm.size(), comm.rank());
    let mut block = vec![0.0f64; len * rows];
    for bi in 0..len {
        let i = start + bi;
        for j in 0..rows {
            block[bi * rows + j] = if i == j {
                1.0
            } else {
                pearson_pairwise(local.row(i), local.row(j))
            };
        }
    }
    let gathered = comm.gather(MASTER, block).expect("block gather");
    gathered.map(|blocks| {
        let mut out = Vec::with_capacity(rows * rows);
        for b in blocks {
            out.extend_from_slice(&b);
        }
        debug_assert_eq!(out.len(), rows * rows);
        out
    })
}

/// Payload key for the staged matrix.
pub const PCOR_INPUT_KEY: &str = "pcor:input";

/// Register `pcor` in the function registry.
pub fn register_pcor(registry: &mut Registry) -> u32 {
    registry.register("pcor", |ctx, _args| {
        let input: Option<Arc<Matrix>> = if ctx.comm.is_master() {
            let m: Matrix = ctx
                .payload
                .take(PCOR_INPUT_KEY)
                .expect("script must stage the dataset before calling pcor");
            Some(Arc::new(m))
        } else {
            None
        };
        pcor_rank(ctx.comm, input.as_ref()).map(|m| Box::new(m) as Box<dyn Any + Send>)
    })
}

/// Script-side typed wrapper: `pcor(X)` through the framework. Returns the
/// row-major genes × genes correlation matrix.
pub fn call_pcor(master: &Master<'_>, data: Matrix) -> Vec<f64> {
    master.stage(PCOR_INPUT_KEY, data);
    *master
        .call(
            "pcor",
            crate::args::Args::new().with("use", Value::Str("pairwise".into())),
        )
        .downcast::<Vec<f64>>()
        .expect("pcor returns the correlation matrix")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::standard_registry;
    use crate::framework::Sprint;

    const TOL: f64 = 1e-12;

    #[test]
    fn pearson_known_values() {
        // Perfect positive / negative / zero correlation.
        assert!((pearson_pairwise(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < TOL);
        assert!((pearson_pairwise(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < TOL);
        // Hand-computed: x=[1,2,3,4], y=[1,3,2,4]: r = 0.8.
        assert!((pearson_pairwise(&[1.0, 2.0, 3.0, 4.0], &[1.0, 3.0, 2.0, 4.0]) - 0.8).abs() < TOL);
    }

    #[test]
    fn pairwise_complete_na_handling() {
        let a = [1.0, 2.0, f64::NAN, 3.0, 4.0];
        let b = [2.0, 4.0, 100.0, 6.0, 8.0];
        // NA pair excluded → remaining points are exactly collinear.
        assert!((pearson_pairwise(&a, &b) - 1.0).abs() < TOL);
    }

    #[test]
    fn degenerate_pairs_are_nan() {
        // Too few shared observations.
        let a = [1.0, f64::NAN, f64::NAN, 4.0];
        let b = [2.0, 3.0, 4.0, 8.0];
        assert!(pearson_pairwise(&a, &b).is_nan());
        // Zero variance.
        assert!(pearson_pairwise(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]).is_nan());
    }

    #[test]
    fn cor_matrix_is_symmetric_with_unit_diagonal() {
        let m = Matrix::from_vec(
            4,
            5,
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 2.0, 4.0, 6.0, 8.0, 10.0, 5.0, 3.0, 4.0, 1.0, 2.0, -1.0,
                0.5, 2.0, -3.0, 1.0,
            ],
        )
        .unwrap();
        let c = cor_matrix(&m);
        for i in 0..4 {
            assert!((c[i * 4 + i] - 1.0).abs() < TOL);
            for j in 0..4 {
                assert_eq!(c[i * 4 + j], c[j * 4 + i]);
            }
        }
        // Rows 0 and 1 are exactly proportional.
        assert!((c[1] - 1.0).abs() < TOL);
    }

    #[test]
    fn row_blocks_partition_exactly() {
        for rows in [1usize, 5, 16, 100] {
            for size in [1usize, 2, 3, 7, 16] {
                let mut covered = vec![0u32; rows];
                for rank in 0..size {
                    let (start, len) = row_block(rows, size, rank);
                    for slot in covered.iter_mut().skip(start).take(len) {
                        *slot += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "rows={rows} size={size}");
            }
        }
    }

    #[test]
    fn parallel_pcor_equals_serial() {
        let m = Matrix::from_vec(
            6,
            8,
            (0..48)
                .map(|i| ((i * 37 % 23) as f64).sin() * 4.0 + i as f64 * 0.1)
                .collect(),
        )
        .unwrap();
        let serial = cor_matrix(&m);
        for ranks in [1usize, 2, 3, 5, 8] {
            let data = m.clone();
            let par = Sprint::new(standard_registry())
                .run(ranks, move |master| call_pcor(master, data))
                .unwrap();
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert!(
                    (a.is_nan() && b.is_nan()) || a == b,
                    "ranks={ranks}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn pcor_and_pmaxt_share_one_universe() {
        // The framework serves multiple different parallel functions in one
        // script — the SPRINT library story.
        use crate::driver::call_pmaxt;
        use sprint_core::options::PmaxtOptions;
        let m = Matrix::from_vec(
            4,
            6,
            vec![
                1.0, 2.0, 1.5, 9.0, 10.0, 9.5, 5.0, 4.0, 6.0, 5.5, 4.5, 5.2, 2.0, 8.0, 3.0, 7.0,
                2.5, 7.5, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0,
            ],
        )
        .unwrap();
        let labels = vec![0u8, 0, 0, 1, 1, 1];
        let (out_cor, out_p) = Sprint::new(standard_registry())
            .run(3, move |master| {
                let c = call_pcor(master, m.clone());
                let p = call_pmaxt(
                    master,
                    m,
                    &labels,
                    &PmaxtOptions::default().permutations(20),
                );
                (c, p)
            })
            .unwrap();
        assert_eq!(out_cor.len(), 16);
        assert_eq!(out_p.b_used, 20);
    }
}
