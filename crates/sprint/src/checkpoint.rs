//! Checkpoint/restart for long permutation runs — the paper's future-work
//! item 1: "Better support for fault tolerance and checkpointing; … this may
//! be of increasing importance as life scientists wish to perform even more
//! tests on ever larger datasets."
//!
//! A checkpoint is the pair (permutation cursor, partial counts): because
//! every generator supports `skip`, resuming is exactly "forward the
//! generator to the cursor and keep counting". The final p-values are
//! **bit-identical** to an uninterrupted run — asserted by the tests.
//!
//! The file format is a self-describing text format with an input digest, so
//! a checkpoint can never be resumed against different data or options.

use std::io::{self, BufRead, Write};
use std::path::Path;

use sprint_core::digest;
use sprint_core::error::{Error, Result};
use sprint_core::labels::ClassLabels;
use sprint_core::matrix::Matrix;
use sprint_core::maxt::engine::{self, EngineConfig};
use sprint_core::maxt::{CountAccumulator, MaxTContext, MaxTResult};
use sprint_core::options::{Mode, PmaxtOptions, Precision};
use sprint_core::perm::resolve_permutation_count;
use sprint_core::stats::prepare_matrix;

/// A saved checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Digest of (data, labels, options) the run was started with.
    pub digest: u64,
    /// Next permutation index to process.
    pub cursor: u64,
    /// Total permutation count of the run.
    pub b: u64,
    /// Partial counts accumulated so far.
    pub counts: CountAccumulator,
}

/// Digest of the run inputs: every data bit, the labels and the
/// result-relevant option fields (see [`sprint_core::digest`]). Changing
/// anything that affects the result invalidates old checkpoints;
/// implementation selection (`threads`/`batch`/`kernel`) is canonicalized
/// away, because any configuration produces bit-identical counts — a run
/// checkpointed on 1 thread under one kernel may resume on 8 under another.
pub fn digest_run(data: &Matrix, labels: &[u8], opts: &PmaxtOptions) -> u64 {
    let mut h = digest::Fnv1a::new();
    h.write_u64(digest::dataset_digest(data, labels));
    h.write_u64(digest::options_digest(opts));
    h.finish()
}

/// Write a checkpoint atomically and crash-consistently: serialize in
/// memory, write a unique temporary sibling, fsync it, rename it over the
/// target, fsync the parent directory. A crash at any instant leaves either
/// the previous checkpoint or the new one — never a torn or empty file —
/// which is what lets the jobd recovery path trust every `.ckpt` it finds.
pub fn save(path: &Path, state: &CheckpointState) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut text = String::new();
    let _ = writeln!(text, "pmaxt-checkpoint-v1");
    let _ = writeln!(text, "digest {}", state.digest);
    let _ = writeln!(text, "cursor {}", state.cursor);
    let _ = writeln!(text, "b {}", state.b);
    let _ = writeln!(text, "n_perm {}", state.counts.n_perm);
    let _ = writeln!(text, "genes {}", state.counts.genes());
    let _ = write!(text, "count_raw");
    for c in &state.counts.count_raw {
        let _ = write!(text, " {c}");
    }
    let _ = writeln!(text);
    let _ = write!(text, "count_adj");
    for c in &state.counts.count_adj {
        let _ = write!(text, " {c}");
    }
    let _ = writeln!(text);
    atomic_write(path, text.as_bytes())
}

/// Crash-consistent file replacement: unique tmp → fsync file → rename →
/// fsync parent dir. The job service routes its own persistent writes
/// through `jobd::storage::atomic_write`; that crate sits *above* this one,
/// so the checkpoint path carries its own copy of the sequence (identical
/// semantics, no fault-injection hooks).
fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "ckpt".to_string());
    let tmp = path.with_file_name(format!(
        ".{name}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::File::open(parent)?.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Load a checkpoint; `Ok(None)` when the file does not exist.
pub fn load(path: &Path) -> io::Result<Option<CheckpointState>> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut lines = io::BufReader::new(file).lines();
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut next_line =
        || -> io::Result<String> { lines.next().ok_or_else(|| bad("truncated checkpoint"))? };
    if next_line()? != "pmaxt-checkpoint-v1" {
        return Err(bad("bad magic"));
    }
    let mut field = |name: &str| -> io::Result<String> {
        let line = next_line()?;
        line.strip_prefix(&format!("{name} "))
            .map(str::to_string)
            .ok_or_else(|| bad(&format!("expected field {name}")))
    };
    let parse_u64 =
        |s: &str| -> io::Result<u64> { s.parse().map_err(|_| bad(&format!("bad number {s:?}"))) };
    let digest = parse_u64(&field("digest")?)?;
    let cursor = parse_u64(&field("cursor")?)?;
    let b = parse_u64(&field("b")?)?;
    let n_perm = parse_u64(&field("n_perm")?)?;
    let genes = parse_u64(&field("genes")?)? as usize;
    let parse_counts = |line: String, tag: &str| -> io::Result<Vec<u64>> {
        let rest = line
            .strip_prefix(tag)
            .ok_or_else(|| bad(&format!("expected {tag}")))?;
        let v: Vec<u64> = rest
            .split_whitespace()
            .map(|t| t.parse::<u64>().map_err(|_| bad("bad count")))
            .collect::<io::Result<_>>()?;
        if v.len() != genes {
            return Err(bad("count length mismatch"));
        }
        Ok(v)
    };
    let count_raw = parse_counts(next_line()?, "count_raw")?;
    let count_adj = parse_counts(next_line()?, "count_adj")?;
    Ok(Some(CheckpointState {
        digest,
        cursor,
        b,
        counts: CountAccumulator {
            count_raw,
            count_adj,
            n_perm,
        },
    }))
}

/// Outcome metadata of a checkpointed session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    /// Cursor the session resumed from (0 for a fresh start).
    pub resumed_from: u64,
    /// Checkpoints written during the session.
    pub checkpoints_written: u64,
}

/// Run (or resume) a checkpointed serial permutation test.
///
/// Processes at most `session_limit` permutations if given, checkpointing to
/// `path` every `every` permutations. Returns `(None, info)` when the run is
/// incomplete (resume later with the same arguments) or `(Some(result),
/// info)` when finished — in which case the checkpoint file is removed.
pub fn run_with_checkpoints(
    data: &Matrix,
    classlabel: &[u8],
    opts: &PmaxtOptions,
    path: &Path,
    every: u64,
    session_limit: Option<u64>,
) -> Result<(Option<MaxTResult>, SessionInfo)> {
    assert!(every > 0, "checkpoint interval must be positive");
    let labels = ClassLabels::new(classlabel.to_vec(), opts.test)?;
    if labels.len() != data.cols() {
        return Err(Error::BadLabels(format!(
            "classlabel length {} does not match {} data columns",
            labels.len(),
            data.cols()
        )));
    }
    // Checkpoint resume depends on bitwise-reproducible counts across
    // sessions; the f32 accumulation mode trades that away, so refuse it
    // here (env override included — SPRINT_PRECISION must not smuggle it in).
    if opts.precision.env_override() == Precision::F32 {
        return Err(Error::BadOption {
            param: "precision",
            value: "f32 (checkpointed runs require bitwise-reproducible f64)".into(),
        });
    }
    // Adaptive mode stops scoring genes early, so its counts are not a prefix
    // of the exact stream for every gene — a later resume could not continue
    // them. Refused for the same reason as f32 (SPRINT_MODE included).
    if opts.mode.env_override() == Mode::Adaptive {
        return Err(Error::BadOption {
            param: "mode",
            value: "adaptive (checkpointed runs require bitwise-reproducible exact mode)".into(),
        });
    }
    let owned_na;
    let data = match opts.na {
        Some(code) => {
            owned_na =
                Matrix::from_vec_with_na(data.rows(), data.cols(), data.as_slice().to_vec(), code)?;
            &owned_na
        }
        None => data,
    };
    let digest = digest_run(data, classlabel, opts);
    let b = resolve_permutation_count(&labels, opts)?;
    let prepared = prepare_matrix(data, opts.test, opts.nonpara);
    let ctx = MaxTContext::with_scorer(
        &prepared,
        &labels,
        opts.test,
        opts.side,
        opts.kernel,
        opts.precision,
    );
    let mut acc = CountAccumulator::new(data.rows());
    let mut cursor = 0u64;

    let resumed_from = match load(path).map_err(|e| Error::Comm(e.to_string()))? {
        Some(state) if state.digest == digest && state.b == b => {
            cursor = state.cursor;
            acc = state.counts;
            state.cursor
        }
        Some(_) => {
            // Stale checkpoint for different inputs: start over.
            0
        }
        None => 0,
    };

    // Each inter-checkpoint span is one engine chunk: the engine's workers
    // build their own skip-forwarded generators, so a plain cursor is the
    // whole resumable state — exactly what the checkpoint stores.
    let cfg = EngineConfig::resolve(opts);
    let mut remaining_session = session_limit.unwrap_or(u64::MAX);
    let mut checkpoints_written = 0u64;
    while cursor < b && remaining_session > 0 {
        let take = every.min(b - cursor).min(remaining_session);
        let run = engine::accumulate_chunk(&ctx, &labels, opts, b, cursor, take, cfg)?;
        debug_assert_eq!(run.counts.n_perm, take, "chunk shorter than assigned");
        acc.merge(&run.counts);
        cursor += take;
        remaining_session -= take;
        let state = CheckpointState {
            digest,
            cursor,
            b,
            counts: acc.clone(),
        };
        save(path, &state).map_err(|e| Error::Comm(e.to_string()))?;
        checkpoints_written += 1;
    }

    let info = SessionInfo {
        resumed_from,
        checkpoints_written,
    };
    if cursor >= b {
        std::fs::remove_file(path).ok();
        Ok((Some(ctx.finalize(&acc)), info))
    } else {
        Ok((None, info))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_core::maxt::serial::mt_maxt;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sprint-ckpt-{}-{name}", std::process::id()));
        p
    }

    fn data_and_labels() -> (Matrix, Vec<u8>) {
        let data = Matrix::from_vec(
            3,
            6,
            vec![
                1.0, 2.0, 1.5, 9.0, 10.0, 9.5, 5.0, 4.0, 6.0, 5.5, 4.5, 5.2, 2.0, 8.0, 3.0, 7.0,
                2.5, 7.5,
            ],
        )
        .unwrap();
        (data, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn uninterrupted_checkpointed_run_matches_mt_maxt() {
        let (data, labels) = data_and_labels();
        let opts = PmaxtOptions::default().permutations(50);
        let path = tmp("uninterrupted");
        let (result, info) = run_with_checkpoints(&data, &labels, &opts, &path, 7, None).unwrap();
        let direct = mt_maxt(&data, &labels, &opts).unwrap();
        assert_eq!(result.unwrap(), direct);
        assert_eq!(info.resumed_from, 0);
        assert_eq!(info.checkpoints_written, 8); // ceil(50/7)
        assert!(!path.exists(), "checkpoint removed after completion");
    }

    #[test]
    fn f32_precision_is_rejected_with_a_typed_usage_error() {
        let (data, labels) = data_and_labels();
        let opts = PmaxtOptions::default()
            .permutations(50)
            .precision(Precision::F32);
        let path = tmp("f32-rejected");
        let err = run_with_checkpoints(&data, &labels, &opts, &path, 7, None).unwrap_err();
        match err {
            Error::BadOption { param, .. } => assert_eq!(param, "precision"),
            other => panic!("expected BadOption, got {other:?}"),
        }
        assert!(!path.exists(), "rejected run must not create a checkpoint");
    }

    #[test]
    fn adaptive_mode_is_rejected_with_a_typed_usage_error() {
        let (data, labels) = data_and_labels();
        let opts = PmaxtOptions::default()
            .permutations(50)
            .mode(Mode::Adaptive);
        let path = tmp("adaptive-rejected");
        let err = run_with_checkpoints(&data, &labels, &opts, &path, 7, None).unwrap_err();
        match err {
            Error::BadOption { param, .. } => assert_eq!(param, "mode"),
            other => panic!("expected BadOption, got {other:?}"),
        }
        assert!(!path.exists(), "rejected run must not create a checkpoint");
    }

    #[test]
    fn interrupted_run_resumes_bit_identically() {
        let (data, labels) = data_and_labels();
        let opts = PmaxtOptions::default().permutations(60);
        let path = tmp("interrupted");
        // Session 1: only 25 permutations, then "crash".
        let (partial, info1) =
            run_with_checkpoints(&data, &labels, &opts, &path, 10, Some(25)).unwrap();
        assert!(partial.is_none());
        assert!(path.exists());
        assert_eq!(info1.resumed_from, 0);
        // Session 2: resume and finish.
        let (result, info2) = run_with_checkpoints(&data, &labels, &opts, &path, 10, None).unwrap();
        assert_eq!(info2.resumed_from, 25);
        let direct = mt_maxt(&data, &labels, &opts).unwrap();
        assert_eq!(result.unwrap(), direct);
        assert!(!path.exists());
    }

    #[test]
    fn resume_works_for_stored_sampling_and_complete() {
        let (data, labels) = data_and_labels();
        for opts in [
            PmaxtOptions::default()
                .permutations(40)
                .fixed_seed_sampling("n")
                .unwrap(),
            PmaxtOptions::default().permutations(0), // complete: C(6,3)=20
        ] {
            let path = tmp(&format!("mode-{:?}-{}", opts.sampling, opts.b));
            let (p1, _) = run_with_checkpoints(&data, &labels, &opts, &path, 6, Some(13)).unwrap();
            assert!(p1.is_none());
            let (p2, _) = run_with_checkpoints(&data, &labels, &opts, &path, 6, None).unwrap();
            let direct = mt_maxt(&data, &labels, &opts).unwrap();
            assert_eq!(p2.unwrap(), direct);
        }
    }

    #[test]
    fn resume_with_different_thread_geometry_is_bit_identical() {
        // The digest canonicalizes threads/batch away: a run checkpointed
        // under one engine geometry resumes under another, bit-identically.
        let (data, labels) = data_and_labels();
        let opts1 = PmaxtOptions::default().permutations(60).threads(1).batch(4);
        let opts2 = PmaxtOptions::default()
            .permutations(60)
            .threads(3)
            .batch(16);
        assert_eq!(
            digest_run(&data, &labels, &opts1),
            digest_run(&data, &labels, &opts2)
        );
        let path = tmp("geometry");
        let (p1, _) = run_with_checkpoints(&data, &labels, &opts1, &path, 10, Some(25)).unwrap();
        assert!(p1.is_none());
        let (result, info) = run_with_checkpoints(&data, &labels, &opts2, &path, 10, None).unwrap();
        assert_eq!(info.resumed_from, 25);
        assert_eq!(result.unwrap(), mt_maxt(&data, &labels, &opts1).unwrap());
    }

    #[test]
    fn stale_checkpoint_for_different_inputs_is_ignored() {
        let (data, labels) = data_and_labels();
        let opts_a = PmaxtOptions::default().permutations(30).seed(1);
        let opts_b = PmaxtOptions::default().permutations(30).seed(2);
        let path = tmp("stale");
        let (_, _) = run_with_checkpoints(&data, &labels, &opts_a, &path, 5, Some(10)).unwrap();
        assert!(path.exists());
        // Different options: the old checkpoint must not be resumed.
        let (result, info) = run_with_checkpoints(&data, &labels, &opts_b, &path, 5, None).unwrap();
        assert_eq!(info.resumed_from, 0);
        assert_eq!(result.unwrap(), mt_maxt(&data, &labels, &opts_b).unwrap());
    }

    #[test]
    fn checkpoint_file_round_trips() {
        let state = CheckpointState {
            digest: 0xDEADBEEF,
            cursor: 123,
            b: 1000,
            counts: CountAccumulator {
                count_raw: vec![1, 2, 3],
                count_adj: vec![4, 5, 6],
                n_perm: 123,
            },
        };
        let path = tmp("roundtrip");
        save(&path, &state).unwrap();
        let loaded = load(&path).unwrap().unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, state);
    }

    #[test]
    fn missing_file_loads_none_and_corrupt_errors() {
        let path = tmp("missing");
        assert!(load(&path).unwrap().is_none());
        std::fs::write(&path, "garbage").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn digest_is_sensitive_to_inputs() {
        let (data, labels) = data_and_labels();
        let opts = PmaxtOptions::default();
        let base = digest_run(&data, &labels, &opts);
        assert_ne!(base, digest_run(&data, &labels, &opts.clone().seed(1)));
        let mut labels2 = labels.clone();
        labels2.swap(0, 3);
        assert_ne!(base, digest_run(&data, &labels2, &opts));
        let mut v = data.as_slice().to_vec();
        v[0] += 1.0;
        let data2 = Matrix::from_vec(3, 6, v).unwrap();
        assert_ne!(base, digest_run(&data2, &labels, &opts));
    }
}
