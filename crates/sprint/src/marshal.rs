//! Parameter marshalling: the wire form of [`Args`] broadcast to workers.
//!
//! Two codecs are provided:
//!
//! - [`Codec::StringCoded`] — option values travel as strings, exactly as the
//!   R interface supplies them (`test = "t.equalvar"`, `side = "abs"`, …).
//!   This is what the paper's implementation does (it broadcasts "the lengths
//!   of the string parameters first").
//! - [`Codec::IntCoded`] — the paper's **future-work item 3**: "the string
//!   input parameters can be replaced with scalar integer values before they
//!   are broadcast to all processes. Scalar parameters are easier and faster
//!   to broadcast and handle." Known option strings are replaced by one-byte
//!   codes.
//!
//! The `marshal_ablation` bench quantifies the difference.

use sprint_core::options::{KernelChoice, PmaxtOptions, Precision, SamplingMode, TestMethod};
use sprint_core::side::Side;

use crate::args::{Args, Value};

/// Wire codec choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Strings travel verbatim (the published implementation).
    StringCoded,
    /// Strings of known option domains travel as one-byte codes
    /// (future-work item 3).
    IntCoded,
}

// Tags of the value variants on the wire.
const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_BYTES: u8 = 3;
const TAG_FLOATS: u8 = 4;
const TAG_CODE: u8 = 5; // IntCoded replacement of a known string

/// The option strings that IntCoded replaces, in code order. The domain is
/// closed (it is the R interface's documented vocabulary), so a one-byte
/// index is a faithful replacement.
const CODED_STRINGS: &[&str] = &[
    "t",
    "t.equalvar",
    "wilcoxon",
    "f",
    "pairt",
    "blockf",
    "abs",
    "upper",
    "lower",
    "y",
    "n",
    // Kernel choices (appended — existing codes must stay stable on the wire).
    "auto",
    "scalar",
    "fast",
];

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(buf: &[u8], pos: &mut usize) -> u64 {
    let v = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
    *pos += 8;
    v
}

/// Encode `args` with the chosen codec.
pub fn encode(args: &Args, codec: Codec) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, args.len() as u64);
    for (name, value) in args.iter() {
        push_u64(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
        match value {
            Value::Int(v) => {
                out.push(TAG_INT);
                push_u64(&mut out, *v as u64);
            }
            Value::Float(v) => {
                out.push(TAG_FLOAT);
                push_u64(&mut out, v.to_bits());
            }
            Value::Str(s) => {
                let code = if codec == Codec::IntCoded {
                    CODED_STRINGS.iter().position(|&c| c == s)
                } else {
                    None
                };
                match code {
                    Some(c) => {
                        out.push(TAG_CODE);
                        out.push(c as u8);
                    }
                    None => {
                        out.push(TAG_STR);
                        push_u64(&mut out, s.len() as u64);
                        out.extend_from_slice(s.as_bytes());
                    }
                }
            }
            Value::Bytes(b) => {
                out.push(TAG_BYTES);
                push_u64(&mut out, b.len() as u64);
                out.extend_from_slice(b);
            }
            Value::Floats(fs) => {
                out.push(TAG_FLOATS);
                push_u64(&mut out, fs.len() as u64);
                for f in fs {
                    push_u64(&mut out, f.to_bits());
                }
            }
        }
    }
    out
}

/// Decode a buffer produced by [`encode`] (either codec — the tags are
/// self-describing).
pub fn decode(buf: &[u8]) -> Args {
    let mut pos = 0usize;
    let n = read_u64(buf, &mut pos) as usize;
    let mut args = Args::new();
    for _ in 0..n {
        let name_len = read_u64(buf, &mut pos) as usize;
        let name = std::str::from_utf8(&buf[pos..pos + name_len])
            .expect("utf8 name")
            .to_string();
        pos += name_len;
        let tag = buf[pos];
        pos += 1;
        let value = match tag {
            TAG_INT => Value::Int(read_u64(buf, &mut pos) as i64),
            TAG_FLOAT => Value::Float(f64::from_bits(read_u64(buf, &mut pos))),
            TAG_STR => {
                let len = read_u64(buf, &mut pos) as usize;
                let s = std::str::from_utf8(&buf[pos..pos + len])
                    .expect("utf8 value")
                    .to_string();
                pos += len;
                Value::Str(s)
            }
            TAG_CODE => {
                let c = buf[pos] as usize;
                pos += 1;
                Value::Str(CODED_STRINGS[c].to_string())
            }
            TAG_BYTES => {
                let len = read_u64(buf, &mut pos) as usize;
                let b = buf[pos..pos + len].to_vec();
                pos += len;
                Value::Bytes(b)
            }
            TAG_FLOATS => {
                let len = read_u64(buf, &mut pos) as usize;
                let mut fs = Vec::with_capacity(len);
                for _ in 0..len {
                    fs.push(f64::from_bits(read_u64(buf, &mut pos)));
                }
                Value::Floats(fs)
            }
            other => panic!("unknown wire tag {other}"),
        };
        args.set(&name, value);
    }
    args
}

/// Express [`PmaxtOptions`] as R-style string arguments.
pub fn options_to_args(opts: &PmaxtOptions) -> Args {
    let mut args = Args::new()
        .with("test", Value::Str(opts.test.as_str().to_string()))
        .with("side", Value::Str(opts.side.as_str().to_string()))
        .with(
            "fixed.seed.sampling",
            Value::Str(opts.sampling.as_str().to_string()),
        )
        .with("B", Value::Int(opts.b as i64))
        .with(
            "nonpara",
            Value::Str(if opts.nonpara { "y" } else { "n" }.to_string()),
        )
        .with("seed", Value::Int(opts.seed as i64))
        .with("max.complete", Value::Int(opts.max_complete as i64))
        .with("kernel", Value::Str(opts.kernel.as_str().to_string()))
        .with("precision", Value::Str(opts.precision.as_str().to_string()))
        .with("threads", Value::Int(opts.threads as i64))
        .with("batch", Value::Int(opts.batch as i64));
    if let Some(na) = opts.na {
        args.set("na", Value::Float(na));
    }
    args
}

/// Rebuild [`PmaxtOptions`] from R-style string arguments.
pub fn args_to_options(args: &Args) -> sprint_core::error::Result<PmaxtOptions> {
    let mut opts = PmaxtOptions::default();
    if let Some(v) = args.get("test") {
        opts.test = TestMethod::parse(v.as_str().unwrap_or_default())?;
    }
    if let Some(v) = args.get("side") {
        opts.side = Side::parse(v.as_str().unwrap_or_default())?;
    }
    if let Some(v) = args.get("fixed.seed.sampling") {
        opts.sampling = SamplingMode::parse(v.as_str().unwrap_or_default())?;
    }
    if let Some(v) = args.get("B") {
        opts.b = v.as_int().unwrap_or(10_000) as u64;
    }
    if let Some(v) = args.get("nonpara") {
        opts.nonpara = v.as_str() == Some("y");
    }
    if let Some(v) = args.get("seed") {
        opts.seed = v.as_int().unwrap_or(0) as u64;
    }
    if let Some(v) = args.get("max.complete") {
        opts.max_complete = v.as_int().unwrap_or(0) as u64;
    }
    if let Some(v) = args.get("kernel") {
        opts.kernel = KernelChoice::parse(v.as_str().unwrap_or_default())?;
    }
    if let Some(v) = args.get("precision") {
        opts.precision = Precision::parse(v.as_str().unwrap_or_default())?;
    }
    if let Some(v) = args.get("threads") {
        opts.threads = v.as_int().unwrap_or(0) as usize;
    }
    if let Some(v) = args.get("batch") {
        opts.batch = v.as_int().unwrap_or(0) as usize;
    }
    if let Some(v) = args.get("na") {
        opts.na = v.as_float();
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_args() -> Args {
        Args::new()
            .with("test", Value::Str("t.equalvar".into()))
            .with("side", Value::Str("lower".into()))
            .with("B", Value::Int(150_000))
            .with("na", Value::Float(-9999.25))
            .with("labels", Value::Bytes(vec![0, 0, 1, 1]))
            .with("row0", Value::Floats(vec![1.5, f64::NAN, -2.0]))
            .with("custom", Value::Str("not-a-known-option".into()))
    }

    #[test]
    fn string_codec_round_trips() {
        let args = rich_args();
        let decoded = decode(&encode(&args, Codec::StringCoded));
        // NaN != NaN, so compare piecewise.
        assert_eq!(decoded.len(), args.len());
        assert_eq!(decoded.get("test"), args.get("test"));
        assert_eq!(decoded.get("labels"), args.get("labels"));
        let f = decoded.get("row0").unwrap().as_floats().unwrap();
        assert_eq!(f[0], 1.5);
        assert!(f[1].is_nan());
        assert_eq!(f[2], -2.0);
    }

    #[test]
    fn int_codec_round_trips_including_unknown_strings() {
        let args = rich_args();
        let decoded = decode(&encode(&args, Codec::IntCoded));
        assert_eq!(decoded.get("test").unwrap().as_str(), Some("t.equalvar"));
        assert_eq!(decoded.get("side").unwrap().as_str(), Some("lower"));
        assert_eq!(
            decoded.get("custom").unwrap().as_str(),
            Some("not-a-known-option"),
            "unknown strings fall back to verbatim"
        );
    }

    #[test]
    fn int_codec_is_smaller_for_option_strings() {
        let args = Args::new()
            .with("test", Value::Str("t.equalvar".into()))
            .with("side", Value::Str("upper".into()))
            .with("fixed.seed.sampling", Value::Str("y".into()))
            .with("nonpara", Value::Str("n".into()));
        let s = encode(&args, Codec::StringCoded).len();
        let i = encode(&args, Codec::IntCoded).len();
        assert!(i < s, "int-coded {i} >= string-coded {s}");
    }

    #[test]
    fn options_round_trip_through_args() {
        let opts = PmaxtOptions::default()
            .test(TestMethod::BlockF)
            .side(Side::Upper)
            .permutations(77)
            .nonpara(true)
            .na_code(-1.0)
            .seed(99)
            .threads(6)
            .batch(48)
            .precision(Precision::F32);
        for codec in [Codec::StringCoded, Codec::IntCoded] {
            let wire = encode(&options_to_args(&opts), codec);
            let back = args_to_options(&decode(&wire)).unwrap();
            assert_eq!(back, opts, "{codec:?}");
        }
    }

    #[test]
    fn defaults_survive_missing_args() {
        let opts = args_to_options(&Args::new()).unwrap();
        assert_eq!(opts, PmaxtOptions::default());
    }

    #[test]
    fn every_known_option_string_is_coded() {
        for s in CODED_STRINGS {
            let args = Args::new().with("x", Value::Str(s.to_string()));
            let enc = encode(&args, Codec::IntCoded);
            // name "x" (1) + its length (8) + count (8) + tag + code byte
            assert_eq!(enc.len(), 8 + 8 + 1 + 1 + 1, "string {s:?} not coded");
            assert_eq!(decode(&enc).get("x").unwrap().as_str(), Some(*s));
        }
    }
}
