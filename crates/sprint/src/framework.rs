//! The SPRINT execution model (paper Figure 1): all ranks start, load the
//! function library, and initialize the message-passing layer; workers enter
//! a waiting loop; the master evaluates the user's script, and each call to a
//! parallel function broadcasts a function code that wakes the workers to
//! evaluate it collectively.

use std::any::Any;
use std::sync::Arc;

use mpi_sim::{Communicator, Universe, MASTER};

use crate::args::Args;
use crate::marshal::{self, Codec};
use crate::registry::{MasterPayload, Registry, TaskContext};

/// The command the master broadcasts to the waiting workers.
#[derive(Debug, Clone)]
enum Command {
    /// Evaluate function `code` with the encoded arguments.
    Call { code: u32, wire_args: Vec<u8> },
    /// Leave the waiting loop (the script finished).
    Shutdown,
}

/// The master's handle inside a script: call parallel functions by name.
pub struct Master<'a> {
    comm: &'a Communicator,
    registry: &'a Registry,
    payload: &'a MasterPayload,
    codec: Codec,
}

impl<'a> Master<'a> {
    /// Number of ranks in the universe.
    pub fn ranks(&self) -> usize {
        self.comm.size()
    }

    /// Stage a large out-of-band input for the next call (see
    /// [`MasterPayload`]).
    pub fn stage<T: Any + Send>(&self, key: &str, value: T) {
        self.payload.put(key, value);
    }

    /// Invoke the parallel function `name` on all ranks and return its
    /// master-side output.
    ///
    /// # Panics
    /// Panics if `name` is not registered — a script bug, surfaced loudly.
    pub fn call(&self, name: &str, args: Args) -> Box<dyn Any + Send> {
        let code = self
            .registry
            .code_of(name)
            .unwrap_or_else(|| panic!("parallel function {name:?} is not registered"));
        let wire_args = marshal::encode(&args, self.codec);
        self.comm
            .bcast(MASTER, Some(Command::Call { code, wire_args }))
            .expect("command broadcast");
        let f = self.registry.by_code(code).expect("validated code");
        let ctx = TaskContext {
            comm: self.comm,
            payload: self.payload,
        };
        f(&ctx, &args).expect("master output")
    }
}

/// The SPRINT framework: a registry plus the SPMD launcher.
pub struct Sprint {
    registry: Registry,
    codec: Codec,
}

impl Sprint {
    /// Build with the given function registry, using integer-coded parameter
    /// marshalling (future-work item 3; see [`crate::marshal`]).
    pub fn new(registry: Registry) -> Self {
        Sprint {
            registry,
            codec: Codec::IntCoded,
        }
    }

    /// Select the parameter codec (the published implementation used
    /// string-coded parameters).
    pub fn with_codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Launch `n_ranks` ranks; the master evaluates `script`, the workers
    /// serve [`Master::call`]s until the script returns. Equivalent to
    /// `mpiexec -n n_ranks R -f script.R` in the paper's usage.
    pub fn run<T, F>(self, n_ranks: usize, script: F) -> Result<T, mpi_sim::UniverseError>
    where
        T: Send + 'static,
        F: FnOnce(&Master<'_>) -> T + Send + 'static,
    {
        let registry = Arc::new(self.registry);
        let codec = self.codec;
        let script = Arc::new(parking_lot::Mutex::new(Some(script)));
        let mut outputs = Universe::run(n_ranks, move |comm| {
            let payload = MasterPayload::new();
            if comm.is_master() {
                let script = script
                    .lock()
                    .take()
                    .expect("script runs exactly once, on the master");
                let master = Master {
                    comm,
                    registry: &registry,
                    payload: &payload,
                    codec,
                };
                let out = script(&master);
                comm.bcast(MASTER, Some(Command::Shutdown))
                    .expect("shutdown broadcast");
                Some(out)
            } else {
                // The worker waiting loop of Figure 1.
                loop {
                    let cmd: Command = comm.bcast(MASTER, None).expect("await command");
                    match cmd {
                        Command::Call { code, wire_args } => {
                            let args = marshal::decode(&wire_args);
                            let f = registry.by_code(code).expect("unknown function code");
                            let ctx = TaskContext {
                                comm,
                                payload: &payload,
                            };
                            let _ = f(&ctx, &args);
                        }
                        Command::Shutdown => break,
                    }
                }
                None
            }
        })?;
        Ok(outputs
            .swap_remove(0)
            .expect("master produces the script output"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Value;

    fn echo_registry() -> Registry {
        let mut reg = Registry::new();
        reg.register("sum-ranks", |ctx, _args| {
            let total = ctx
                .comm
                .reduce(MASTER, ctx.comm.rank() as u64, |a, b| a + b)
                .expect("reduce");
            total.map(|t| Box::new(t) as Box<dyn Any + Send>)
        });
        reg.register("scale", |ctx, args| {
            let factor = args.get("factor").and_then(Value::as_int).unwrap_or(1);
            let local = (ctx.comm.rank() as i64 + 1) * factor;
            let total = ctx
                .comm
                .reduce(MASTER, local, |a, b| a + b)
                .expect("reduce");
            total.map(|t| Box::new(t) as Box<dyn Any + Send>)
        });
        reg
    }

    #[test]
    fn script_calls_parallel_functions() {
        let out = Sprint::new(echo_registry())
            .run(4, |master| {
                assert_eq!(master.ranks(), 4);
                let sum = *master
                    .call("sum-ranks", Args::new())
                    .downcast::<u64>()
                    .unwrap();
                let scaled = *master
                    .call("scale", Args::new().with("factor", Value::Int(10)))
                    .downcast::<i64>()
                    .unwrap();
                (sum, scaled)
            })
            .unwrap();
        assert_eq!(out, (6, 100));
    }

    #[test]
    fn multiple_sequential_calls_work() {
        let out = Sprint::new(echo_registry())
            .run(3, |master| {
                (0..5)
                    .map(|_| {
                        *master
                            .call("sum-ranks", Args::new())
                            .downcast::<u64>()
                            .unwrap()
                    })
                    .collect::<Vec<_>>()
            })
            .unwrap();
        assert_eq!(out, vec![3; 5]);
    }

    #[test]
    fn single_rank_master_only() {
        let out = Sprint::new(echo_registry())
            .run(1, |master| {
                *master
                    .call("sum-ranks", Args::new())
                    .downcast::<u64>()
                    .unwrap()
            })
            .unwrap();
        assert_eq!(out, 0);
    }

    #[test]
    fn both_codecs_deliver_args() {
        for codec in [Codec::StringCoded, Codec::IntCoded] {
            let out = Sprint::new(echo_registry())
                .with_codec(codec)
                .run(2, |master| {
                    *master
                        .call("scale", Args::new().with("factor", Value::Int(7)))
                        .downcast::<i64>()
                        .unwrap()
                })
                .unwrap();
            assert_eq!(out, (1 + 2) * 7, "{codec:?}");
        }
    }

    #[test]
    fn unknown_function_panics_the_master() {
        let err = Sprint::new(echo_registry())
            .run(2, |master| {
                master.call("nonexistent", Args::new());
            })
            .unwrap_err();
        assert!(err.to_string().contains("not registered"));
    }
}
