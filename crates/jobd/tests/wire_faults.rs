//! Malformed wire input never takes down a connection handler, let alone the
//! daemon: garbage lines, invalid UTF-8, oversized requests, unknown
//! commands and half-written frames each get a typed protocol error (or a
//! clean close), after which the same server keeps answering.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::time::Duration;

use sprint_jobd::json::Json;
use sprint_jobd::server::MAX_REQUEST_LINE;
use sprint_jobd::{protocol, Client, Faults, JobManager, ManagerConfig, Server, ServerConfig};

struct Fixture {
    dir: std::path::PathBuf,
    sock: std::path::PathBuf,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Fixture {
    fn start(name: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("jobd-wire-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("jobd.sock");
        // Injection off: these tests feed hostile input from the outside, so
        // an ambient SPRINT_FAULTS must not also tear the responses.
        let manager = JobManager::new(ManagerConfig {
            workers: 1,
            cache_dir: None,
            faults: Faults::disabled(),
            ..ManagerConfig::default()
        })
        .unwrap();
        let server = Server::bind_with(
            &format!("unix:{}", sock.display()),
            manager,
            ServerConfig {
                faults: Faults::disabled(),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let handle = std::thread::spawn(move || server.run());
        Fixture {
            dir,
            sock,
            handle: Some(handle),
        }
    }

    fn raw(&self) -> UnixStream {
        let s = UnixStream::connect(&self.sock).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s
    }

    /// Send raw bytes on `conn` and read one response line back.
    fn roundtrip(&self, conn: &mut UnixStream, bytes: &[u8]) -> Json {
        conn.write_all(bytes).unwrap();
        conn.flush().unwrap();
        let mut line = String::new();
        BufReader::new(conn.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(!line.is_empty(), "server hung up instead of responding");
        Json::parse(line.trim_end()).unwrap()
    }

    /// The daemon must still answer a well-formed ping on a fresh connection.
    fn assert_alive(&self) {
        let addr = format!("unix:{}", self.sock.display());
        let mut client = Client::connect(&addr).unwrap();
        let resp = client.request(&protocol::job_request("ping", 0)).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let addr = format!("unix:{}", self.sock.display());
        if let Ok(mut client) = Client::connect(&addr) {
            let _ = client.request(&protocol::job_request("shutdown", 0));
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn err_code(resp: &Json) -> String {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(false),
        "expected an error response, got {}",
        resp.to_json()
    );
    resp.get("code")
        .and_then(Json::as_str)
        .expect("error responses carry a code")
        .to_string()
}

#[test]
fn garbage_line_gets_usage_error_and_connection_survives() {
    let fx = Fixture::start("garbage");
    let mut conn = fx.raw();
    let resp = fx.roundtrip(&mut conn, b"this is not json\n");
    assert_eq!(err_code(&resp), "usage");
    // Same connection, next line: still parsed and served.
    let resp = fx.roundtrip(&mut conn, b"{\"cmd\":\"ping\"}\n");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    fx.assert_alive();
}

#[test]
fn invalid_utf8_gets_typed_error_not_a_dead_thread() {
    let fx = Fixture::start("utf8");
    let mut conn = fx.raw();
    let resp = fx.roundtrip(&mut conn, b"{\"cmd\": \"\xff\xfe\x80\"}\n");
    assert_eq!(err_code(&resp), "usage");
    let resp = fx.roundtrip(&mut conn, b"{\"cmd\":\"ping\"}\n");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    fx.assert_alive();
}

#[test]
fn oversized_line_is_bounded_rejected_and_resynced() {
    let fx = Fixture::start("oversized");
    let mut conn = fx.raw();
    // Twice the limit: the server must refuse to buffer it, answer with a
    // bounded-line error, discard through the newline, and keep serving.
    let mut big = vec![b'a'; 2 * MAX_REQUEST_LINE];
    big.push(b'\n');
    let resp = fx.roundtrip(&mut conn, &big);
    assert_eq!(err_code(&resp), "usage");
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap_or("")
            .contains("exceeds"),
        "error should say the line was too long: {}",
        resp.to_json()
    );
    let resp = fx.roundtrip(&mut conn, b"{\"cmd\":\"ping\"}\n");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    fx.assert_alive();
}

#[test]
fn unknown_command_and_wrong_types_get_usage_errors() {
    let fx = Fixture::start("unknown");
    let mut conn = fx.raw();
    let resp = fx.roundtrip(&mut conn, b"{\"cmd\":\"frobnicate\"}\n");
    assert_eq!(err_code(&resp), "usage");
    // `cmd` present but not a string.
    let resp = fx.roundtrip(&mut conn, b"{\"cmd\":42}\n");
    assert_eq!(err_code(&resp), "usage");
    // A JSON array is not a request object.
    let resp = fx.roundtrip(&mut conn, b"[1,2,3]\n");
    assert_eq!(err_code(&resp), "usage");
    fx.assert_alive();
}

#[test]
fn half_written_frame_then_hangup_is_a_clean_close() {
    let fx = Fixture::start("torn");
    {
        let mut conn = fx.raw();
        // A request cut off mid-frame with no newline, then the peer vanishes.
        conn.write_all(b"{\"cmd\":\"sub").unwrap();
        conn.flush().unwrap();
        drop(conn); // hangup
    }
    {
        // Same, but the peer half-closes and waits: the server treats the
        // unterminated tail as a (malformed) line, answers, then sees EOF.
        let mut conn = fx.raw();
        conn.write_all(b"{\"cmd\":\"sub").unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut all = String::new();
        BufReader::new(conn.try_clone().unwrap())
            .read_to_string(&mut all)
            .unwrap();
        let first = all.lines().next().expect("one response line");
        let resp = Json::parse(first).unwrap();
        assert_eq!(err_code(&resp), "usage");
    }
    fx.assert_alive();
}
