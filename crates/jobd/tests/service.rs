//! End-to-end guarantees of the job service: whatever the scheduling,
//! geometry, caching or interruption history, a jobd-served result is
//! bitwise-identical to a direct serial `mt_maxt` call.

use std::sync::mpsc;
use std::time::Duration;

use sprint_core::matrix::Matrix;
use sprint_core::maxt::serial::mt_maxt;
use sprint_core::options::{PmaxtOptions, TestMethod};
use sprint_core::side::Side;
use sprint_jobd::{CacheDisposition, JobManager, JobSpec, JobState, ManagerConfig};

const WAIT: Duration = Duration::from_secs(120);

/// Deterministic pseudo-random matrix (no external RNG dep in tests).
fn synth_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut v = Vec::with_capacity(rows * cols);
    for g in 0..rows {
        let shift = if g % 7 == 0 { 1.5 } else { 0.0 };
        for c in 0..cols {
            let bump = if c >= cols / 2 { shift } else { 0.0 };
            v.push(next() * 4.0 - 2.0 + bump);
        }
    }
    Matrix::from_vec(rows, cols, v).unwrap()
}

fn two_class_labels(n0: usize, n1: usize) -> Vec<u8> {
    let mut l = vec![0u8; n0];
    l.extend(std::iter::repeat_n(1u8, n1));
    l
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("jobd-it-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn submit(mgr: &JobManager, data: &Matrix, labels: &[u8], opts: &PmaxtOptions) -> u64 {
    mgr.submit(JobSpec {
        data: data.clone(),
        classlabel: labels.to_vec(),
        opts: opts.clone(),
        source_path: None,
    })
    .unwrap()
    .id
}

/// N simultaneous jobs with mixed engine geometries all come back
/// bitwise-identical to serial references computed independently.
#[test]
fn concurrent_mixed_geometry_jobs_match_serial() {
    let data = synth_matrix(60, 12, 42);
    let labels = two_class_labels(6, 6);
    let mgr = JobManager::new(ManagerConfig {
        workers: 3,
        span: 16,
        cache_dir: None,
        ..ManagerConfig::default()
    })
    .unwrap();
    let variants: Vec<PmaxtOptions> = vec![
        PmaxtOptions::default().permutations(97).threads(1).batch(1),
        PmaxtOptions::default()
            .permutations(128)
            .threads(2)
            .batch(7)
            .seed(9),
        PmaxtOptions::default()
            .permutations(73)
            .threads(3)
            .batch(32)
            .test(TestMethod::Wilcoxon),
        PmaxtOptions::default()
            .permutations(200)
            .threads(2)
            .batch(5)
            .side(Side::Upper),
        PmaxtOptions::default()
            .permutations(55)
            .threads(1)
            .batch(16)
            .test(TestMethod::TEqualVar)
            .side(Side::Lower),
        PmaxtOptions::default()
            .permutations(160)
            .threads(3)
            .batch(3)
            .seed(77),
    ];
    let ids: Vec<u64> = variants
        .iter()
        .map(|o| submit(&mgr, &data, &labels, o))
        .collect();
    for (id, opts) in ids.iter().zip(&variants) {
        let served = mgr.wait_result(*id, Some(WAIT)).unwrap();
        let direct = mt_maxt(&data, &labels, opts).unwrap();
        assert_eq!(served, direct, "geometry must not change the result");
    }
}

/// Cancelling mid-run leaves a resumable checkpoint: a fresh manager over
/// the same cache resumes from the last completed span and finishes with
/// the exact serial result.
#[test]
fn cancel_leaves_resumable_checkpoint() {
    let data = synth_matrix(200, 20, 7);
    let labels = two_class_labels(10, 10);
    let opts = PmaxtOptions::default().permutations(20_000).threads(1);
    let cache = tmpdir("cancel");

    let mgr = JobManager::new(ManagerConfig {
        workers: 1,
        span: 64,
        cache_dir: Some(cache.clone()),
        ..ManagerConfig::default()
    })
    .unwrap();
    let info = mgr
        .submit(JobSpec {
            data: data.clone(),
            classlabel: labels.clone(),
            opts: opts.clone(),
            source_path: None,
        })
        .unwrap();
    assert_eq!(info.cache, CacheDisposition::Miss);

    // Wait for at least one completed span (span-completion events carry
    // done > 0), then cancel.
    let rx = mgr.subscribe(info.id).unwrap();
    let mut progressed = 0;
    for event in rx.iter() {
        if event.state.is_terminal() {
            panic!("job finished before it could be cancelled");
        }
        if event.done > 0 {
            progressed = event.done;
            break;
        }
    }
    assert!(progressed > 0 && progressed < 20_000);
    mgr.cancel(info.id).unwrap();
    let deadline = std::time::Instant::now() + WAIT;
    loop {
        let st = mgr.status(info.id).unwrap();
        if st.state.is_terminal() {
            assert_eq!(st.state, JobState::Cancelled);
            assert!(st.done < st.total, "cancel must interrupt the run");
            break;
        }
        assert!(std::time::Instant::now() < deadline, "cancel never landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(mgr);

    // A new manager (fresh process, same cache) resumes rather than restarts.
    let mgr2 = JobManager::new(ManagerConfig {
        workers: 1,
        span: 64,
        cache_dir: Some(cache.clone()),
        ..ManagerConfig::default()
    })
    .unwrap();
    let resumed = mgr2
        .submit(JobSpec {
            data: data.clone(),
            classlabel: labels.clone(),
            opts: opts.clone(),
            source_path: None,
        })
        .unwrap();
    match resumed.cache {
        CacheDisposition::Resume { from } => assert!(from > 0, "resume cursor must advance"),
        other => panic!("expected Resume, got {other:?}"),
    }
    let served = mgr2.wait_result(resumed.id, Some(WAIT)).unwrap();
    let status = mgr2.status(resumed.id).unwrap();
    assert!(
        status.computed < 20_000,
        "resumption must not recompute the prefix"
    );
    let direct = mt_maxt(&data, &labels, &opts).unwrap();
    assert_eq!(served, direct, "resumed run must be bitwise-identical");
    std::fs::remove_dir_all(&cache).ok();
}

/// A repeated request is served from the cache without computing anything.
#[test]
fn cache_hit_skips_computation() {
    let data = synth_matrix(40, 10, 3);
    let labels = two_class_labels(5, 5);
    let opts = PmaxtOptions::default().permutations(60);
    let cache = tmpdir("hit");

    let cfg = || ManagerConfig {
        workers: 1,
        span: 16,
        cache_dir: Some(cache.clone()),
        ..ManagerConfig::default()
    };
    let mgr = JobManager::new(cfg()).unwrap();
    let first = submit(&mgr, &data, &labels, &opts);
    let first_result = mgr.wait_result(first, Some(WAIT)).unwrap();
    drop(mgr);

    let mgr2 = JobManager::new(cfg()).unwrap();
    let info = mgr2
        .submit(JobSpec {
            data: data.clone(),
            classlabel: labels.clone(),
            opts: opts.clone(),
            source_path: None,
        })
        .unwrap();
    assert_eq!(info.cache, CacheDisposition::Hit);
    assert_eq!(info.state, JobState::Finished, "hits finalize instantly");
    let status = mgr2.status(info.id).unwrap();
    assert_eq!(status.computed, 0, "a hit must not compute permutations");
    let served = mgr2.wait_result(info.id, Some(WAIT)).unwrap();
    assert_eq!(served, first_result);
    let direct = mt_maxt(&data, &labels, &opts).unwrap();
    assert_eq!(served, direct);
    std::fs::remove_dir_all(&cache).ok();
}

/// Extending a cached B = 40 run to B′ = 70 computes only the new
/// permutations and lands bitwise-identical to a fresh B′ = 70 run — for
/// every statistic × side combination.
#[test]
fn extension_is_bitwise_identical_for_all_statistics_and_sides() {
    let tests: [(TestMethod, Vec<u8>); 6] = [
        (TestMethod::T, vec![0, 0, 0, 0, 1, 1, 1, 1]),
        (TestMethod::TEqualVar, vec![0, 0, 0, 0, 1, 1, 1, 1]),
        (TestMethod::Wilcoxon, vec![0, 0, 0, 0, 1, 1, 1, 1]),
        (TestMethod::F, vec![0, 0, 1, 1, 2, 2, 2, 2]),
        (TestMethod::PairT, vec![0, 1, 0, 1, 1, 0, 0, 1]),
        (TestMethod::BlockF, vec![0, 1, 1, 0, 0, 1, 1, 0]),
    ];
    let sides = [Side::Abs, Side::Upper, Side::Lower];
    for (test, labels) in &tests {
        for side in sides {
            let data = synth_matrix(30, labels.len(), 1000 + *test as u64);
            let base = PmaxtOptions::default()
                .test(*test)
                .side(side)
                .permutations(40)
                .seed(5);
            let extended = base.clone().permutations(70);
            let cache = tmpdir(&format!("ext-{}-{}", test.as_str(), side.as_str()));
            let cfg = || ManagerConfig {
                workers: 1,
                span: 16,
                cache_dir: Some(cache.clone()),
                ..ManagerConfig::default()
            };

            let mgr = JobManager::new(cfg()).unwrap();
            let first = submit(&mgr, &data, labels, &base);
            mgr.wait_result(first, Some(WAIT)).unwrap();
            drop(mgr);

            let mgr2 = JobManager::new(cfg()).unwrap();
            let info = mgr2
                .submit(JobSpec {
                    data: data.clone(),
                    classlabel: labels.clone(),
                    opts: extended.clone(),
                    source_path: None,
                })
                .unwrap();
            assert_eq!(
                info.cache,
                CacheDisposition::Extend { from: 40 },
                "{}/{}: expected an extension",
                test.as_str(),
                side.as_str()
            );
            let served = mgr2.wait_result(info.id, Some(WAIT)).unwrap();
            let status = mgr2.status(info.id).unwrap();
            assert_eq!(
                status.computed,
                30,
                "{}/{}: extension must compute only B' - B permutations",
                test.as_str(),
                side.as_str()
            );
            let fresh = mt_maxt(&data, labels, &extended).unwrap();
            assert_eq!(
                served,
                fresh,
                "{}/{}: extension must be bitwise-identical to a fresh run",
                test.as_str(),
                side.as_str()
            );
            std::fs::remove_dir_all(&cache).ok();
        }
    }
}

/// Progress events are monotone, carry an ETA after the first span, and end
/// with exactly one terminal event.
#[test]
fn progress_events_are_monotone_with_eta() {
    let data = synth_matrix(80, 12, 21);
    let labels = two_class_labels(6, 6);
    let opts = PmaxtOptions::default().permutations(400).threads(1);
    let mgr = JobManager::new(ManagerConfig {
        workers: 1,
        span: 50,
        cache_dir: None,
        ..ManagerConfig::default()
    })
    .unwrap();
    let info = mgr
        .submit(JobSpec {
            data,
            classlabel: labels,
            opts,
            source_path: None,
        })
        .unwrap();
    let rx = mgr.subscribe(info.id).unwrap();
    let mut last_done = 0u64;
    let mut saw_eta = false;
    let mut terminal = 0;
    let deadline = std::time::Instant::now() + WAIT;
    while terminal == 0 {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        let event = match rx.recv_timeout(remaining) {
            Ok(e) => e,
            Err(mpsc::RecvTimeoutError::Timeout) => panic!("no terminal event"),
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        assert!(event.done >= last_done, "progress must be monotone");
        last_done = event.done;
        if event.done > 0 && !event.state.is_terminal() {
            saw_eta |= event.eta_secs.is_some();
        }
        if event.state.is_terminal() {
            assert_eq!(event.state, JobState::Finished);
            assert_eq!(event.done, 400);
            terminal += 1;
        }
    }
    assert_eq!(terminal, 1);
    assert!(saw_eta, "mid-run events should carry an ETA");
}
