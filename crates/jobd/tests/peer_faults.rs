//! Peer-fault soak for cross-daemon sharding: with the peer fault classes
//! armed at a fixed seed — dispatcher-side drops, stalls and torn request
//! frames, plus response truncation injected by the peers themselves — every
//! sharded job still completes bitwise-identical to the serial engine.
//! Reassignment (dead peers) and at-most-once merging (duplicate spans from
//! retried requests) are what make that hold; this soak is the adversarial
//! check that they do.

use std::sync::Arc;
use std::time::Duration;

use sprint_core::matrix::Matrix;
use sprint_core::maxt::serial::mt_maxt;
use sprint_core::options::{PmaxtOptions, TestMethod};
use sprint_jobd::{FaultKind, Faults, JobManager, JobSpec, ManagerConfig, Server, ServerConfig};

const WAIT: Duration = Duration::from_secs(120);

/// Honor a CI-provided `SPRINT_FAULTS` spec; otherwise arm the default so
/// the soak always runs with faults on.
fn soak_faults(default_spec: &str) -> Faults {
    let seed = std::env::var("SPRINT_FAULTS_SEED")
        .ok()
        .and_then(|s| s.parse().ok());
    match std::env::var("SPRINT_FAULTS") {
        Ok(spec) => Faults::parse_spec(&spec, seed).expect("SPRINT_FAULTS must parse"),
        Err(_) => Faults::parse_spec(default_spec, seed).unwrap(),
    }
}

fn synth_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut v = Vec::with_capacity(rows * cols);
    for g in 0..rows {
        let shift = if g % 5 == 0 { 1.2 } else { 0.0 };
        for c in 0..cols {
            let bump = if c >= cols / 2 { shift } else { 0.0 };
            v.push(next() * 4.0 - 2.0 + bump);
        }
    }
    Matrix::from_vec(rows, cols, v).unwrap()
}

/// A peer daemon whose *responses* are subject to truncation and stalls:
/// the coordinator's span dispatch has to retry through real wire damage.
fn spawn_damaged_peer(faults: Faults) -> String {
    let manager = JobManager::new(ManagerConfig {
        workers: 1,
        span: 8,
        cache_dir: None,
        ..ManagerConfig::default()
    })
    .unwrap();
    let server = Server::bind_with(
        "127.0.0.1:0",
        manager,
        ServerConfig {
            faults,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_addr_string();
    std::thread::spawn(move || server.run());
    addr
}

/// Six statistics sharded across three daemons while every peer fault class
/// fires: results stay bitwise-identical to serial and the coordinator
/// survives every roster death.
#[test]
fn peer_fault_soak_all_statistics_bitwise_identical() {
    // Coordinator-side classes: injected peer drops (dispatcher declared
    // dead, spans reassigned), stalls before dispatch, torn request frames.
    let faults = soak_faults("peer_drop:0.04,peer_stall:0.03,peer_torn:0.06,seed:1337");
    // Peer-side classes: response truncation and slow responses, so the
    // dispatch retry path sees genuine mid-frame connection drops.
    let peer_faults =
        Faults::parse_spec("frame_truncate:0.05,slow_peer:0.03,seed:99", None).unwrap();

    let dir = std::env::temp_dir().join(format!("jobd-peer-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let peer_a = spawn_damaged_peer(peer_faults.clone());
    let peer_b = spawn_damaged_peer(peer_faults);
    let mgr = Arc::new(
        JobManager::new(ManagerConfig {
            workers: 1,
            span: 8,
            cache_dir: None,
            peers: vec![peer_a, peer_b],
            faults: faults.clone(),
            ..ManagerConfig::default()
        })
        .unwrap(),
    );

    let tests: [(TestMethod, Vec<u8>); 6] = [
        (TestMethod::T, vec![0, 0, 0, 0, 1, 1, 1, 1]),
        (TestMethod::TEqualVar, vec![0, 0, 0, 0, 1, 1, 1, 1]),
        (TestMethod::Wilcoxon, vec![0, 0, 0, 0, 1, 1, 1, 1]),
        (TestMethod::F, vec![0, 0, 1, 1, 2, 2, 2, 2]),
        (TestMethod::PairT, vec![0, 1, 0, 1, 1, 0, 0, 1]),
        (TestMethod::BlockF, vec![0, 1, 1, 0, 0, 1, 1, 0]),
    ];
    for round in 0..3u64 {
        for (test, labels) in &tests {
            let data = synth_matrix(30, labels.len(), 7000 + round * 100 + *test as u64);
            let opts = PmaxtOptions::default()
                .test(*test)
                .permutations(200)
                .seed(23 + round);
            let dataset = dir.join(format!("data-{round}-{test:?}.tsv"));
            microarray::io::write_dataset(&dataset, &data, labels).unwrap();
            let info = mgr
                .submit(JobSpec {
                    data: data.clone(),
                    classlabel: labels.clone(),
                    opts: opts.clone(),
                    source_path: Some(dataset),
                })
                .expect("submit must not fail");
            let served = mgr
                .wait_result(info.id, Some(WAIT))
                .expect("peer faults must never fail a sharded job");
            let serial = mt_maxt(&data, labels, &opts).unwrap();
            assert_eq!(
                served, serial,
                "{test:?} round {round}: sharded result under peer faults \
                 must be bitwise-identical to serial"
            );
            let st = mgr.status(info.id).unwrap();
            let comm = st.comm.expect("sharded job exposes comm counters");
            assert_eq!(
                comm.spans_total,
                comm.spans_local + comm.spans_remote,
                "{test:?} round {round}: every span merged exactly once"
            );
        }
    }

    // The fixed seed makes the draw sequence deterministic enough that each
    // coordinator-side class fires at least once over 18 sharded jobs.
    for kind in [
        FaultKind::PeerDrop,
        FaultKind::PeerStall,
        FaultKind::PeerTorn,
    ] {
        assert!(
            faults.fired(kind) > 0,
            "{kind:?} never fired — soak is not exercising the peer classes"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
