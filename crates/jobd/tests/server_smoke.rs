//! Full-stack smoke test: a real server on a Unix socket in a temp dir,
//! driven through the wire protocol — submit → result → extend → cancel →
//! shutdown.

use std::time::Duration;

use microarray::io::write_dataset;
use sprint_core::matrix::Matrix;
use sprint_core::maxt::serial::mt_maxt;
use sprint_core::options::PmaxtOptions;
use sprint_jobd::client::{expect_ok, Client};
use sprint_jobd::json::Json;
use sprint_jobd::{protocol, JobManager, ManagerConfig, Server};

fn synth(rows: usize, cols: usize) -> Matrix {
    let mut v = Vec::with_capacity(rows * cols);
    let mut x = 88172645463325252u64;
    for _ in 0..rows * cols {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.push((x >> 11) as f64 / (1u64 << 53) as f64 * 6.0 - 3.0);
    }
    Matrix::from_vec(rows, cols, v).unwrap()
}

fn ok(resp: Json) -> Json {
    expect_ok(resp).expect("server error response")
}

fn u(resp: &Json, key: &str) -> u64 {
    resp.get(key).and_then(Json::as_u64).unwrap_or_else(|| {
        panic!("missing field {key} in {}", resp.to_json());
    })
}

fn s(resp: &Json, key: &str) -> String {
    resp.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing field {key} in {}", resp.to_json()))
        .to_string()
}

#[test]
fn server_smoke_submit_result_extend_cancel_shutdown() {
    let dir = std::env::temp_dir().join(format!("jobd-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("jobd.sock");
    let cache = dir.join("cache");
    let dataset = dir.join("data.tsv");

    let data = synth(50, 10);
    let labels = vec![0u8, 0, 0, 0, 0, 1, 1, 1, 1, 1];
    write_dataset(&dataset, &data, &labels).unwrap();

    let manager = JobManager::new(ManagerConfig {
        workers: 2,
        span: 16,
        cache_dir: Some(cache.clone()),
        ..ManagerConfig::default()
    })
    .unwrap();
    let addr = format!("unix:{}", sock.display());
    let server = Server::bind(&addr, manager).unwrap();
    let server_addr = server.local_addr().to_addr_string();
    let handle = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&server_addr).unwrap();
    ok(client.request(&protocol::job_request("ping", 0)).unwrap());

    // Submit B = 50 and read the result back over the wire.
    let opts = PmaxtOptions::default().permutations(50);
    let resp = ok(client
        .request(&protocol::submit_request(dataset.to_str().unwrap(), &opts))
        .unwrap());
    let job = u(&resp, "job");
    assert_eq!(s(&resp, "cache"), "miss");
    let resp = ok(client
        .request(&protocol::result_request(job, true))
        .unwrap());
    let served = protocol::result_from_json(&resp).unwrap();
    let direct = mt_maxt(&data, &labels, &opts).unwrap();
    assert_eq!(served, direct, "wire round-trip must preserve the result");

    // Extend to B′ = 90: the server reuses the cached 50 and computes 40.
    let extended = PmaxtOptions::default().permutations(90);
    let resp = ok(client
        .request(&protocol::submit_request(
            dataset.to_str().unwrap(),
            &extended,
        ))
        .unwrap());
    let ext_job = u(&resp, "job");
    assert_eq!(s(&resp, "cache"), "extend");
    assert_eq!(u(&resp, "resumed_from"), 50);
    let resp = ok(client
        .request(&protocol::result_request(ext_job, true))
        .unwrap());
    let served_ext = protocol::result_from_json(&resp).unwrap();
    let fresh = mt_maxt(&data, &labels, &extended).unwrap();
    assert_eq!(served_ext, fresh, "extension must match a fresh B' run");

    // Cancel a long-running job.
    let long = PmaxtOptions::default()
        .permutations(500_000)
        .seed(99)
        .threads(1);
    let resp = ok(client
        .request(&protocol::submit_request(dataset.to_str().unwrap(), &long))
        .unwrap());
    let long_job = u(&resp, "job");
    let resp = ok(client
        .request(&protocol::job_request("cancel", long_job))
        .unwrap());
    assert_eq!(u(&resp, "job"), long_job);
    // Cancellation is cooperative; poll status until terminal.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let resp = ok(client
            .request(&protocol::job_request("status", long_job))
            .unwrap());
        let state = s(&resp, "state");
        if state == "cancelled" {
            break;
        }
        assert_ne!(state, "finished", "cancel should land before completion");
        assert!(std::time::Instant::now() < deadline, "cancel never landed");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Unknown command and bad job ids produce typed errors, not hangups.
    let err = expect_ok(
        client
            .request(&protocol::job_request("frobnicate", 1))
            .unwrap(),
    );
    assert_eq!(err.unwrap_err().1, "usage");
    let err = expect_ok(
        client
            .request(&protocol::job_request("status", 424242))
            .unwrap(),
    );
    assert_eq!(err.unwrap_err().1, "usage");

    // Shutdown stops the accept loop and the worker pool.
    ok(client
        .request(&protocol::job_request("shutdown", 0))
        .unwrap());
    handle.join().unwrap().unwrap();
    assert!(!sock.exists(), "socket file should be removed on shutdown");
    std::fs::remove_dir_all(&dir).ok();
}
