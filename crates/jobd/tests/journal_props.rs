//! Property-based tests over the journal's frame encoding and replay fold:
//! round-trip fidelity, clean-prefix recovery under arbitrary truncation,
//! no fabricated records under byte corruption, and compaction equivalence.

use proptest::prelude::*;

use sprint_core::options::PmaxtOptions;
use sprint_jobd::journal;
use sprint_jobd::{JournalRecord, RecordKind};

fn kind_from(idx: u64) -> RecordKind {
    [
        RecordKind::Accepted,
        RecordKind::Started,
        RecordKind::Finished,
        RecordKind::Cancelled,
        RecordKind::Failed,
    ][idx as usize % 5]
}

/// Strategy: one journal record of any kind. Accept records carry the
/// optional payloads (source path, options) recovery depends on.
fn record_strategy() -> impl Strategy<Value = JournalRecord> {
    (
        0u64..5,
        0u64..0xffff,
        1u64..1_000_000,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(k, key, b, exact, with_src)| {
            let kind = kind_from(k);
            let mode = if exact { "exact" } else { "adaptive" };
            let mut rec = JournalRecord::transition(kind, &format!("{key:032x}"), b, mode);
            if kind == RecordKind::Accepted {
                if with_src {
                    rec.source = Some(format!("/data/{key:x}.tsv"));
                }
                rec.opts = Some(PmaxtOptions {
                    b,
                    seed: key,
                    ..PmaxtOptions::default()
                });
            }
            if kind == RecordKind::Failed {
                rec.error = Some(format!("engine error {key}"));
            }
            rec
        })
}

/// Strategy: `min..max` records (the vendored proptest's `collection::vec`
/// takes a fixed length, so the length is drawn first).
fn records_strategy(min: usize, max: usize) -> impl Strategy<Value = Vec<JournalRecord>> {
    (min..max).prop_flat_map(|n| proptest::collection::vec(record_strategy(), n))
}

fn encode_all(recs: &[JournalRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    for rec in recs {
        buf.extend_from_slice(&journal::encode_record(rec));
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encoding_round_trips(recs in records_strategy(0, 20)) {
        let buf = encode_all(&recs);
        let out = journal::decode_buffer(&buf);
        prop_assert_eq!(&out.records, &recs);
        prop_assert_eq!(out.valid_len, buf.len());
        prop_assert_eq!(out.skipped, 0);
        prop_assert_eq!(out.resyncs, 0);
    }

    #[test]
    fn truncation_yields_a_clean_prefix(
        recs in records_strategy(1, 16),
        cut_frac in 0.0f64..1.0,
    ) {
        let buf = encode_all(&recs);
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        let out = journal::decode_buffer(&buf[..cut]);
        // A cut anywhere loses at most the torn tail record: what survives
        // is an exact prefix of the original stream, never a phantom.
        prop_assert!(out.records.len() <= recs.len());
        for (got, want) in out.records.iter().zip(&recs) {
            prop_assert_eq!(got, want);
        }
        // valid_len marks the last intact frame boundary — the truncation
        // point startup recovery uses. Decoding up to it is damage-free.
        let again = journal::decode_buffer(&buf[..out.valid_len]);
        prop_assert_eq!(&again.records, &out.records);
        prop_assert_eq!(again.valid_len, out.valid_len);
        prop_assert_eq!(again.skipped, 0);
    }

    #[test]
    fn corruption_never_fabricates_records(
        recs in records_strategy(1, 12),
        pos_frac in 0.0f64..1.0,
        flip in 1u64..256,
    ) {
        let mut buf = encode_all(&recs);
        let pos = (((buf.len() - 1) as f64) * pos_frac) as usize;
        buf[pos] ^= flip as u8;
        let out = journal::decode_buffer(&buf);
        // The checksum rejects the damaged frame; resync may skip it but
        // every surviving record is one that was actually written.
        prop_assert!(out.records.len() <= recs.len());
        for got in &out.records {
            prop_assert!(recs.contains(got), "decoded a record never written");
        }
    }

    #[test]
    fn pending_fold_matches_compacted_replay(
        recs in records_strategy(0, 24)
    ) {
        let pending = journal::fold_pending(&recs);
        for rec in &pending {
            prop_assert_eq!(rec.kind, RecordKind::Accepted);
        }
        // Compaction rewrites the journal to exactly the live accepts; a
        // replay of that compacted stream must fold to the same pending
        // set, or a crash straddling compaction would change recovery.
        let replayed = journal::decode_buffer(&encode_all(&pending));
        prop_assert_eq!(journal::fold_pending(&replayed.records), pending);
    }
}
