//! Cross-daemon sharding, end to end over real TCP: a coordinator daemon
//! splits one job's permutation range across itself and peer daemons, each
//! peer recomputes its spans from its own copy of the dataset, and the
//! merged result is bitwise-identical to a serial `mt_maxt` call — for every
//! statistic, and regardless of peers dying mid-run (their spans are
//! reassigned to survivors).

use std::time::Duration;

use microarray::design::LabelDesign;
use microarray::io::write_dataset;
use microarray::prelude::*;
use sprint_core::boot::boot_run;
use sprint_core::maxt::serial::mt_maxt;
use sprint_core::options::{PmaxtOptions, TestMethod, Workload};
use sprint_jobd::client::{expect_ok, Client};
use sprint_jobd::json::Json;
use sprint_jobd::{protocol, JobManager, ManagerConfig, Server};

fn ok(resp: Json) -> Json {
    expect_ok(resp).expect("server error response")
}

fn u(resp: &Json, key: &str) -> u64 {
    resp.get(key).and_then(Json::as_u64).unwrap_or_else(|| {
        panic!("missing field {key} in {}", resp.to_json());
    })
}

fn dataset_for(method: TestMethod, genes: usize, seed: u64) -> SyntheticDataset {
    let design = match method {
        TestMethod::F => LabelDesign::MultiClass {
            counts: vec![4, 3, 5],
        },
        TestMethod::PairT => LabelDesign::Paired { pairs: 6 },
        TestMethod::BlockF => LabelDesign::Block {
            blocks: 4,
            treatments: 3,
        },
        _ => LabelDesign::TwoClass { n0: 6, n1: 6 },
    };
    SynthConfig::new(genes, design)
        .diff_fraction(0.1)
        .effect_size(1.8)
        .seed(seed)
        .generate()
}

/// Start a plain (peer) daemon on an ephemeral TCP port; returns its
/// `host:port` address.
fn spawn_peer(span: u64) -> String {
    let manager = JobManager::new(ManagerConfig {
        workers: 1,
        span,
        cache_dir: None,
        ..ManagerConfig::default()
    })
    .unwrap();
    let server = Server::bind("127.0.0.1:0", manager).unwrap();
    let addr = server.local_addr().to_addr_string();
    std::thread::spawn(move || server.run());
    addr
}

/// Start a coordinator daemon with the given peer roster; returns its
/// address.
fn spawn_coordinator(span: u64, peers: Vec<String>, cache: Option<std::path::PathBuf>) -> String {
    let manager = JobManager::new(ManagerConfig {
        workers: 1,
        span,
        cache_dir: cache,
        peers,
        ..ManagerConfig::default()
    })
    .unwrap();
    let server = Server::bind("127.0.0.1:0", manager).unwrap();
    let addr = server.local_addr().to_addr_string();
    std::thread::spawn(move || server.run());
    addr
}

fn shutdown(addr: &str) {
    if let Ok(mut c) = Client::connect(addr) {
        let _ = c.request(&Json::obj(vec![("cmd", Json::str("shutdown"))]));
    }
}

/// Three daemons over localhost TCP: every statistic's sharded result is
/// bitwise-identical to the serial engine, and the coordinator's comm
/// counters show real remote execution.
#[test]
fn three_daemons_all_statistics_bitwise_identical() {
    let dir = std::env::temp_dir().join(format!("jobd-cluster-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let peer_a = spawn_peer(16);
    let peer_b = spawn_peer(16);
    let coord = spawn_coordinator(16, vec![peer_a.clone(), peer_b.clone()], None);

    for method in TestMethod::ALL {
        let ds = dataset_for(method, 40, 4_000 + method as u64);
        let dataset = dir.join(format!("data-{method:?}.tsv"));
        write_dataset(&dataset, &ds.matrix, &ds.labels).unwrap();

        let opts = PmaxtOptions::default()
            .test(method)
            .permutations(400)
            .seed(11);
        let mut client = Client::connect(&coord).unwrap();
        let resp = ok(client
            .request(&protocol::submit_request(dataset.to_str().unwrap(), &opts))
            .unwrap());
        let job = u(&resp, "job");
        let resp = ok(client
            .request(&protocol::result_request(job, true))
            .unwrap());
        let served = protocol::result_from_json(&resp).unwrap();
        let serial = mt_maxt(&ds.matrix, &ds.labels, &opts).unwrap();
        assert_eq!(
            served, serial,
            "{method:?}: sharded result must be bitwise-identical to serial"
        );

        let st = ok(client
            .request(&protocol::job_request("status", job))
            .unwrap());
        let comm = st
            .get("comm")
            .unwrap_or_else(|| panic!("{method:?}: sharded job must expose comm counters"));
        let c = |k: &str| comm.get(k).and_then(Json::as_u64).unwrap_or(0);
        assert_eq!(c("peers"), 3, "{method:?}: roster is self + two peers");
        assert!(
            c("spans_remote") >= 1,
            "{method:?}: at least one span must run on a peer"
        );
        assert!(
            c("spans_local") >= 1,
            "{method:?}: the identity chunk runs locally"
        );
        assert_eq!(
            c("spans_total"),
            c("spans_local") + c("spans_remote"),
            "{method:?}: every span accounted exactly once"
        );
        assert!(c("bytes_sent") > 0 && c("bytes_received") > 0);
    }

    shutdown(&coord);
    shutdown(&peer_a);
    shutdown(&peer_b);
    std::fs::remove_dir_all(&dir).ok();
}

/// A dead roster entry (nothing listening) must not change the answer: its
/// spans are reassigned to the survivors and the merged result stays
/// bitwise-identical to serial.
#[test]
fn dead_peer_spans_reassigned_bitwise_identical() {
    let dir = std::env::temp_dir().join(format!("jobd-cluster-dead-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Reserve a port, then free it: connections to it are refused.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let live_peer = spawn_peer(16);
    let coord = spawn_coordinator(16, vec![dead_addr, live_peer.clone()], None);

    let ds = dataset_for(TestMethod::T, 40, 77);
    let dataset = dir.join("data.tsv");
    write_dataset(&dataset, &ds.matrix, &ds.labels).unwrap();

    let opts = PmaxtOptions::default().permutations(600).seed(3);
    let mut client = Client::connect(&coord).unwrap();
    let resp = ok(client
        .request(&protocol::submit_request(dataset.to_str().unwrap(), &opts))
        .unwrap());
    let job = u(&resp, "job");
    let resp = ok(client
        .request(&protocol::result_request(job, true))
        .unwrap());
    let served = protocol::result_from_json(&resp).unwrap();
    let serial = mt_maxt(&ds.matrix, &ds.labels, &opts).unwrap();
    assert_eq!(served, serial, "peer death must not change the result");

    let st = ok(client
        .request(&protocol::job_request("status", job))
        .unwrap());
    let comm = st.get("comm").expect("comm counters");
    let c = |k: &str| comm.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(c("peers_failed"), 1, "exactly one roster entry is dead");
    assert!(
        c("spans_reassigned") >= 1,
        "the dead peer's spans must be reassigned"
    );
    assert!(
        c("retries") >= 1,
        "the dead peer was retried before being declared dead"
    );

    shutdown(&coord);
    shutdown(&live_peer);
    std::fs::remove_dir_all(&dir).ok();
}

/// Bootstrap jobs shard by gene bands instead of permutation spans: two peer
/// daemons each recompute their band's replicate draws from their own copy of
/// the dataset, and the merged interval estimates are bitwise-identical to a
/// serial `boot_run` — every theta, standard error, and CI bound.
#[test]
fn sharded_bootstrap_bitwise_identical_to_serial() {
    let dir = std::env::temp_dir().join(format!("jobd-cluster-boot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let peer_a = spawn_peer(16);
    let peer_b = spawn_peer(16);
    let coord = spawn_coordinator(16, vec![peer_a.clone(), peer_b.clone()], None);

    let ds = dataset_for(TestMethod::T, 40, 909);
    let dataset = dir.join("data.tsv");
    write_dataset(&dataset, &ds.matrix, &ds.labels).unwrap();

    let opts = PmaxtOptions::default()
        .workload(Workload::Bootstrap)
        .permutations(500)
        .seed(21);
    let mut client = Client::connect(&coord).unwrap();
    let resp = ok(client
        .request(&protocol::submit_request(dataset.to_str().unwrap(), &opts))
        .unwrap());
    let job = u(&resp, "job");
    let resp = ok(client
        .request(&protocol::result_request(job, true))
        .unwrap());
    assert_eq!(
        resp.get("workload").and_then(Json::as_str),
        Some("bootstrap")
    );
    let served = protocol::boot_from_json(&resp).unwrap();
    let serial = boot_run(&ds.matrix, &ds.labels, &opts).unwrap();
    assert_eq!(
        served, serial,
        "sharded bootstrap must be bitwise-identical to serial"
    );
    assert_eq!(served.replicates, 499);

    let st = ok(client
        .request(&protocol::job_request("status", job))
        .unwrap());
    let comm = st
        .get("comm")
        .expect("sharded bootstrap job must expose comm counters");
    let c = |k: &str| comm.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(c("peers"), 3, "roster is self + two peers");
    assert!(
        c("spans_remote") >= 2,
        "each peer computes one gene band remotely"
    );
    assert!(c("spans_local") >= 1, "the coordinator keeps its own band");
    assert!(c("bytes_sent") > 0 && c("bytes_received") > 0);

    shutdown(&coord);
    shutdown(&peer_a);
    shutdown(&peer_b);
    std::fs::remove_dir_all(&dir).ok();
}

/// A dead roster entry during a sharded bootstrap run: its gene band is
/// recomputed locally and the merged estimates stay bitwise-identical.
#[test]
fn sharded_bootstrap_survives_dead_peer() {
    let dir = std::env::temp_dir().join(format!("jobd-cluster-bootdead-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let live_peer = spawn_peer(16);
    let coord = spawn_coordinator(16, vec![dead_addr, live_peer.clone()], None);

    let ds = dataset_for(TestMethod::T, 31, 131);
    let dataset = dir.join("data.tsv");
    write_dataset(&dataset, &ds.matrix, &ds.labels).unwrap();

    let opts = PmaxtOptions::default()
        .workload(Workload::Bootstrap)
        .permutations(300)
        .seed(8);
    let mut client = Client::connect(&coord).unwrap();
    let resp = ok(client
        .request(&protocol::submit_request(dataset.to_str().unwrap(), &opts))
        .unwrap());
    let job = u(&resp, "job");
    let resp = ok(client
        .request(&protocol::result_request(job, true))
        .unwrap());
    let served = protocol::boot_from_json(&resp).unwrap();
    let serial = boot_run(&ds.matrix, &ds.labels, &opts).unwrap();
    assert_eq!(served, serial, "peer death must not change the estimates");

    let st = ok(client
        .request(&protocol::job_request("status", job))
        .unwrap());
    let comm = st.get("comm").expect("comm counters");
    let c = |k: &str| comm.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(c("peers_failed"), 1, "exactly one roster entry is dead");
    assert!(
        c("spans_reassigned") >= 1,
        "the dead peer's band was recomputed locally"
    );

    shutdown(&coord);
    shutdown(&live_peer);
    std::fs::remove_dir_all(&dir).ok();
}

/// Sharded runs checkpoint in frontier order, so a completed sharded job is
/// a cache hit for an identical resubmission — same contract as local runs.
#[test]
fn sharded_run_checkpoints_and_caches() {
    let dir = std::env::temp_dir().join(format!("jobd-cluster-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let peer = spawn_peer(16);
    let coord = spawn_coordinator(16, vec![peer.clone()], Some(dir.join("cache")));

    let ds = dataset_for(TestMethod::T, 30, 5);
    let dataset = dir.join("data.tsv");
    write_dataset(&dataset, &ds.matrix, &ds.labels).unwrap();

    let opts = PmaxtOptions::default().permutations(300).seed(9);
    let mut client = Client::connect(&coord).unwrap();
    let resp = ok(client
        .request(&protocol::submit_request(dataset.to_str().unwrap(), &opts))
        .unwrap());
    let job = u(&resp, "job");
    let first = ok(client
        .request(&protocol::result_request(job, true))
        .unwrap());
    let first = protocol::result_from_json(&first).unwrap();

    // Restart the coordinator over the same cache directory: an identical
    // resubmission must finalize from the sharded run's checkpoint without
    // recomputing (dedup can't explain it — it's a fresh daemon).
    shutdown(&coord);
    std::thread::sleep(Duration::from_millis(50));
    let coord = spawn_coordinator(16, vec![peer.clone()], Some(dir.join("cache")));
    let mut client = Client::connect(&coord).unwrap();
    let resp = ok(client
        .request(&protocol::submit_request(dataset.to_str().unwrap(), &opts))
        .unwrap());
    let cache = resp
        .get("cache")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert_eq!(cache, "hit", "a finished sharded run is a cache hit");
    let again = u(&resp, "job");
    let second = ok(client
        .request(&protocol::result_request(again, true))
        .unwrap());
    let second = protocol::result_from_json(&second).unwrap();
    assert_eq!(first, second);

    shutdown(&coord);
    shutdown(&peer);
    std::fs::remove_dir_all(&dir).ok();
}
