//! Fault-injection soak: with every fault class armed at a few percent, the
//! daemon never dies, every job reaches a terminal state, and retried or
//! resumed jobs land bitwise-identical to a fault-free serial run — for all
//! six statistics.
//!
//! The CI fault leg runs exactly this binary under a fixed `SPRINT_FAULTS`
//! spec; when the variable is unset the tests arm an equivalent programmatic
//! spec, so the soak is exercised either way.

use std::time::Duration;

use sprint_core::adaptive::{adaptive_maxt, AdaptiveConfig};
use sprint_core::matrix::Matrix;
use sprint_core::maxt::serial::mt_maxt;
use sprint_core::options::{Mode, PmaxtOptions, TestMethod};
use sprint_jobd::client::{expect_ok, request_retried, RetryPolicy};
use sprint_jobd::json::Json;
use sprint_jobd::{
    protocol, FaultKind, Faults, JobError, JobManager, JobSpec, ManagerConfig, Server, ServerConfig,
};

const WAIT: Duration = Duration::from_secs(120);

/// The CI adaptive leg re-runs this whole soak under `SPRINT_MODE=adaptive`;
/// the daemon resolves the mode at submission time, so every job below
/// silently turns adaptive there. Resolve it the same way and assert the
/// contract each mode actually makes: bitwise identity against the serial
/// reference for exact jobs, the deterministic p-value envelope for adaptive
/// ones.
fn adaptive_mode() -> bool {
    Mode::Exact.env_override() == Mode::Adaptive
}

/// Honor the CI-provided `SPRINT_FAULTS` spec when present; otherwise arm
/// the given default so the soak always runs with faults on.
fn soak_faults(default_spec: &str) -> Faults {
    let seed = std::env::var("SPRINT_FAULTS_SEED")
        .ok()
        .and_then(|s| s.parse().ok());
    match std::env::var("SPRINT_FAULTS") {
        Ok(spec) => Faults::parse_spec(&spec, seed).expect("SPRINT_FAULTS must parse"),
        Err(_) => Faults::parse_spec(default_spec, seed).unwrap(),
    }
}

fn synth_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut v = Vec::with_capacity(rows * cols);
    for g in 0..rows {
        let shift = if g % 5 == 0 { 1.2 } else { 0.0 };
        for c in 0..cols {
            let bump = if c >= cols / 2 { shift } else { 0.0 };
            v.push(next() * 4.0 - 2.0 + bump);
        }
    }
    Matrix::from_vec(rows, cols, v).unwrap()
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("jobd-soak-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Submit and wait; on an injected failure, resubmit (idempotent by content
/// digest — the dedup map falls through for failed jobs) until the job
/// finishes. Returns the result, how many attempts it took, and the winning
/// job's id (for mode-specific report queries).
fn run_to_completion(
    mgr: &JobManager,
    spec: &JobSpec,
) -> (sprint_core::maxt::MaxTResult, u32, u64) {
    for attempt in 1..=200u32 {
        let info = mgr.submit(spec.clone()).expect("submit must not fail");
        match mgr.wait_result(info.id, Some(WAIT)) {
            Ok(r) => return (r, attempt, info.id),
            Err(JobError::Failed(reason)) => {
                assert!(
                    reason.contains("injected") || reason.contains("panicked"),
                    "only injected faults may fail a soak job, got: {reason}"
                );
            }
            Err(other) => panic!("unexpected terminal error: {other}"),
        }
    }
    panic!("job failed 200 consecutive times — fault rate runaway?");
}

/// Multi-job soak across all six statistics with worker panics, span I/O
/// errors and cache corruption armed. Every job must settle, the manager
/// must survive, and every final table must be bitwise-identical to the
/// serial reference.
#[test]
fn soak_all_statistics_survive_faults_bitwise_identical() {
    let faults = soak_faults("worker_panic:0.06,span_io:0.06,cache_corrupt:0.06,seed:42");
    let cache = tmpdir("mgr");
    let mgr = JobManager::new(ManagerConfig {
        workers: 3,
        span: 8,
        cache_dir: Some(cache.clone()),
        faults: faults.clone(),
        ..ManagerConfig::default()
    })
    .unwrap();

    let tests: [(TestMethod, Vec<u8>); 6] = [
        (TestMethod::T, vec![0, 0, 0, 0, 1, 1, 1, 1]),
        (TestMethod::TEqualVar, vec![0, 0, 0, 0, 1, 1, 1, 1]),
        (TestMethod::Wilcoxon, vec![0, 0, 0, 0, 1, 1, 1, 1]),
        (TestMethod::F, vec![0, 0, 1, 1, 2, 2, 2, 2]),
        (TestMethod::PairT, vec![0, 1, 0, 1, 1, 0, 0, 1]),
        (TestMethod::BlockF, vec![0, 1, 1, 0, 0, 1, 1, 0]),
    ];
    // An adaptive job draws the worker fault classes once per attempt (the
    // runner is one dedicated thread, not a span loop), so a single pass
    // over the six statistics gives the injector too few draws to prove
    // anything. Re-run the grid over distinct seeds to densify the draws.
    let rounds: u64 = if adaptive_mode() { 8 } else { 1 };
    let mut retried_any = false;
    for round in 0..rounds {
        for (test, labels) in &tests {
            let data = synth_matrix(40, labels.len(), 9000 + *test as u64);
            let opts = PmaxtOptions::default()
                .test(*test)
                .permutations(240)
                .seed(17 + round)
                .threads(2)
                .batch(4);
            let spec = JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: opts.clone(),
                source_path: None,
            };
            let (served, attempts, _) = run_to_completion(&mgr, &spec);
            retried_any |= attempts > 1;
            if adaptive_mode() {
                // Failed attempts never reach the success-time cache store,
                // so the winning attempt always starts from a cold cache and
                // its result is bitwise-reproducible in process.
                let direct =
                    adaptive_maxt(&data, labels, &opts, &AdaptiveConfig::default()).unwrap();
                assert_eq!(
                    served,
                    direct.result,
                    "{}: faulted adaptive run must match a fresh in-process run",
                    test.as_str()
                );
            } else {
                let direct = mt_maxt(&data, labels, &opts).unwrap();
                assert_eq!(
                    served,
                    direct,
                    "{}: faulted run must stay bitwise-identical",
                    test.as_str()
                );
            }
        }
    }

    // The soak only proves something if the faults actually fired. The
    // cache-corrupt class is only demanded in exact mode: exact spans store
    // a checkpoint per span, while an adaptive run stores its watermark once
    // per finished job — too few draws for a guaranteed fire.
    let mut demanded = vec![FaultKind::WorkerPanic, FaultKind::SpanIo];
    if !adaptive_mode() {
        demanded.push(FaultKind::CacheCorrupt);
    }
    for kind in demanded {
        assert!(
            faults.fired(kind) > 0,
            "{} armed but never fired — soak too small for the spec {:?}",
            kind.as_str(),
            faults.report()
        );
    }
    assert!(
        retried_any,
        "no job ever needed a retry — injection path untested"
    );
    // Every job is terminal and the manager still answers.
    for st in mgr.list() {
        assert!(st.state.is_terminal(), "job {} left live", st.id);
    }
    std::fs::remove_dir_all(&cache).ok();
}

/// Kill-and-resume under faults: drop the manager mid-run (the process-death
/// analogue), then a fresh manager over the same cache resumes from the last
/// checkpoint and still matches the serial reference exactly.
#[test]
fn kill_and_resume_under_faults_is_bitwise_identical() {
    let faults = soak_faults("worker_panic:0.04,span_io:0.04,cache_corrupt:0.04,seed:1234");
    let cache = tmpdir("resume");
    let data = synth_matrix(120, 16, 77);
    let labels: Vec<u8> = [vec![0u8; 8], vec![1u8; 8]].concat();
    let opts = PmaxtOptions::default()
        .permutations(30_000)
        .threads(1)
        .seed(3);
    let spec = JobSpec {
        data: data.clone(),
        classlabel: labels.clone(),
        opts: opts.clone(),
        source_path: None,
    };
    let mk = |faults: Faults| {
        JobManager::new(ManagerConfig {
            workers: 1,
            span: 64,
            cache_dir: Some(cache.clone()),
            faults,
            ..ManagerConfig::default()
        })
        .unwrap()
    };

    let mgr = mk(faults.clone());
    let info = mgr.submit(spec.clone()).unwrap();
    let rx = mgr.subscribe(info.id).unwrap();
    for event in rx.iter() {
        if event.done > 0 || event.state.is_terminal() {
            break;
        }
    }
    drop(mgr); // abrupt death: no drain, no cancel

    let mgr2 = mk(faults);
    let (served, _, id) = run_to_completion(&mgr2, &spec);
    let direct = mt_maxt(&data, &labels, &opts).unwrap();
    if adaptive_mode() {
        // The first manager's adaptive thread may or may not have reached
        // its success-time cache store before the drop, so the rerun can
        // legally resume from a cached exact prefix — which shifts the
        // per-gene stop cursors. Assert the mode's actual contract instead
        // of bitwise identity: every deterministic envelope contains the
        // exact p-value and the run spent less than the exact budget.
        let report = mgr2
            .adaptive_report(id)
            .unwrap()
            .expect("finished adaptive job carries a report");
        for g in 0..data.rows() {
            assert!(
                report.p_lower[g] <= direct.rawp[g] + 1e-12
                    && direct.rawp[g] <= report.p_upper[g] + 1e-12,
                "gene {g}: exact {} outside resumed-run envelope [{}, {}]",
                direct.rawp[g],
                report.p_lower[g],
                report.p_upper[g]
            );
        }
        assert!(
            report.gene_perms_scored < report.gene_perms_exact,
            "mostly-null dataset must stop genes early even after a kill"
        );
        assert_eq!(
            served.b_used, report.watermark,
            "served table must be the finalized exact-prefix watermark"
        );
    } else {
        assert_eq!(
            served, direct,
            "resumed-after-kill result must be bitwise-identical"
        );
    }
    std::fs::remove_dir_all(&cache).ok();
}

/// Server-level soak: torn frames and slow peers on every response, clients
/// answering with retry + idempotent resubmit. All served tables must match
/// the serial reference; the daemon must stay up throughout.
#[test]
fn server_soak_torn_frames_and_slow_peers_with_retry() {
    use microarray::io::write_dataset;

    let faults = soak_faults("frame_truncate:0.15,slow_peer:0.10,stall_ms:10,seed:99");
    let dir = tmpdir("server");
    let sock = dir.join("jobd.sock");
    let dataset = dir.join("data.tsv");
    let data = synth_matrix(50, 10, 5);
    let labels = vec![0u8, 0, 0, 0, 0, 1, 1, 1, 1, 1];
    write_dataset(&dataset, &data, &labels).unwrap();

    // Worker-side faults off: this soak isolates the wire layer, so a job
    // must never fail server-side (a failed job would surface as a wire
    // error, not a retryable transport fault).
    let manager = JobManager::new(ManagerConfig {
        workers: 2,
        span: 16,
        cache_dir: Some(dir.join("cache")),
        faults: Faults::disabled(),
        ..ManagerConfig::default()
    })
    .unwrap();
    let addr = format!("unix:{}", sock.display());
    let server = Server::bind_with(
        &addr,
        manager,
        ServerConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            faults: faults.clone(),
        },
    )
    .unwrap();
    let handle = std::thread::spawn(move || server.run());

    let policy = RetryPolicy {
        attempts: 50,
        base: Duration::from_millis(2),
        max: Duration::from_millis(50),
        seed: 11,
    };
    let retried = |req: &Json| -> Json {
        let resp = request_retried(&addr, req, &policy, Some(WAIT)).expect("retries exhausted");
        expect_ok(resp).expect("wire error")
    };

    for b in [50u64, 80, 120] {
        let opts = PmaxtOptions::default().permutations(b).seed(21);
        let resp = retried(&protocol::submit_request(dataset.to_str().unwrap(), &opts));
        let job = resp.get("job").and_then(Json::as_u64).unwrap();
        let resp = retried(&protocol::result_request(job, true));
        let served = protocol::result_from_json(&resp).unwrap();
        let direct = mt_maxt(&data, &labels, &opts).unwrap();
        if adaptive_mode() {
            // Earlier Bs leave partial cache entries a later submission
            // legally resumes from, shifting stop cursors — so no bitwise
            // wire-side reference exists. Assert the adaptive payload rode
            // the torn wire intact and its envelopes contain the exact
            // p-values.
            assert_eq!(served.rawp.len(), data.rows());
            let a = resp.get("adaptive").expect("adaptive object in result");
            let floats = |f: &str| -> Vec<f64> {
                a.get(f)
                    .and_then(Json::as_arr)
                    .unwrap_or_else(|| panic!("adaptive array {f}"))
                    .iter()
                    .map(|v| v.as_f64().expect("numeric bound"))
                    .collect()
            };
            let lo = floats("p_lower");
            let hi = floats("p_upper");
            for g in 0..data.rows() {
                assert!(
                    lo[g] <= direct.rawp[g] + 1e-12 && direct.rawp[g] <= hi[g] + 1e-12,
                    "B={b} gene {g}: exact {} outside wire envelope [{}, {}]",
                    direct.rawp[g],
                    lo[g],
                    hi[g]
                );
            }
        } else {
            assert_eq!(served, direct, "B={b}: result must survive the torn wire");
        }
    }
    assert!(
        faults.fired(FaultKind::FrameTruncate) > 0,
        "frame truncation armed but never fired: {:?}",
        faults.report()
    );

    // Drain-shutdown through the same lossy wire: keep trying until the
    // server actually exits. A torn ack after the daemon stopped shows up as
    // connection-refused, which counts as "it shut down".
    for _ in 0..50 {
        let _ = request_retried(
            &addr,
            &protocol::shutdown_request(true),
            &RetryPolicy::none(),
            None,
        );
        if handle.is_finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
