//! Disk-fault soak: with the storage fault classes armed — torn journal
//! frames, fsync failures, ENOSPC — a durable manager refuses cleanly (never
//! acks un-journaled work), survives every fault, and retried jobs land
//! bitwise-identical to a fault-free serial run. A restart over the same
//! damaged journal then recovers without inventing or losing jobs.
//!
//! The CI disk-fault leg runs exactly this binary under a fixed
//! `SPRINT_FAULTS` spec; when the variable is unset the tests arm an
//! equivalent programmatic spec, so the soak is exercised either way.

use std::time::Duration;

use sprint_core::matrix::Matrix;
use sprint_core::maxt::serial::mt_maxt;
use sprint_core::maxt::MaxTResult;
use sprint_core::options::{PmaxtOptions, TestMethod};
use sprint_jobd::{Durability, FaultKind, Faults, JobError, JobManager, JobSpec, ManagerConfig};

const WAIT: Duration = Duration::from_secs(120);

/// Honor the CI-provided `SPRINT_FAULTS` spec when present; otherwise arm
/// the given default so the soak always runs with faults on.
fn soak_faults(default_spec: &str) -> Faults {
    let seed = std::env::var("SPRINT_FAULTS_SEED")
        .ok()
        .and_then(|s| s.parse().ok());
    match std::env::var("SPRINT_FAULTS") {
        Ok(spec) => Faults::parse_spec(&spec, seed).expect("SPRINT_FAULTS must parse"),
        Err(_) => Faults::parse_spec(default_spec, seed).unwrap(),
    }
}

fn synth_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut v = Vec::with_capacity(rows * cols);
    for g in 0..rows {
        let shift = if g % 5 == 0 { 1.2 } else { 0.0 };
        for c in 0..cols {
            let bump = if c >= cols / 2 { shift } else { 0.0 };
            v.push(next() * 4.0 - 2.0 + bump);
        }
    }
    Matrix::from_vec(rows, cols, v).unwrap()
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("jobd-disk-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Submit and wait, tolerating the two legal disk-fault outcomes: a refused
/// submission (journal append hit an injected ENOSPC/EIO — the job was
/// never acked, so retrying is correct) and an injected in-flight failure.
fn run_tolerant(mgr: &JobManager, spec: &JobSpec) -> MaxTResult {
    for _ in 0..300u32 {
        let info = match mgr.submit(spec.clone()) {
            Ok(info) => info,
            Err(JobError::Internal(msg)) => {
                assert!(
                    msg.contains("injected"),
                    "only injected disk faults may refuse a submission, got: {msg}"
                );
                continue;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        };
        match mgr.wait_result(info.id, Some(WAIT)) {
            Ok(r) => return r,
            Err(JobError::Failed(reason)) => {
                assert!(
                    reason.contains("injected") || reason.contains("panicked"),
                    "only injected faults may fail a soak job, got: {reason}"
                );
            }
            Err(other) => panic!("unexpected terminal error: {other}"),
        }
    }
    panic!("job failed 300 consecutive times — fault rate runaway?");
}

/// All-statistics soak under `--durability full` with every disk class
/// armed. Acks stay truthful (a refused submit means nothing was journaled),
/// every job settles, and every final table is bitwise-identical to the
/// serial reference. A clean restart over the battered journal then replays
/// it without fabricating work.
#[test]
fn disk_faults_keep_acks_truthful_and_results_bitwise_identical() {
    let faults = soak_faults("journal_torn:0.10,fsync_fail:0.10,disk_full:0.10,seed:77");
    let cache = tmpdir("soak");
    let mgr = JobManager::new(ManagerConfig {
        workers: 3,
        span: 8,
        cache_dir: Some(cache.clone()),
        faults: faults.clone(),
        durability: Durability::Full,
        ..ManagerConfig::default()
    })
    .unwrap();

    let tests: [(TestMethod, Vec<u8>); 6] = [
        (TestMethod::T, vec![0, 0, 0, 0, 1, 1, 1, 1]),
        (TestMethod::TEqualVar, vec![0, 0, 0, 0, 1, 1, 1, 1]),
        (TestMethod::Wilcoxon, vec![0, 0, 0, 0, 1, 1, 1, 1]),
        (TestMethod::F, vec![0, 0, 1, 1, 2, 2, 2, 2]),
        (TestMethod::PairT, vec![0, 1, 0, 1, 1, 0, 0, 1]),
        (TestMethod::BlockF, vec![0, 1, 1, 0, 0, 1, 1, 0]),
    ];
    for round in 0..3u64 {
        for (test, labels) in &tests {
            let data = synth_matrix(40, labels.len(), 4000 + *test as u64);
            let opts = PmaxtOptions::default()
                .test(*test)
                .permutations(240)
                .seed(31 + round)
                .threads(2)
                .batch(4);
            let spec = JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: opts.clone(),
                source_path: None,
            };
            let served = run_tolerant(&mgr, &spec);
            let direct = mt_maxt(&data, labels, &opts).unwrap();
            assert_eq!(
                served,
                direct,
                "{}: disk-faulted run must stay bitwise-identical",
                test.as_str()
            );
        }
    }

    // The soak only proves something if every armed class actually fired.
    for kind in [
        FaultKind::JournalTorn,
        FaultKind::FsyncFail,
        FaultKind::DiskFull,
    ] {
        assert!(
            faults.fired(kind) > 0,
            "{} armed but never fired — soak too small for the spec {:?}",
            kind.as_str(),
            faults.report()
        );
    }
    for st in mgr.list() {
        assert!(st.state.is_terminal(), "job {} left live", st.id);
    }
    drop(mgr);

    // Restart over the same cache with faults off: the journal carries torn
    // frames from the soak, and replay must absorb them (resync or truncate)
    // rather than refuse to start. In-process submissions record no dataset
    // source, so whatever fold still finds pending is reported
    // unrecoverable — counted, not silently dropped, and never duplicated
    // into phantom jobs.
    let mgr2 = JobManager::new(ManagerConfig {
        workers: 1,
        cache_dir: Some(cache.clone()),
        faults: Faults::disabled(),
        durability: Durability::Full,
        ..ManagerConfig::default()
    })
    .unwrap();
    let report = mgr2.recovery_report().expect("durable manager replays");
    assert_eq!(
        report.pending, report.unrecoverable,
        "every pending in-process job must be reported unrecoverable: {report:?}"
    );
    assert_eq!(report.requeued, 0, "nothing requeueable was journaled");
    assert!(mgr2.list().is_empty(), "replay must not fabricate jobs");
    drop(mgr2);
    std::fs::remove_dir_all(&cache).ok();
}

/// Abrupt death and recovery: a file-backed job is killed mid-run (manager
/// dropped, no drain), and a fresh durable manager over the same cache
/// replays the journal, re-enqueues the job from its recorded dataset path,
/// resumes from the checkpoint cursor, and finishes bitwise-identical to an
/// uninterrupted serial run — with recovery provenance on the job.
#[test]
fn journal_replay_requeues_killed_job_and_matches_reference() {
    use microarray::io::write_dataset;

    let dir = tmpdir("replay");
    let dataset = dir.join("data.tsv");
    let cache = dir.join("cache");
    let data = synth_matrix(120, 16, 77);
    let labels: Vec<u8> = [vec![0u8; 8], vec![1u8; 8]].concat();
    write_dataset(&dataset, &data, &labels).unwrap();
    let opts = PmaxtOptions::default()
        .permutations(30_000)
        .threads(1)
        .seed(3);
    let spec = JobSpec {
        data: data.clone(),
        classlabel: labels.clone(),
        opts: opts.clone(),
        source_path: Some(dataset.clone()),
    };
    let mk = || {
        JobManager::new(ManagerConfig {
            workers: 1,
            span: 64,
            cache_dir: Some(cache.clone()),
            faults: Faults::disabled(),
            durability: Durability::Full,
            ..ManagerConfig::default()
        })
        .unwrap()
    };

    let mgr = mk();
    let info = mgr.submit(spec.clone()).unwrap();
    assert!(!info.recovered, "a fresh submission carries no provenance");
    let rx = mgr.subscribe(info.id).unwrap();
    for event in rx.iter() {
        if event.done > 0 || event.state.is_terminal() {
            break;
        }
    }
    drop(mgr); // abrupt death: no drain, no cancel, job left non-terminal

    let mgr2 = mk();
    let report = mgr2.recovery_report().expect("durable manager replays");
    assert_eq!(report.pending, 1, "the killed job must fold as pending");
    assert_eq!(
        report.requeued + report.from_cache,
        1,
        "the killed job must be re-enqueued or served from cache: {report:?}"
    );
    assert_eq!(report.unrecoverable, 0, "{report:?}");

    // The recovered job runs unprompted; find it, wait, and compare.
    let jobs = mgr2.list();
    assert_eq!(jobs.len(), 1, "exactly the one recovered job");
    assert!(jobs[0].recovered, "recovery provenance must be surfaced");
    let served = mgr2.wait_result(jobs[0].id, Some(WAIT)).unwrap();
    let direct = mt_maxt(&data, &labels, &opts).unwrap();
    assert_eq!(served, direct, "recovered run must be bitwise-identical");

    // A client resubmitting after the restart dedups onto the recovered job
    // and sees both flags — the "no duplicate accounting" half of recovery.
    let again = mgr2.submit(spec).unwrap();
    assert!(
        again.deduped,
        "resubmission must dedup onto the recovered job"
    );
    assert!(again.recovered, "dedup target carries recovery provenance");
    drop(mgr2);
    std::fs::remove_dir_all(&dir).ok();
}
