//! Deterministic fault injection for the job service.
//!
//! The daemon's availability claim — a multi-hour run survives worker
//! panics, torn sockets, slow peers and cache corruption — is only credible
//! if those faults can be produced on demand. This module is a seeded
//! injection registry threaded through the worker span loop
//! ([`crate::manager`]), the cache read/write path ([`crate::cache`]) and the
//! socket framing code ([`crate::server`]). Each injection point asks
//! [`Faults::fire`] whether its fault class triggers this time; draws come
//! from one shared splitmix64 sequence, so a fixed seed reproduces the same
//! fault pattern for the same sequence of asks.
//!
//! ## Configuration
//!
//! Environment: `SPRINT_FAULTS=worker_panic:0.01,frame_truncate:0.05,...`
//! (comma-separated `class:probability` pairs; the special keys `seed:N` and
//! `stall_ms:N` set the PRNG seed and the slow-peer stall length).
//! `SPRINT_FAULTS_SEED=N` overrides the seed. Programmatic:
//! [`Faults::builder`]. A default-constructed [`Faults`] is **disabled** and
//! its [`Faults::fire`] is a single `Option` check — the registry costs
//! nothing when off (see `make_tables faults` / BENCH_faults.json).
//!
//! ## Fault classes
//!
//! | class            | injected where                  | models                       |
//! |------------------|---------------------------------|------------------------------|
//! | `worker_panic`   | manager span loop               | a panic in worker/engine code|
//! | `span_io`        | manager span loop               | I/O error mid-span           |
//! | `cache_corrupt`  | cache entry write               | torn/bit-rotted cache file   |
//! | `frame_truncate` | server response framing         | socket drop mid-frame        |
//! | `slow_peer`      | server response framing         | stalled/slow peer            |
//! | `peer_drop`      | shard coordinator dispatch      | a peer daemon dying mid-span |
//! | `peer_stall`     | shard coordinator dispatch      | a slow/overloaded peer daemon|
//! | `peer_torn`      | shard coordinator dispatch      | a request torn mid-frame     |
//! | `journal_torn`   | journal record append           | a record torn mid-write      |
//! | `fsync_fail`     | journal / atomic-write fsync    | EIO from a dying disk        |
//! | `disk_full`      | journal / atomic-write payload  | ENOSPC                       |
//!
//! Every class is survivable: panics and span errors fail the *job* (the
//! daemon keeps serving), corrupt cache entries are quarantined or degrade
//! to a miss, truncated frames and stalls are absorbed by client-side retry
//! and per-connection deadlines, and the three `peer_*` classes exercise the
//! cross-daemon sharding path ([`crate::shard`]): a dropped peer's spans are
//! reassigned to the survivors, a stalled peer only delays its own spans,
//! and a torn request resyncs on a fresh connection. The three disk classes
//! exercise the durability layer ([`crate::journal`], [`crate::storage`]): a
//! torn journal record is skipped by the replay resync scan, a failed fsync
//! fails only the write it was guarding (the caller degrades or retries),
//! and a full disk rejects the submission instead of acking an un-journaled
//! job. The `fault_soak`, `peer_faults` and `disk_fault_soak` integration
//! tests drive the classes at once and assert the final adjusted p-values
//! are bitwise-identical to a fault-free run.
//!
//! ## Crash points
//!
//! Faults model a *surviving* process; the durability contract also has to
//! hold when the process itself dies between two instructions. The named
//! crash points in [`CRASH_POINTS`] mark exactly those in-between states
//! (record written but not fsynced, rename done but directory not fsynced,
//! result cached but terminal record not appended, ...). Setting
//! `SPRINT_CRASH=<point>:<n>` makes the n-th arrival at that point
//! [`std::process::abort`] — no unwinding, no destructors, the closest
//! in-process stand-in for `kill -9`. The `crash_recovery` integration
//! suite iterates the registry against the real binary and asserts recovery
//! after every one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The injectable fault classes. `COUNT`-sized arrays in [`Faults`] are
/// indexed by `as usize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside a worker while it processes a span.
    WorkerPanic,
    /// I/O error reported by the span computation.
    SpanIo,
    /// Corruption of a just-written cache entry.
    CacheCorrupt,
    /// Socket dropped mid-way through writing a response frame.
    FrameTruncate,
    /// Stall before writing a response (a slow peer / overloaded server).
    SlowPeer,
    /// A peer daemon dropping dead before a sharded span is dispatched to it
    /// (the coordinator reassigns the peer's spans to the survivors).
    PeerDrop,
    /// A stall before dispatching a sharded span to a peer (a slow peer only
    /// delays its own spans, never the survivors').
    PeerStall,
    /// A span-exec request torn mid-frame (half the line, then the socket
    /// drops); the coordinator resends on a fresh connection.
    PeerTorn,
    /// A journal record torn mid-append (half the frame reaches the disk,
    /// then the write "stops"); replay must skip exactly that record.
    JournalTorn,
    /// `fsync` returning EIO — the write being guarded is not durable and
    /// its caller must treat it as failed.
    FsyncFail,
    /// ENOSPC from a persistent payload write (journal append or
    /// atomic-write temporary).
    DiskFull,
}

impl FaultKind {
    /// Every class, in index order.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::WorkerPanic,
        FaultKind::SpanIo,
        FaultKind::CacheCorrupt,
        FaultKind::FrameTruncate,
        FaultKind::SlowPeer,
        FaultKind::PeerDrop,
        FaultKind::PeerStall,
        FaultKind::PeerTorn,
        FaultKind::JournalTorn,
        FaultKind::FsyncFail,
        FaultKind::DiskFull,
    ];

    /// Number of classes (array size in the registry).
    pub const COUNT: usize = Self::ALL.len();

    /// The `SPRINT_FAULTS` spelling of the class.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::SpanIo => "span_io",
            FaultKind::CacheCorrupt => "cache_corrupt",
            FaultKind::FrameTruncate => "frame_truncate",
            FaultKind::SlowPeer => "slow_peer",
            FaultKind::PeerDrop => "peer_drop",
            FaultKind::PeerStall => "peer_stall",
            FaultKind::PeerTorn => "peer_torn",
            FaultKind::JournalTorn => "journal_torn",
            FaultKind::FsyncFail => "fsync_fail",
            FaultKind::DiskFull => "disk_full",
        }
    }

    /// Parse the `SPRINT_FAULTS` spelling.
    pub fn parse(s: &str) -> Option<FaultKind> {
        Self::ALL.iter().copied().find(|k| k.as_str() == s)
    }
}

/// Shared state of an armed registry.
#[derive(Debug)]
struct FaultState {
    /// Per-class trigger probability in `[0, 1]`.
    probs: [f64; FaultKind::COUNT],
    /// How long a `slow_peer` stall lasts.
    stall: Duration,
    /// splitmix64 state; every draw advances it by the golden gamma, so the
    /// draw sequence is a pure function of the seed and the ask order.
    rng: AtomicU64,
    /// Per-class draw counters (asks).
    checked: [AtomicU64; FaultKind::COUNT],
    /// Per-class trigger counters (fires).
    fired: [AtomicU64; FaultKind::COUNT],
}

/// A handle to the fault-injection registry. Cloning shares the counters and
/// the PRNG. The default value is **disabled**: no allocation, and
/// [`Faults::fire`] is one `Option` discriminant check.
#[derive(Debug, Clone, Default)]
pub struct Faults(Option<Arc<FaultState>>);

/// Builder for a programmatic registry (tests, benches).
#[derive(Debug, Clone)]
pub struct FaultsBuilder {
    probs: [f64; FaultKind::COUNT],
    seed: u64,
    stall: Duration,
}

impl Default for FaultsBuilder {
    fn default() -> Self {
        FaultsBuilder {
            probs: [0.0; FaultKind::COUNT],
            seed: 0x5eed_5eed_5eed_5eed,
            stall: Duration::from_millis(50),
        }
    }
}

impl FaultsBuilder {
    /// Set one class's trigger probability (clamped to `[0, 1]`).
    pub fn prob(mut self, kind: FaultKind, p: f64) -> Self {
        self.probs[kind as usize] = p.clamp(0.0, 1.0);
        self
    }

    /// Set the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the `slow_peer` stall length.
    pub fn stall(mut self, stall: Duration) -> Self {
        self.stall = stall;
        self
    }

    /// Arm the registry. A builder with all probabilities zero still arms
    /// (every injection point draws) — that is what the overhead benchmark
    /// measures.
    pub fn build(self) -> Faults {
        Faults(Some(Arc::new(FaultState {
            probs: self.probs,
            stall: self.stall,
            rng: AtomicU64::new(self.seed),
            checked: Default::default(),
            fired: Default::default(),
        })))
    }
}

/// splitmix64 output function.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Faults {
    /// A disabled registry: nothing ever fires, checks cost one branch.
    pub fn disabled() -> Faults {
        Faults(None)
    }

    /// Start building a programmatic registry.
    pub fn builder() -> FaultsBuilder {
        FaultsBuilder::default()
    }

    /// The process-wide registry configured by `SPRINT_FAULTS` /
    /// `SPRINT_FAULTS_SEED` (parsed once; disabled when the variable is
    /// unset). Malformed entries are warned about on stderr and skipped —
    /// silently ignoring a typo'd fault spec would make a soak run look
    /// healthier than it is.
    pub fn from_env() -> Faults {
        static ENV: OnceLock<Faults> = OnceLock::new();
        ENV.get_or_init(|| {
            let spec = match std::env::var("SPRINT_FAULTS") {
                Ok(s) if !s.trim().is_empty() => s,
                _ => return Faults::disabled(),
            };
            let seed = std::env::var("SPRINT_FAULTS_SEED")
                .ok()
                .and_then(|s| s.parse().ok());
            match Faults::parse_spec(&spec, seed) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("jobd: warning: ignoring invalid SPRINT_FAULTS={spec:?}: {e}");
                    Faults::disabled()
                }
            }
        })
        .clone()
    }

    /// Parse a `class:prob,...` spec (the `SPRINT_FAULTS` syntax).
    /// `seed_override` (from `SPRINT_FAULTS_SEED`) beats an inline `seed:`.
    pub fn parse_spec(spec: &str, seed_override: Option<u64>) -> Result<Faults, String> {
        let mut b = FaultsBuilder::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| format!("entry {part:?} is not class:value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    b.seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                "stall_ms" => {
                    b.stall = Duration::from_millis(
                        value
                            .parse()
                            .map_err(|_| format!("bad stall_ms {value:?}"))?,
                    );
                }
                _ => {
                    let kind = FaultKind::parse(key).ok_or_else(|| {
                        format!(
                            "unknown fault class {key:?} (expected one of {})",
                            FaultKind::ALL.map(|k| k.as_str()).join(", ")
                        )
                    })?;
                    let p: f64 = value
                        .parse()
                        .map_err(|_| format!("bad probability {value:?} for {key}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability {p} for {key} outside [0, 1]"));
                    }
                    b.probs[kind as usize] = p;
                }
            }
        }
        if let Some(seed) = seed_override {
            b.seed = seed;
        }
        Ok(b.build())
    }

    /// True when the registry is armed (even with all-zero probabilities).
    pub fn armed(&self) -> bool {
        self.0.is_some()
    }

    /// Should this injection point trigger its fault now? Disabled registries
    /// return `false` without drawing.
    pub fn fire(&self, kind: FaultKind) -> bool {
        let Some(state) = &self.0 else { return false };
        state.checked[kind as usize].fetch_add(1, Ordering::Relaxed);
        let p = state.probs[kind as usize];
        if p <= 0.0 {
            return false;
        }
        // Advance the shared splitmix64 stream; fetch_add makes each draw
        // consume exactly one step even under concurrency.
        let z = state
            .rng
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        let hit = ((mix(z) >> 11) as f64 / (1u64 << 53) as f64) < p;
        if hit {
            state.fired[kind as usize].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// The configured slow-peer stall length (zero when disabled).
    pub fn stall(&self) -> Duration {
        self.0.as_ref().map_or(Duration::ZERO, |s| s.stall)
    }

    /// How often `kind` has triggered.
    pub fn fired(&self, kind: FaultKind) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |s| s.fired[kind as usize].load(Ordering::Relaxed))
    }

    /// How often `kind` has been asked about.
    pub fn checked(&self, kind: FaultKind) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |s| s.checked[kind as usize].load(Ordering::Relaxed))
    }

    /// `(class, checked, fired)` per class — the soak tests assert every
    /// class actually exercised its recovery path.
    pub fn report(&self) -> Vec<(FaultKind, u64, u64)> {
        FaultKind::ALL
            .iter()
            .map(|&k| (k, self.checked(k), self.fired(k)))
            .collect()
    }
}

/// Every named crash point, in rough lifecycle order. Each entry marks an
/// in-between state a real power cut could expose; the `crash_recovery`
/// integration suite iterates this list, aborts the daemon at each point via
/// `SPRINT_CRASH`, restarts it, and asserts the durability invariants.
pub const CRASH_POINTS: &[&str] = &[
    // Journal layer (crate::journal).
    "journal.append",  // record written to the segment, not yet fsynced
    "journal.fsync",   // record durable, accept ack not yet sent
    "journal.compact", // compacted segment durable, old segments not yet removed
    // Atomic-write primitive (crate::storage).
    "storage.tmp",    // unique tmp durable, rename pending
    "storage.rename", // rename done, parent directory fsync pending
    // Manager lifecycle (crate::manager).
    "manager.accept", // accept record durable, submit ack pending
    "manager.start",  // start record appended
    "manager.finish", // result checkpointed, terminal record pending
    // Cache writes (crate::cache).
    "cache.store", // span checkpoint written
];

/// The `SPRINT_CRASH=<point>:<n>` spec, parsed once per process.
fn crash_spec() -> Option<&'static (String, u64)> {
    static SPEC: OnceLock<Option<(String, u64)>> = OnceLock::new();
    SPEC.get_or_init(|| {
        let raw = match std::env::var("SPRINT_CRASH") {
            Ok(s) if !s.trim().is_empty() => s,
            _ => return None,
        };
        let (point, n) = match raw.trim().split_once(':') {
            Some((p, n)) => (p.trim().to_string(), n.trim().parse::<u64>().ok()),
            None => (raw.trim().to_string(), Some(1)),
        };
        let Some(n) = n.filter(|&n| n > 0) else {
            eprintln!(
                "jobd: warning: ignoring invalid SPRINT_CRASH={raw:?} (want point:n, n >= 1)"
            );
            return None;
        };
        if !CRASH_POINTS.contains(&point.as_str()) {
            eprintln!(
                "jobd: warning: SPRINT_CRASH names unknown point {point:?} (known: {})",
                CRASH_POINTS.join(", ")
            );
            return None;
        }
        Some((point, n))
    })
    .as_ref()
}

/// Declare arrival at a named crash point. When `SPRINT_CRASH=<name>:<n>` is
/// set and this is the n-th arrival at that point, the process aborts on the
/// spot — no unwinding, no destructors, no flushes. Costs one `OnceLock`
/// load when the variable is unset.
pub fn crash_point(name: &str) {
    debug_assert!(
        CRASH_POINTS.contains(&name),
        "crash point {name:?} is not in CRASH_POINTS"
    );
    let Some((target, n)) = crash_spec() else {
        return;
    };
    if target != name {
        return;
    }
    static HITS: AtomicU64 = AtomicU64::new(0);
    if HITS.fetch_add(1, Ordering::SeqCst) + 1 == *n {
        eprintln!("jobd: SPRINT_CRASH={name}:{n} reached, aborting");
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_never_fires_and_counts_nothing() {
        let f = Faults::disabled();
        assert!(!f.armed());
        for kind in FaultKind::ALL {
            for _ in 0..100 {
                assert!(!f.fire(kind));
            }
            assert_eq!(f.checked(kind), 0);
            assert_eq!(f.fired(kind), 0);
        }
        assert_eq!(f.stall(), Duration::ZERO);
    }

    #[test]
    fn seeded_draws_are_deterministic_and_track_probability() {
        let draws = |seed: u64| -> Vec<bool> {
            let f = Faults::builder()
                .prob(FaultKind::WorkerPanic, 0.25)
                .seed(seed)
                .build();
            (0..2000).map(|_| f.fire(FaultKind::WorkerPanic)).collect()
        };
        let a = draws(7);
        let b = draws(7);
        assert_eq!(a, b, "same seed must reproduce the same fault pattern");
        let c = draws(8);
        assert_ne!(a, c, "different seeds should differ");
        let rate = a.iter().filter(|&&x| x).count() as f64 / a.len() as f64;
        assert!(
            (rate - 0.25).abs() < 0.05,
            "empirical rate {rate} far from 0.25"
        );
    }

    #[test]
    fn spec_parsing_round_trips_classes_seed_and_stall() {
        let f = Faults::parse_spec(
            "worker_panic:0.5, frame_truncate:0.125, seed:99, stall_ms:7",
            None,
        )
        .unwrap();
        assert!(f.armed());
        assert_eq!(f.stall(), Duration::from_millis(7));
        let mut panic_fired = 0;
        for _ in 0..400 {
            if f.fire(FaultKind::WorkerPanic) {
                panic_fired += 1;
            }
            // Classes with zero probability never fire but are counted.
            assert!(!f.fire(FaultKind::CacheCorrupt));
        }
        assert!(panic_fired > 100, "0.5 class should fire often");
        assert_eq!(f.checked(FaultKind::CacheCorrupt), 400);
        assert_eq!(f.fired(FaultKind::CacheCorrupt), 0);

        // Seed override (SPRINT_FAULTS_SEED) beats the inline seed.
        let a = Faults::parse_spec("worker_panic:0.5,seed:1", Some(42)).unwrap();
        let b = Faults::parse_spec("worker_panic:0.5,seed:2", Some(42)).unwrap();
        let da: Vec<bool> = (0..64).map(|_| a.fire(FaultKind::WorkerPanic)).collect();
        let db: Vec<bool> = (0..64).map(|_| b.fire(FaultKind::WorkerPanic)).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(Faults::parse_spec("nonsense", None).is_err());
        assert!(Faults::parse_spec("bogus_class:0.1", None).is_err());
        assert!(Faults::parse_spec("worker_panic:1.5", None).is_err());
        assert!(Faults::parse_spec("worker_panic:x", None).is_err());
        assert!(Faults::parse_spec("seed:abc", None).is_err());
        // Empty entries are tolerated (trailing commas).
        assert!(Faults::parse_spec("worker_panic:0.1,", None).is_ok());
    }

    #[test]
    fn disk_classes_parse_and_fire() {
        let f = Faults::parse_spec("journal_torn:1,fsync_fail:1,disk_full:1", None).unwrap();
        for kind in [
            FaultKind::JournalTorn,
            FaultKind::FsyncFail,
            FaultKind::DiskFull,
        ] {
            assert!(f.fire(kind), "{} armed at p=1 must fire", kind.as_str());
            assert_eq!(FaultKind::parse(kind.as_str()), Some(kind));
        }
    }

    #[test]
    fn crash_points_are_distinct_and_unset_env_is_free() {
        let mut sorted: Vec<&str> = CRASH_POINTS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), CRASH_POINTS.len(), "duplicate crash point");
        // With SPRINT_CRASH unset (the test environment), arrival is a no-op.
        for point in CRASH_POINTS {
            crash_point(point);
        }
    }

    #[test]
    fn report_lists_every_class() {
        let f = Faults::builder().prob(FaultKind::SlowPeer, 1.0).build();
        f.fire(FaultKind::SlowPeer);
        let report = f.report();
        assert_eq!(report.len(), FaultKind::COUNT);
        let slow = report
            .iter()
            .find(|(k, _, _)| *k == FaultKind::SlowPeer)
            .unwrap();
        assert_eq!((slow.1, slow.2), (1, 1));
    }
}
