//! Client side of the line protocol: connect, send a request line, read
//! response lines. Used by the `pmaxt submit|status|result|cancel`
//! subcommands and the integration tests.
//!
//! ## Retry
//!
//! A jobd conversation is safe to retry from scratch: every request is
//! idempotent by construction. `submit` is keyed on the content digest —
//! resubmitting a request whose first attempt actually reached the daemon
//! dedups onto the live job, or becomes a cache hit / checkpoint resume if
//! the job meanwhile finished or failed, bitwise-identical either way. So the
//! client's answer to a torn frame, a dropped connection or a read timeout is
//! [`request_retried`]: reconnect fresh and resend, under a [`RetryPolicy`]
//! with deterministic jittered exponential backoff.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use crate::json::Json;
use crate::server::BindAddr;

/// Client-side retry: how many attempts, how long between them.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles each further attempt.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub max: Duration,
    /// Seed for the jitter stream, so a given client's retry timing is
    /// reproducible in tests and soak runs.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(100),
            max: Duration::from_secs(5),
            seed: 0x9e37_79b9,
        }
    }
}

impl RetryPolicy {
    /// No retry: one attempt, fail fast.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before attempt `attempt` (1-based; attempt 1 has none):
    /// exponential doubling from `base`, capped at `max`, scaled by a
    /// deterministic jitter factor in `[0.5, 1.5)` so a fleet of retrying
    /// clients does not stampede the daemon in lockstep.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let exp = self
            .base
            .saturating_mul(1u32 << (attempt - 2).min(16))
            .min(self.max);
        // splitmix64 over (seed, attempt) — stateless, so concurrent callers
        // sharing a policy need no locks.
        let mut z = self
            .seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let jitter = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(jitter).min(self.max)
    }
}

/// Run one request under `policy`, reconnecting fresh for every attempt (a
/// failed attempt's connection may be wedged mid-frame, so it is never
/// reused). Returns the last error when every attempt fails.
///
/// `timeout` bounds each attempt's socket reads; `None` waits forever. Pass
/// a generous value for requests that legitimately block server-side
/// (`result` with `wait`) — a timeout there aborts a healthy wait.
pub fn request_retried(
    addr: &str,
    request: &Json,
    policy: &RetryPolicy,
    timeout: Option<Duration>,
) -> io::Result<Json> {
    let mut last_err = None;
    for attempt in 1..=policy.attempts.max(1) {
        let backoff = policy.backoff(attempt);
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        let outcome = Client::connect_with(addr, timeout).and_then(|mut c| c.request(request));
        match outcome {
            Ok(resp) => return Ok(resp),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("retry policy made no attempts")))
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn reader(&self) -> io::Result<Box<dyn io::Read + Send>> {
        Ok(match self {
            Stream::Unix(s) => Box::new(s.try_clone()?),
            Stream::Tcp(s) => Box::new(s.try_clone()?),
        })
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A connection to a jobd server.
pub struct Client {
    writer: Stream,
    reader: BufReader<Box<dyn io::Read + Send>>,
}

impl Client {
    /// Connect to `addr` (same syntax as the server's bind address).
    pub fn connect(addr: &str) -> io::Result<Client> {
        Self::connect_with(addr, None)
    }

    /// Connect with a read timeout on the socket: any single response (or
    /// `watch` event) taking longer than `timeout` to arrive errors out with
    /// `WouldBlock`/`TimedOut` instead of hanging the caller forever on a
    /// stalled or dead server.
    pub fn connect_with(addr: &str, timeout: Option<Duration>) -> io::Result<Client> {
        let stream = match BindAddr::parse(addr) {
            BindAddr::Unix(path) => {
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(timeout)?;
                Stream::Unix(s)
            }
            BindAddr::Tcp(spec) => {
                let s = TcpStream::connect(spec)?;
                s.set_read_timeout(timeout)?;
                Stream::Tcp(s)
            }
        };
        let reader = BufReader::new(stream.reader()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Send one request line and read one response line.
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        let mut line = request.to_json();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Read the next response/event line (for `watch` streams).
    pub fn read_response(&mut self) -> io::Result<Json> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(line.trim_end()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Split a response into `Ok(response)` / `Err((message, code))` on the
/// protocol's `ok` field.
pub fn expect_ok(resp: Json) -> Result<Json, (String, String)> {
    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
        Ok(resp)
    } else {
        let msg = resp
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("malformed response")
            .to_string();
        let code = resp
            .get("code")
            .and_then(Json::as_str)
            .unwrap_or("runtime")
            .to_string();
        Err((msg, code))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let p = RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(100),
            max: Duration::from_secs(2),
            seed: 7,
        };
        assert_eq!(p.backoff(1), Duration::ZERO);
        for attempt in 2..=6 {
            let nominal = Duration::from_millis(100 * (1 << (attempt - 2)) as u64);
            let b = p.backoff(attempt);
            assert!(
                b >= nominal.mul_f64(0.5) && b <= nominal.mul_f64(1.5).min(p.max),
                "attempt {attempt}: {b:?} outside jitter window around {nominal:?}"
            );
            // Deterministic: same policy, same attempt, same sleep.
            assert_eq!(b, p.backoff(attempt));
        }
        // Different seeds jitter differently (with overwhelming probability).
        let q = RetryPolicy {
            seed: 8,
            ..p.clone()
        };
        assert_ne!(p.backoff(3), q.backoff(3));
        // The cap binds for large attempts.
        assert!(p.backoff(20) <= Duration::from_secs(2));
    }

    #[test]
    fn no_retry_policy_makes_one_attempt() {
        let p = RetryPolicy::none();
        assert_eq!(p.attempts, 1);
        // Connecting to a nonexistent socket fails once, immediately.
        let err = request_retried(
            "/nonexistent/jobd.sock",
            &Json::Obj(vec![("cmd".into(), Json::Str("ping".into()))]),
            &p,
            None,
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
