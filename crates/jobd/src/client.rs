//! Client side of the line protocol: connect, send a request line, read
//! response lines. Used by the `pmaxt submit|status|result|cancel`
//! subcommands and the integration tests.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use crate::json::Json;
use crate::server::BindAddr;

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn reader(&self) -> io::Result<Box<dyn io::Read + Send>> {
        Ok(match self {
            Stream::Unix(s) => Box::new(s.try_clone()?),
            Stream::Tcp(s) => Box::new(s.try_clone()?),
        })
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A connection to a jobd server.
pub struct Client {
    writer: Stream,
    reader: BufReader<Box<dyn io::Read + Send>>,
}

impl Client {
    /// Connect to `addr` (same syntax as the server's bind address).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = match BindAddr::parse(addr) {
            BindAddr::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            BindAddr::Tcp(spec) => Stream::Tcp(TcpStream::connect(spec)?),
        };
        let reader = BufReader::new(stream.reader()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Send one request line and read one response line.
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        let mut line = request.to_json();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Read the next response/event line (for `watch` streams).
    pub fn read_response(&mut self) -> io::Result<Json> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(line.trim_end()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Split a response into `Ok(response)` / `Err((message, code))` on the
/// protocol's `ok` field.
pub fn expect_ok(resp: Json) -> Result<Json, (String, String)> {
    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
        Ok(resp)
    } else {
        let msg = resp
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("malformed response")
            .to_string();
        let code = resp
            .get("code")
            .and_then(Json::as_str)
            .unwrap_or("runtime")
            .to_string();
        Err((msg, code))
    }
}
