//! Cross-daemon permutation sharding: peer links, span queues and comm
//! statistics for the coordinator in [`crate::manager`].
//!
//! A daemon started with `pmaxt serve --peer <addr>` turns a submitted job
//! into a *sharded* run: the permutation range `0..B` is split across the
//! roster (this daemon plus every peer) with the same skip-ahead
//! [`span_plan`](sprint_core::pmaxt::span_plan) arithmetic the SPMD ranks
//! use, each participant's range is sliced into checkpoint-sized spans, and
//! remote spans travel as `span_exec` requests over the ordinary line-JSON
//! protocol. Exceedance counts are exact `u64`s and addition is commutative,
//! so merging spans in *any* completion order reproduces the serial result
//! bit for bit — the coordinator only has to guarantee that every span is
//! counted exactly once.
//!
//! ## Failure model
//!
//! A peer is detected dead when one request exhausts its retry budget
//! (connection refused, torn frame, read deadline). Its unfinished spans are
//! pushed onto a shared reassignment queue that every surviving participant
//! — including the coordinator's own local executor — drains after its own
//! range, so a `kill -9` mid-span costs only the dead peer's unmerged spans,
//! never the job. Because a "dead" peer may in fact have finished a span
//! after the coordinator gave up on it, span results are deduplicated by
//! their start index before merging: at-most-once accounting under
//! at-least-once dispatch.
//!
//! The three `peer_*` fault classes ([`crate::faults`]) inject exactly these
//! failures deterministically: `peer_drop` kills a link before dispatch,
//! `peer_stall` delays one, and `peer_torn` tears a request line mid-frame
//! on a throwaway connection.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::client::{expect_ok, Client, RetryPolicy};
use crate::faults::{FaultKind, Faults};
use crate::json::Json;
use crate::server::BindAddr;

/// Wire counters of one sharded job, shared between the coordinator, its
/// peer dispatchers and status readers. The analogue of `mpi-sim`'s
/// `MessageStats`/`TcpStats` for the daemon-to-daemon transport, surfaced in
/// `pmaxt status` and progress events.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Participants in the roster (local + peers).
    pub peers: AtomicU64,
    /// Peers declared dead (retry budget exhausted).
    pub peers_failed: AtomicU64,
    /// Spans in the plan.
    pub spans_total: AtomicU64,
    /// Spans computed by the local executor.
    pub spans_local: AtomicU64,
    /// Spans computed by remote peers.
    pub spans_remote: AtomicU64,
    /// Spans re-queued after their owner died.
    pub spans_reassigned: AtomicU64,
    /// `span_exec` request attempts (including retries).
    pub requests_sent: AtomicU64,
    /// Well-formed responses received.
    pub responses_received: AtomicU64,
    /// Attempts beyond the first for any request.
    pub retries: AtomicU64,
    /// Request-line bytes written (newline included).
    pub bytes_sent: AtomicU64,
    /// Response-line bytes read (newline included).
    pub bytes_received: AtomicU64,
    /// Microseconds the local executor spent inside the permutation kernel.
    pub kernel_local_micros: AtomicU64,
    /// Kernel microseconds reported by peers in their span responses. With
    /// `kernel_local_micros`, this separates compute from comm: everything
    /// else in the job's wall time is dispatch, wire and merge overhead.
    pub kernel_remote_micros: AtomicU64,
}

/// Point-in-time copy of [`ShardStats`], for status snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Participants in the roster (local + peers).
    pub peers: u64,
    /// Peers declared dead.
    pub peers_failed: u64,
    /// Spans in the plan.
    pub spans_total: u64,
    /// Spans computed locally.
    pub spans_local: u64,
    /// Spans computed remotely.
    pub spans_remote: u64,
    /// Spans re-queued after a peer death.
    pub spans_reassigned: u64,
    /// Request attempts (including retries).
    pub requests_sent: u64,
    /// Well-formed responses.
    pub responses_received: u64,
    /// Retry attempts.
    pub retries: u64,
    /// Request bytes on the wire.
    pub bytes_sent: u64,
    /// Response bytes on the wire.
    pub bytes_received: u64,
    /// Local kernel time, microseconds.
    pub kernel_local_micros: u64,
    /// Peer-reported kernel time, microseconds.
    pub kernel_remote_micros: u64,
}

impl ShardStats {
    /// Copy the counters.
    pub fn snapshot(&self) -> ShardSnapshot {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ShardSnapshot {
            peers: get(&self.peers),
            peers_failed: get(&self.peers_failed),
            spans_total: get(&self.spans_total),
            spans_local: get(&self.spans_local),
            spans_remote: get(&self.spans_remote),
            spans_reassigned: get(&self.spans_reassigned),
            requests_sent: get(&self.requests_sent),
            responses_received: get(&self.responses_received),
            retries: get(&self.retries),
            bytes_sent: get(&self.bytes_sent),
            bytes_received: get(&self.bytes_received),
            kernel_local_micros: get(&self.kernel_local_micros),
            kernel_remote_micros: get(&self.kernel_remote_micros),
        }
    }

    fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Slice `[start, start + take)` into consecutive spans of at most `span`
/// permutations — the checkpoint / reassignment granule of a sharded range.
pub fn slice_spans(start: u64, take: u64, span: u64) -> Vec<(u64, u64)> {
    let span = span.max(1);
    let mut out = Vec::new();
    let mut at = start;
    let end = start + take;
    while at < end {
        let n = span.min(end - at);
        out.push((at, n));
        at += n;
    }
    out
}

/// The reassignment queue: spans whose owner died, waiting for a survivor.
#[derive(Debug, Default)]
pub(crate) struct SpanQueue {
    orphans: Mutex<VecDeque<(u64, u64)>>,
}

impl SpanQueue {
    pub(crate) fn new() -> SpanQueue {
        SpanQueue::default()
    }

    /// Return a dead participant's unfinished spans for reassignment.
    pub(crate) fn reassign(&self, spans: impl IntoIterator<Item = (u64, u64)>) -> u64 {
        let mut q = self.orphans.lock().unwrap_or_else(|e| e.into_inner());
        let before = q.len();
        q.extend(spans);
        (q.len() - before) as u64
    }

    /// Take the next orphaned span, oldest first.
    pub(crate) fn pop(&self) -> Option<(u64, u64)> {
        self.orphans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }
}

/// How a peer request failed.
#[derive(Debug)]
pub(crate) enum PeerError {
    /// Transport-level failure after every retry: the peer is presumed dead
    /// and its spans are reassigned.
    Dead(String),
    /// The peer answered with a protocol error (`ok: false`): the request
    /// itself is wrong (unreadable dataset, mismatched B), so reassigning it
    /// would fail everywhere — the job fails instead.
    Rejected(String),
}

/// One coordinator→peer link: address plus retry policy, with every wire
/// interaction accounted in the shared [`ShardStats`].
pub(crate) struct PeerLink<'a> {
    pub addr: &'a str,
    pub policy: RetryPolicy,
    pub timeout: Option<Duration>,
    pub stats: &'a ShardStats,
    pub faults: &'a Faults,
}

impl PeerLink<'_> {
    /// Run one idempotent request against the peer, reconnecting fresh per
    /// attempt. Injects the `peer_stall` and `peer_torn` fault classes ahead
    /// of the real dispatch (`peer_drop` is handled by the caller, which
    /// knows the spans to reassign).
    pub(crate) fn exec(&self, req: &Json) -> Result<Json, PeerError> {
        if self.faults.fire(FaultKind::PeerStall) {
            std::thread::sleep(self.faults.stall());
        }
        if self.faults.fire(FaultKind::PeerTorn) {
            self.tear(req);
        }
        let line_len = req.to_json().len() as u64 + 1;
        let mut last = String::new();
        for attempt in 1..=self.policy.attempts.max(1) {
            let backoff = self.policy.backoff(attempt);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            if attempt > 1 {
                self.stats.add(&self.stats.retries, 1);
            }
            self.stats.add(&self.stats.requests_sent, 1);
            self.stats.add(&self.stats.bytes_sent, line_len);
            let outcome =
                Client::connect_with(self.addr, self.timeout).and_then(|mut c| c.request(req));
            match outcome {
                Ok(resp) => {
                    // Responses are re-serialized by the same writer the peer
                    // used, so this length equals the wire length.
                    self.stats
                        .add(&self.stats.bytes_received, resp.to_json().len() as u64 + 1);
                    self.stats.add(&self.stats.responses_received, 1);
                    return expect_ok(resp)
                        .map_err(|(msg, code)| PeerError::Rejected(format!("{msg} ({code})")));
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(PeerError::Dead(format!(
            "peer {} unreachable after {} attempts: {last}",
            self.addr,
            self.policy.attempts.max(1)
        )))
    }

    /// Tear a request mid-frame: write half the line on a throwaway
    /// connection and drop it. The peer's bounded line reader absorbs the
    /// fragment; the real request then goes out on a fresh connection.
    fn tear(&self, req: &Json) {
        let line = req.to_json();
        let half = &line.as_bytes()[..line.len() / 2];
        self.stats.add(&self.stats.bytes_sent, half.len() as u64);
        match BindAddr::parse(self.addr) {
            BindAddr::Unix(path) => {
                if let Ok(mut s) = std::os::unix::net::UnixStream::connect(path) {
                    let _ = s.write_all(half);
                }
            }
            BindAddr::Tcp(spec) => {
                if let Ok(mut s) = std::net::TcpStream::connect(spec) {
                    let _ = s.write_all(half);
                }
            }
        }
    }
}

/// Thread-CPU clock for the kernel telemetry counters.
///
/// On an oversubscribed machine (more roster daemons than cores — the usual
/// situation when benchmarking a cluster on one host) a wall clock charges a
/// kernel for every context switch spent running *someone else's* spans.
/// `CLOCK_THREAD_CPUTIME_ID` charges only the cycles this thread actually
/// burned, which is what `kernel_local_micros`/`kernel_remote_micros` mean.
/// The engine runs inline on the calling thread whenever it resolves to a
/// single worker, so both the coordinator's executor and `span_exec` bracket
/// the accumulate call with this clock; multi-worker runs (where the work
/// happens on pool threads) fall back to the engine's per-worker busy sum.
///
/// Returns `None` where the clock is unavailable (non-Linux targets).
pub fn thread_cpu_secs() -> Option<f64> {
    #[cfg(target_os = "linux")]
    {
        #[repr(C)]
        struct Timespec {
            sec: i64,
            nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
        }
        const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
        let mut ts = Timespec { sec: 0, nsec: 0 };
        // SAFETY: `ts` is a valid writable struct with the kernel's timespec
        // layout on 64-bit Linux, and the clock id is a constant it knows.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        (rc == 0).then_some(ts.sec as f64 + ts.nsec as f64 * 1e-9)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_spans_covers_range_exactly_once() {
        for (start, take, span) in [
            (0, 100, 32),
            (7, 1, 4096),
            (100, 0, 8),
            (3, 17, 1),
            (0, 64, 64),
        ] {
            let spans = slice_spans(start, take, span);
            let mut at = start;
            for &(s, t) in &spans {
                assert_eq!(s, at, "spans must be consecutive");
                assert!(t >= 1 && t <= span.max(1));
                at += t;
            }
            assert_eq!(at, start + take, "spans must cover the range");
            if take > 0 {
                // Only the last span may be short.
                for &(_, t) in &spans[..spans.len() - 1] {
                    assert_eq!(t, span.max(1));
                }
            } else {
                assert!(spans.is_empty());
            }
        }
    }

    #[test]
    fn span_queue_reassigns_in_order() {
        let q = SpanQueue::new();
        assert_eq!(q.pop(), None);
        assert_eq!(q.reassign([(0, 8), (8, 8)]), 2);
        assert_eq!(q.reassign([(16, 4)]), 1);
        assert_eq!(q.pop(), Some((0, 8)));
        assert_eq!(q.pop(), Some((8, 8)));
        assert_eq!(q.pop(), Some((16, 4)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn snapshot_copies_counters() {
        let s = ShardStats::default();
        s.peers.store(3, Ordering::Relaxed);
        s.add(&s.requests_sent, 5);
        s.add(&s.bytes_sent, 123);
        let snap = s.snapshot();
        assert_eq!(snap.peers, 3);
        assert_eq!(snap.requests_sent, 5);
        assert_eq!(snap.bytes_sent, 123);
        assert_eq!(snap.peers_failed, 0);
    }

    #[test]
    fn dead_peer_is_a_transport_error_with_attempt_count() {
        let stats = ShardStats::default();
        let faults = Faults::disabled();
        let link = PeerLink {
            addr: "/nonexistent/peer.sock",
            policy: RetryPolicy {
                attempts: 2,
                base: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
            timeout: None,
            stats: &stats,
            faults: &faults,
        };
        let req = Json::obj(vec![("cmd", Json::str("ping"))]);
        match link.exec(&req) {
            Err(PeerError::Dead(msg)) => assert!(msg.contains("2 attempts"), "{msg}"),
            other => panic!("expected Dead, got {other:?}"),
        }
        let snap = stats.snapshot();
        assert_eq!(snap.requests_sent, 2);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.responses_received, 0);
    }
}
