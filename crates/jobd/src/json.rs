//! Minimal JSON value, parser and serializer for the line-delimited wire
//! protocol.
//!
//! The workspace has no serde (offline build, vendored shims only), and the
//! protocol needs very little: objects, arrays, strings, numbers, booleans
//! and null. Two deliberate conventions, enforced here and relied on by
//! [`crate::protocol`]:
//!
//! - **Non-finite floats serialize as `null`** — JSON has no NaN/Inf tokens,
//!   and p-values of non-computable genes are NaN. The protocol layer maps
//!   `null` back to NaN when decoding float arrays.
//! - **`u64` values ride as strings** when they may exceed 2⁵³ (seeds,
//!   digests): a JSON number is an f64 on both ends, which silently rounds
//!   large integers. [`Json::as_u64`] accepts both forms.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order (a `Vec`, not a map): the
/// protocol never has enough keys for lookup cost to matter, and stable order
/// makes wire output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A `u64` as a string value (lossless for the full range — see the
    /// module docs).
    pub fn u64_str(n: u64) -> Json {
        Json::Str(n.to_string())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned integer payload: either an integral non-negative number
    /// (exact below 2⁵³) or a decimal string (exact for all of `u64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Boolean payload, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize to a single-line JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // f64 Display round-trips and never emits an exponent or
                    // a bare leading dot, so it is always a valid JSON number.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry a byte offset and a short reason.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(value)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected byte {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii run");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number {text:?}")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        other => {
                            return Err(self.err(&format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Num(0.0)),
            ("-1.5", Json::Num(-1.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value);
            assert_eq!(Json::parse(&value.to_json()).unwrap(), value);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj(vec![
            ("cmd", Json::str("submit")),
            ("b", Json::Num(10_000.0)),
            (
                "arr",
                Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Bool(false)]),
            ),
            ("nested", Json::obj(vec![("k", Json::str("v"))])),
        ]);
        let text = v.to_json();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("submit"));
        assert_eq!(v.get("b").unwrap().as_u64(), Some(10_000));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nbreak \"quote\" back\\slash tab\t control\u{1} snowman ☃";
        let text = Json::Str(s.into()).to_json();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
        // Escaped forms parse too.
        assert_eq!(
            Json::parse(r#""\u2603 \ud83d\ude00""#).unwrap().as_str(),
            Some("☃ 😀")
        );
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_json(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_json(), "null");
        assert_eq!(Json::Num(0.25).to_json(), "0.25");
    }

    #[test]
    fn u64_rides_as_string_losslessly() {
        let n = u64::MAX - 7;
        let v = Json::u64_str(n);
        assert_eq!(Json::parse(&v.to_json()).unwrap().as_u64(), Some(n));
        // Small integral numbers also decode.
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "\"open", "01x", "{}extra", "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
