//! Crash-consistent storage primitives for the job service.
//!
//! A durability claim is only as strong as its weakest write. A bare
//! `fs::write` + `rename` — the idiom this tree used before the journal —
//! has two crash holes: the rename can become durable *before* the data it
//! points at (a power cut leaves a zero-length or torn file under the final
//! name), and a fixed-name temporary lets two concurrent writers to the
//! same key tear each other. [`atomic_write`] closes both:
//!
//! 1. write the full payload to a **unique** temporary sibling
//!    (`.<name>.<pid>.<seq>.tmp` — pid plus a process-wide sequence number,
//!    so concurrent writers never collide),
//! 2. `fsync` the temporary (data durable before it becomes visible),
//! 3. `rename` over the target (atomic replacement on POSIX),
//! 4. `fsync` the parent directory (the rename itself durable).
//!
//! A crash between any two steps leaves either the old content or the new
//! content under the target name — never a mix — plus at worst one stray
//! `.*.tmp` sibling, which every reader in this tree ignores. Journal
//! compaction ([`crate::journal`]) and bootstrap cache entries
//! ([`crate::cache`]) write through this function. Checkpoint files take
//! the same four steps inside `sprint::checkpoint::save`, which sits below
//! this crate in the dependency order and carries its own copy of the
//! sequence (without injection hooks).
//!
//! Fault injection: [`FaultKind::DiskFull`] rejects the write up front
//! (ENOSPC from a full disk) and [`FaultKind::FsyncFail`] fails the
//! temporary's fsync (EIO from a dying disk). Both leave the previous
//! target content intact. The `storage.tmp` / `storage.rename` crash
//! points mark the two in-between states a power cut could expose.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::faults::{crash_point, FaultKind, Faults};

/// Process-wide temporary-name sequence; combined with the pid it makes
/// every temporary unique even when two threads write the same target.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique hidden temporary sibling of `path`.
pub fn unique_tmp(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    path.with_file_name(format!(".{name}.{}.{seq}.tmp", std::process::id()))
}

/// fsync a directory, making renames inside it durable. Some filesystems
/// reject opening a directory for sync; those also don't need it, so
/// NotFound/unsupported errors are the caller's to ignore — here we only
/// surface real I/O errors.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// The injected ENOSPC stand-in.
fn injected_enospc() -> io::Error {
    io::Error::other("injected disk_full (SPRINT_FAULTS): no space left on device")
}

/// The injected EIO stand-in.
fn injected_eio() -> io::Error {
    io::Error::other("injected fsync_fail (SPRINT_FAULTS): fsync: I/O error")
}

/// Atomically replace `path` with `bytes`, crash-consistently: unique tmp →
/// fsync file → rename → fsync parent dir. On any error (including injected
/// disk faults) the previous content of `path` is untouched and the
/// temporary is removed.
pub fn atomic_write(path: &Path, bytes: &[u8], faults: &Faults) -> io::Result<()> {
    if faults.fire(FaultKind::DiskFull) {
        return Err(injected_enospc());
    }
    let tmp = unique_tmp(path);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        if faults.fire(FaultKind::FsyncFail) {
            return Err(injected_eio());
        }
        file.sync_all()?;
        crash_point("storage.tmp");
        std::fs::rename(&tmp, path)?;
        crash_point("storage.rename");
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fsync_dir(parent)?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sprint-storage-{name}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn stray_tmps(dir: &Path) -> usize {
        std::fs::read_dir(dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .count()
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = tmpdir("replace");
        let path = dir.join("target.txt");
        atomic_write(&path, b"first", &Faults::disabled()).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second", &Faults::disabled()).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert_eq!(stray_tmps(&dir), 0, "no stray temporaries after success");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unique_tmp_names_never_collide() {
        let path = Path::new("/tmp/some/file.bin");
        let a = unique_tmp(path);
        let b = unique_tmp(path);
        assert_ne!(a, b);
        assert!(a.file_name().unwrap().to_string_lossy().ends_with(".tmp"));
        assert!(a.file_name().unwrap().to_string_lossy().starts_with('.'));
        assert_eq!(a.parent(), path.parent());
    }

    #[test]
    fn injected_disk_faults_fail_the_write_and_keep_old_content() {
        let dir = tmpdir("faults");
        let path = dir.join("target.txt");
        atomic_write(&path, b"stable", &Faults::disabled()).unwrap();

        let full = Faults::builder().prob(FaultKind::DiskFull, 1.0).build();
        let err = atomic_write(&path, b"lost", &full).unwrap_err();
        assert!(err.to_string().contains("disk_full"), "{err}");

        let eio = Faults::builder().prob(FaultKind::FsyncFail, 1.0).build();
        let err = atomic_write(&path, b"lost", &eio).unwrap_err();
        assert!(err.to_string().contains("fsync_fail"), "{err}");

        assert_eq!(std::fs::read(&path).unwrap(), b"stable");
        assert_eq!(stray_tmps(&dir), 0, "failed writes clean their tmp");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_to_one_target_never_tear() {
        let dir = tmpdir("concurrent");
        let path = dir.join("target.txt");
        let threads: Vec<_> = (0..8u8)
            .map(|i| {
                let path = path.clone();
                std::thread::spawn(move || {
                    let payload = vec![b'a' + i; 4096];
                    for _ in 0..20 {
                        atomic_write(&path, &payload, &Faults::disabled()).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Whatever writer won, the file is one writer's payload in full.
        let got = std::fs::read(&path).unwrap();
        assert_eq!(got.len(), 4096);
        assert!(got.windows(2).all(|w| w[0] == w[1]), "torn mix of writers");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
