//! Content-addressed result cache backed by the checkpoint format.
//!
//! A cache entry **is** a checkpoint file (`pmaxt-checkpoint-v1`, see
//! [`sprint::checkpoint`]): the pair (cursor, partial counts) of one
//! deterministic permutation stream. The entry's identity — its file name —
//! is the pair of digests that pin that stream down:
//!
//! - [`sprint_core::digest::dataset_digest`] over every data bit and label,
//! - [`sprint_core::digest::stream_digest`] over the result-relevant options
//!   with `B` collapsed to a complete-vs-Monte-Carlo flag.
//!
//! Collapsing `B` is what makes **incremental extension** a cache hit: runs
//! that differ only in their Monte-Carlo permutation count share one stream
//! prefix (`len` is only a cap — the j-th arrangement never depends on the
//! total), so an entry computed for `B` is a valid prefix state for any
//! `B′ > B`. Implementation knobs (kernel, threads, batch) are canonicalized
//! away entirely: any geometry produces bitwise-identical counts.
//!
//! Because every entry is a prefix state of one deterministic stream, *any*
//! consistent entry is reusable — concurrent writers can only replace one
//! valid prefix with another. The probe logic is therefore a pure function of
//! the stored cursor versus the requested count.

use std::io;
use std::path::{Path, PathBuf};

use sprint::checkpoint::{self, CheckpointState};
use sprint_core::boot::BootstrapResult;
use sprint_core::digest::{self, Fnv1a};
use sprint_core::matrix::Matrix;
use sprint_core::options::PmaxtOptions;

use crate::faults::{crash_point, FaultKind, Faults};
use crate::json::Json;
use crate::protocol;
use crate::storage;

/// Name of the subdirectory corrupt entries are moved into by the startup
/// scan (see [`ResultCache::open_with`]).
pub const QUARANTINE_DIR: &str = "quarantine";

/// Identity of a permutation stream: which data, which result-relevant
/// options (minus the permutation count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Digest of the (NA-canonicalized) data matrix and class labels.
    pub dataset: u64,
    /// Digest of the options with `B` collapsed (see module docs).
    pub stream: u64,
}

impl CacheKey {
    /// Key for a run. `data` must already be NA-canonicalized (the manager
    /// canonicalizes before digesting, so differently-encoded but identical
    /// datasets share entries).
    pub fn new(data: &Matrix, classlabel: &[u8], opts: &PmaxtOptions) -> CacheKey {
        CacheKey {
            dataset: digest::dataset_digest(data, classlabel),
            stream: digest::stream_digest(opts),
        }
    }

    /// Hex form used as the entry file stem and the wire-visible key.
    pub fn hex(&self) -> String {
        format!("{:016x}-{:016x}", self.dataset, self.stream)
    }

    /// The digest written into the checkpoint file's `digest` field, so an
    /// entry self-validates even if renamed.
    pub fn check_digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.dataset);
        h.write_u64(self.stream);
        h.finish()
    }
}

/// What a cache probe found for a requested permutation count `b`.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheProbe {
    /// No (valid) entry: compute from scratch, store spans as they finish.
    Miss,
    /// Entry with `cursor == b`: the result is fully determined by the stored
    /// counts — finalize without computing anything.
    Hit(CheckpointState),
    /// Entry with `cursor < b`: resume/extend from the stored prefix and
    /// compute only permutations `cursor..b`.
    Partial(CheckpointState),
    /// Entry with `cursor > b`: the stored counts cover *more* permutations
    /// than requested and integer counts cannot be truncated. Compute fresh
    /// and do **not** write spans, so the longer cached prefix survives.
    Beyond,
}

/// A directory of checkpoint-format cache entries, one per [`CacheKey`].
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    faults: Faults,
}

impl ResultCache {
    /// Open (creating if needed) a cache directory with fault injection
    /// disabled. Runs the startup quarantine scan (see [`open_with`]).
    ///
    /// [`open_with`]: ResultCache::open_with
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        Self::open_with(dir, Faults::disabled())
    }

    /// Open a cache directory with an injection registry attached, then scan
    /// it: every `*.ckpt` entry whose stored digest does not match the digest
    /// implied by its file name (or which fails to parse at all) is moved
    /// into `quarantine/` rather than deleted — corruption is survivable but
    /// worth a post-mortem, so the evidence is preserved. Probes then see the
    /// key as a miss and the job recomputes from scratch.
    pub fn open_with(dir: impl Into<PathBuf>, faults: Faults) -> io::Result<ResultCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let cache = ResultCache { dir, faults };
        let quarantined = cache.quarantine_scan()?;
        if quarantined > 0 {
            eprintln!(
                "jobd: quarantined {quarantined} corrupt cache entr{} into {}",
                if quarantined == 1 { "y" } else { "ies" },
                cache.dir.join(QUARANTINE_DIR).display()
            );
        }
        Ok(cache)
    }

    /// Move every invalid entry into `quarantine/`; returns how many moved.
    /// An entry is invalid when its name is not `{dataset:016x}-{stream:016x}`,
    /// it fails to parse as a checkpoint, or its self-check digest disagrees
    /// with the digests its name claims.
    fn quarantine_scan(&self) -> io::Result<usize> {
        let mut moved = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("ckpt") || !path.is_file() {
                continue;
            }
            if self.entry_is_valid(&path) {
                continue;
            }
            let qdir = self.dir.join(QUARANTINE_DIR);
            std::fs::create_dir_all(&qdir)?;
            // file_name() is Some: read_dir never yields `..`-style paths.
            let dest = qdir.join(path.file_name().unwrap_or_default());
            std::fs::rename(&path, &dest)?;
            moved += 1;
        }
        Ok(moved)
    }

    /// Does `path` hold a checkpoint whose digest matches its file name?
    fn entry_is_valid(&self, path: &Path) -> bool {
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            return false;
        };
        let Some((dataset_hex, stream_hex)) = stem.split_once('-') else {
            return false;
        };
        let (Ok(dataset), Ok(stream)) = (
            u64::from_str_radix(dataset_hex, 16),
            u64::from_str_radix(stream_hex, 16),
        ) else {
            return false;
        };
        let expect = CacheKey { dataset, stream }.check_digest();
        matches!(checkpoint::load(path), Ok(Some(state)) if state.digest == expect)
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `key`.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.ckpt", key.hex()))
    }

    /// Probe the cache for a run of `b` permutations on `key`'s stream.
    /// Unreadable, corrupt or digest-mismatched entries degrade to a miss —
    /// the cache is an accelerator, never a correctness dependency.
    pub fn probe(&self, key: &CacheKey, b: u64) -> CacheProbe {
        let state = match checkpoint::load(&self.entry_path(key)) {
            Ok(Some(state)) if state.digest == key.check_digest() => state,
            _ => return CacheProbe::Miss,
        };
        match state.cursor.cmp(&b) {
            std::cmp::Ordering::Equal => CacheProbe::Hit(state),
            std::cmp::Ordering::Less => CacheProbe::Partial(state),
            std::cmp::Ordering::Greater => CacheProbe::Beyond,
        }
    }

    /// Path of the bootstrap entry for `key`.
    pub fn boot_entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.boot", key.hex()))
    }

    /// Probe for a finished bootstrap run of exactly `b` draws. Unlike
    /// permutation checkpoints, a bootstrap entry stores finalized interval
    /// estimates — quantiles are order statistics of the *whole* replicate
    /// set, so a shorter run is not a prefix of a longer one and only an
    /// exact draw-count match is servable. Anything else (absent, corrupt,
    /// digest-mismatched, different `b`) degrades to `None`.
    pub fn probe_boot(&self, key: &CacheKey, b: u64) -> Option<BootstrapResult> {
        let text = std::fs::read_to_string(self.boot_entry_path(key)).ok()?;
        let entry = Json::parse(text.trim()).ok()?;
        if entry.get("digest")?.as_u64()? != key.check_digest() {
            return None;
        }
        if entry.get("b")?.as_u64()? != b {
            return None;
        }
        protocol::boot_from_json(&entry).ok()
    }

    /// Write (atomically replace) the bootstrap entry for `key`: one JSON
    /// line of bit-pattern arrays plus the self-check digest and the draw
    /// count the run was requested with.
    pub fn store_boot(&self, key: &CacheKey, b: u64, result: &BootstrapResult) -> io::Result<()> {
        let mut fields = vec![
            ("digest", Json::u64_str(key.check_digest())),
            ("b", Json::u64_str(b)),
        ];
        fields.extend(protocol::boot_to_json(result));
        let mut line = Json::obj(fields).to_json();
        line.push('\n');
        let path = self.boot_entry_path(key);
        // A unique tmp per write: the old fixed-name `.boot.tmp` let two
        // concurrent writers of the same key tear each other's rename.
        storage::atomic_write(&path, line.as_bytes(), &self.faults)?;
        crash_point("cache.store");
        if self.faults.fire(FaultKind::CacheCorrupt) {
            let bytes = std::fs::read(&path)?;
            std::fs::write(&path, &bytes[..bytes.len() / 2])?;
        }
        Ok(())
    }

    /// Write (atomically replace) the entry for `key`.
    pub fn store(&self, key: &CacheKey, state: &CheckpointState) -> io::Result<()> {
        debug_assert_eq!(state.digest, key.check_digest(), "entry digest mismatch");
        let path = self.entry_path(key);
        checkpoint::save(&path, state)?;
        crash_point("cache.store");
        if self.faults.fire(FaultKind::CacheCorrupt) {
            // Injected torn write: truncate the just-written entry to half.
            // The parse then fails, so the next probe degrades the key to a
            // miss (or the next startup scan quarantines the file) — the
            // corruption is detectable, like a real partial write.
            let bytes = std::fs::read(&path)?;
            std::fs::write(&path, &bytes[..bytes.len() / 2])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_core::maxt::CountAccumulator;

    fn tmp_cache(name: &str) -> ResultCache {
        let mut dir = std::env::temp_dir();
        dir.push(format!("sprint-jobd-cache-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ResultCache::open(dir).unwrap()
    }

    fn sample_key() -> CacheKey {
        let data = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0]).unwrap();
        CacheKey::new(&data, &[0, 0, 1, 1], &PmaxtOptions::default())
    }

    fn state_at(key: &CacheKey, cursor: u64, b: u64) -> CheckpointState {
        CheckpointState {
            digest: key.check_digest(),
            cursor,
            b,
            counts: CountAccumulator {
                count_raw: vec![cursor, 0],
                count_adj: vec![0, cursor],
                n_perm: cursor,
            },
        }
    }

    #[test]
    fn key_collapses_permutation_count_but_not_seed() {
        let data = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0]).unwrap();
        let labels = [0u8, 0, 1, 1];
        let base = CacheKey::new(&data, &labels, &PmaxtOptions::default().permutations(100));
        let longer = CacheKey::new(&data, &labels, &PmaxtOptions::default().permutations(5000));
        assert_eq!(base, longer, "B must not enter the key (extension)");
        let reseeded = CacheKey::new(&data, &labels, &PmaxtOptions::default().seed(9));
        assert_ne!(base, reseeded);
        let complete = CacheKey::new(&data, &labels, &PmaxtOptions::default().permutations(0));
        assert_ne!(base, complete, "complete enumeration is a distinct stream");
    }

    #[test]
    fn probe_classifies_by_cursor() {
        let cache = tmp_cache("classify");
        let key = sample_key();
        assert_eq!(cache.probe(&key, 50), CacheProbe::Miss);
        cache.store(&key, &state_at(&key, 30, 50)).unwrap();
        assert!(matches!(cache.probe(&key, 50), CacheProbe::Partial(s) if s.cursor == 30));
        assert!(matches!(cache.probe(&key, 30), CacheProbe::Hit(s) if s.cursor == 30));
        assert_eq!(cache.probe(&key, 10), CacheProbe::Beyond);
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn startup_scan_quarantines_corrupt_entries_and_keeps_valid_ones() {
        let cache = tmp_cache("quarantine");
        let key = sample_key();
        cache.store(&key, &state_at(&key, 30, 50)).unwrap();
        // A second, corrupt entry under a well-formed name.
        let other = CacheKey {
            dataset: key.dataset ^ 0xff,
            stream: key.stream,
        };
        std::fs::write(cache.entry_path(&other), "torn write").unwrap();
        // And a parseable entry whose digest disagrees with its file name.
        let renamed = CacheKey {
            dataset: key.dataset,
            stream: key.stream ^ 0xff,
        };
        let mut bogus = state_at(&key, 5, 10);
        bogus.digest ^= 1;
        checkpoint::save(&cache.entry_path(&renamed), &bogus).unwrap();

        let dir = cache.dir().to_path_buf();
        drop(cache);
        let cache = ResultCache::open(&dir).unwrap();
        // The valid entry survived in place; the two bad ones moved.
        assert!(matches!(cache.probe(&key, 50), CacheProbe::Partial(s) if s.cursor == 30));
        assert!(!cache.entry_path(&other).exists());
        assert!(!cache.entry_path(&renamed).exists());
        let qdir = cache.dir().join(QUARANTINE_DIR);
        assert_eq!(std::fs::read_dir(&qdir).unwrap().count(), 2);
        // Re-opening is idempotent: nothing further to quarantine.
        drop(cache);
        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.entry_path(&key).exists());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn injected_corruption_is_detectable_and_degrades_to_miss() {
        use crate::faults::{FaultKind, Faults};
        let mut dir = std::env::temp_dir();
        dir.push(format!("sprint-jobd-cache-{}-inject", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let faults = Faults::builder().prob(FaultKind::CacheCorrupt, 1.0).build();
        let cache = ResultCache::open_with(&dir, faults.clone()).unwrap();
        let key = sample_key();
        cache.store(&key, &state_at(&key, 30, 50)).unwrap();
        assert_eq!(faults.fired(FaultKind::CacheCorrupt), 1);
        // The torn entry must never be served as a partial prefix.
        assert_eq!(cache.probe(&key, 50), CacheProbe::Miss);
        // A fresh open quarantines it.
        drop(cache);
        let cache = ResultCache::open(&dir).unwrap();
        assert!(!cache.entry_path(&key).exists());
        assert!(dir.join(QUARANTINE_DIR).read_dir().unwrap().count() >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn boot_entries_hit_only_on_exact_draw_count() {
        let cache = tmp_cache("boot");
        let key = sample_key();
        let r = BootstrapResult {
            offset: 0,
            theta: vec![1.5, f64::NAN],
            se: vec![0.2, f64::NAN],
            pct_lo: vec![1.0, f64::NAN],
            pct_hi: vec![2.0, f64::NAN],
            bca_lo: vec![1.1, f64::NAN],
            bca_hi: vec![2.1, f64::NAN],
            replicates: 199,
            level: 0.95,
        };
        assert!(cache.probe_boot(&key, 200).is_none());
        cache.store_boot(&key, 200, &r).unwrap();
        let back = cache.probe_boot(&key, 200).expect("exact-b probe hits");
        assert_eq!(back.replicates, 199);
        assert_eq!(back.theta[0].to_bits(), r.theta[0].to_bits());
        assert!(back.theta[1].is_nan());
        // A different draw count is a miss (no prefix semantics for order
        // statistics), as is a corrupt entry.
        assert!(cache.probe_boot(&key, 400).is_none());
        std::fs::write(cache.boot_entry_path(&key), "torn").unwrap();
        assert!(cache.probe_boot(&key, 200).is_none());
        // Boot and checkpoint entries coexist under one key.
        cache.store(&key, &state_at(&key, 30, 50)).unwrap();
        cache.store_boot(&key, 200, &r).unwrap();
        assert!(matches!(cache.probe(&key, 50), CacheProbe::Partial(_)));
        assert!(cache.probe_boot(&key, 200).is_some());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn corrupt_or_mismatched_entries_degrade_to_miss() {
        let cache = tmp_cache("corrupt");
        let key = sample_key();
        std::fs::write(cache.entry_path(&key), "not a checkpoint").unwrap();
        assert_eq!(cache.probe(&key, 10), CacheProbe::Miss);
        // Valid file, wrong digest (e.g. renamed from another key).
        let mut state = state_at(&key, 5, 10);
        state.digest ^= 1;
        checkpoint::save(&cache.entry_path(&key), &state).unwrap();
        assert_eq!(cache.probe(&key, 10), CacheProbe::Miss);
        std::fs::remove_dir_all(cache.dir()).ok();
    }
}
