//! Content-addressed result cache backed by the checkpoint format.
//!
//! A cache entry **is** a checkpoint file (`pmaxt-checkpoint-v1`, see
//! [`sprint::checkpoint`]): the pair (cursor, partial counts) of one
//! deterministic permutation stream. The entry's identity — its file name —
//! is the pair of digests that pin that stream down:
//!
//! - [`sprint_core::digest::dataset_digest`] over every data bit and label,
//! - [`sprint_core::digest::stream_digest`] over the result-relevant options
//!   with `B` collapsed to a complete-vs-Monte-Carlo flag.
//!
//! Collapsing `B` is what makes **incremental extension** a cache hit: runs
//! that differ only in their Monte-Carlo permutation count share one stream
//! prefix (`len` is only a cap — the j-th arrangement never depends on the
//! total), so an entry computed for `B` is a valid prefix state for any
//! `B′ > B`. Implementation knobs (kernel, threads, batch) are canonicalized
//! away entirely: any geometry produces bitwise-identical counts.
//!
//! Because every entry is a prefix state of one deterministic stream, *any*
//! consistent entry is reusable — concurrent writers can only replace one
//! valid prefix with another. The probe logic is therefore a pure function of
//! the stored cursor versus the requested count.

use std::io;
use std::path::{Path, PathBuf};

use sprint::checkpoint::{self, CheckpointState};
use sprint_core::digest::{self, Fnv1a};
use sprint_core::matrix::Matrix;
use sprint_core::options::PmaxtOptions;

/// Identity of a permutation stream: which data, which result-relevant
/// options (minus the permutation count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Digest of the (NA-canonicalized) data matrix and class labels.
    pub dataset: u64,
    /// Digest of the options with `B` collapsed (see module docs).
    pub stream: u64,
}

impl CacheKey {
    /// Key for a run. `data` must already be NA-canonicalized (the manager
    /// canonicalizes before digesting, so differently-encoded but identical
    /// datasets share entries).
    pub fn new(data: &Matrix, classlabel: &[u8], opts: &PmaxtOptions) -> CacheKey {
        CacheKey {
            dataset: digest::dataset_digest(data, classlabel),
            stream: digest::stream_digest(opts),
        }
    }

    /// Hex form used as the entry file stem and the wire-visible key.
    pub fn hex(&self) -> String {
        format!("{:016x}-{:016x}", self.dataset, self.stream)
    }

    /// The digest written into the checkpoint file's `digest` field, so an
    /// entry self-validates even if renamed.
    pub fn check_digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.dataset);
        h.write_u64(self.stream);
        h.finish()
    }
}

/// What a cache probe found for a requested permutation count `b`.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheProbe {
    /// No (valid) entry: compute from scratch, store spans as they finish.
    Miss,
    /// Entry with `cursor == b`: the result is fully determined by the stored
    /// counts — finalize without computing anything.
    Hit(CheckpointState),
    /// Entry with `cursor < b`: resume/extend from the stored prefix and
    /// compute only permutations `cursor..b`.
    Partial(CheckpointState),
    /// Entry with `cursor > b`: the stored counts cover *more* permutations
    /// than requested and integer counts cannot be truncated. Compute fresh
    /// and do **not** write spans, so the longer cached prefix survives.
    Beyond,
}

/// A directory of checkpoint-format cache entries, one per [`CacheKey`].
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `key`.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.ckpt", key.hex()))
    }

    /// Probe the cache for a run of `b` permutations on `key`'s stream.
    /// Unreadable, corrupt or digest-mismatched entries degrade to a miss —
    /// the cache is an accelerator, never a correctness dependency.
    pub fn probe(&self, key: &CacheKey, b: u64) -> CacheProbe {
        let state = match checkpoint::load(&self.entry_path(key)) {
            Ok(Some(state)) if state.digest == key.check_digest() => state,
            _ => return CacheProbe::Miss,
        };
        match state.cursor.cmp(&b) {
            std::cmp::Ordering::Equal => CacheProbe::Hit(state),
            std::cmp::Ordering::Less => CacheProbe::Partial(state),
            std::cmp::Ordering::Greater => CacheProbe::Beyond,
        }
    }

    /// Write (atomically replace) the entry for `key`.
    pub fn store(&self, key: &CacheKey, state: &CheckpointState) -> io::Result<()> {
        debug_assert_eq!(state.digest, key.check_digest(), "entry digest mismatch");
        checkpoint::save(&self.entry_path(key), state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_core::maxt::CountAccumulator;

    fn tmp_cache(name: &str) -> ResultCache {
        let mut dir = std::env::temp_dir();
        dir.push(format!("sprint-jobd-cache-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ResultCache::open(dir).unwrap()
    }

    fn sample_key() -> CacheKey {
        let data = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0]).unwrap();
        CacheKey::new(&data, &[0, 0, 1, 1], &PmaxtOptions::default())
    }

    fn state_at(key: &CacheKey, cursor: u64, b: u64) -> CheckpointState {
        CheckpointState {
            digest: key.check_digest(),
            cursor,
            b,
            counts: CountAccumulator {
                count_raw: vec![cursor, 0],
                count_adj: vec![0, cursor],
                n_perm: cursor,
            },
        }
    }

    #[test]
    fn key_collapses_permutation_count_but_not_seed() {
        let data = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0]).unwrap();
        let labels = [0u8, 0, 1, 1];
        let base = CacheKey::new(&data, &labels, &PmaxtOptions::default().permutations(100));
        let longer = CacheKey::new(&data, &labels, &PmaxtOptions::default().permutations(5000));
        assert_eq!(base, longer, "B must not enter the key (extension)");
        let reseeded = CacheKey::new(&data, &labels, &PmaxtOptions::default().seed(9));
        assert_ne!(base, reseeded);
        let complete = CacheKey::new(&data, &labels, &PmaxtOptions::default().permutations(0));
        assert_ne!(base, complete, "complete enumeration is a distinct stream");
    }

    #[test]
    fn probe_classifies_by_cursor() {
        let cache = tmp_cache("classify");
        let key = sample_key();
        assert_eq!(cache.probe(&key, 50), CacheProbe::Miss);
        cache.store(&key, &state_at(&key, 30, 50)).unwrap();
        assert!(matches!(cache.probe(&key, 50), CacheProbe::Partial(s) if s.cursor == 30));
        assert!(matches!(cache.probe(&key, 30), CacheProbe::Hit(s) if s.cursor == 30));
        assert_eq!(cache.probe(&key, 10), CacheProbe::Beyond);
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn corrupt_or_mismatched_entries_degrade_to_miss() {
        let cache = tmp_cache("corrupt");
        let key = sample_key();
        std::fs::write(cache.entry_path(&key), "not a checkpoint").unwrap();
        assert_eq!(cache.probe(&key, 10), CacheProbe::Miss);
        // Valid file, wrong digest (e.g. renamed from another key).
        let mut state = state_at(&key, 5, 10);
        state.digest ^= 1;
        checkpoint::save(&cache.entry_path(&key), &state).unwrap();
        assert_eq!(cache.probe(&key, 10), CacheProbe::Miss);
        std::fs::remove_dir_all(cache.dir()).ok();
    }
}
