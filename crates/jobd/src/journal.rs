//! Write-ahead job journal: accepted work survives daemon death.
//!
//! The manager's queue is memory; a `kill -9` of the daemon used to erase
//! every queued and running job without a trace. The journal closes that
//! hole: before a submission is acked, an *accept* record — carrying the
//! content digest, the dataset path and the full request options — is
//! appended to an on-disk log, and every later lifecycle transition
//! (started, finished, failed, cancelled) appends a follow-up record keyed
//! by the same `(digest, B, mode)` identity the dedup map uses. On restart
//! the manager replays the log, folds the lifecycle records, and resubmits
//! every job that never reached a terminal state; the checkpoint cache then
//! resumes each one from its last completed span, so recovery recomputes at
//! most one span per job.
//!
//! ## Record framing
//!
//! Each record is one frame: an 8-byte magic (`PMXJREC1`), a little-endian
//! `u32` payload length, a little-endian `u64` FNV-1a checksum of the
//! payload, then the payload itself (one JSON line, same dialect as the
//! wire protocol). The magic makes frames self-delimiting under damage:
//! replay decodes frames in order, and on a bad frame (wrong magic, absurd
//! length, checksum mismatch, unparseable payload) it *resyncs* by scanning
//! forward to the next magic — a record torn in the middle of the log loses
//! exactly itself, never its neighbours. A torn **tail** (no further magic)
//! is quarantined: the bytes are copied aside and the segment is truncated
//! at the last valid frame boundary, mirroring the cache quarantine scan.
//!
//! ## Segments, rotation, compaction
//!
//! Records append to numbered segments (`seg-000001.wal`, ...) under
//! `<cache>/journal/`; a segment over [`SEGMENT_ROTATE_BYTES`] is closed
//! and a new one started, so no single file grows without bound.
//! [`Journal::compact`] rewrites the live set (the accept records of jobs
//! still in flight) into one fresh segment via the crash-consistent
//! [`crate::storage::atomic_write`] and deletes the older segments — replay
//! is idempotent over duplicate records, so a crash anywhere inside
//! compaction is harmless. A drained shutdown compacts to an empty journal,
//! making the next startup instant.
//!
//! ## Durability modes (`pmaxt serve --durability`)
//!
//! [`Durability::Full`] fsyncs after every record, so an acked submission
//! is durable — at the price of one fsync on the accept path.
//! [`Durability::Batch`] (the serve default) writes records immediately but
//! group-commits: a flusher thread fsyncs every [`FLUSH_INTERVAL`], so a
//! crash can lose at most the final interval's acks while the accept path
//! stays at in-memory cost. [`Durability::Off`] keeps no journal at all —
//! the pre-journal behaviour, still useful for embedded or throwaway runs.

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use sprint_core::options::PmaxtOptions;

use crate::faults::{crash_point, FaultKind, Faults};
use crate::json::Json;
use crate::protocol;
use crate::storage;

/// Frame magic; also the resync landmark after a torn record.
pub const FRAME_MAGIC: [u8; 8] = *b"PMXJREC1";

/// Frame header size: magic + u32 length + u64 checksum.
const FRAME_HEADER: usize = 8 + 4 + 8;

/// Largest payload a frame may claim; anything bigger is damage.
const MAX_PAYLOAD: usize = 1 << 20;

/// A segment at or past this size is rotated before the next append.
pub const SEGMENT_ROTATE_BYTES: u64 = 1 << 20;

/// Group-commit interval of [`Durability::Batch`].
pub const FLUSH_INTERVAL: Duration = Duration::from_millis(25);

/// Subdirectory (inside the journal dir) where torn tails are kept.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Journal fsync policy — the `serve --durability` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// fsync per record: an acked submission is durable, at one fsync per
    /// accept.
    Full,
    /// Group commit: records are written immediately and fsynced every
    /// [`FLUSH_INTERVAL`]; a crash loses at most the last interval's acks.
    Batch,
    /// No journal. Daemon death loses queued and running jobs (checkpoints
    /// still bound recomputation on manual resubmit). The default for
    /// embedded [`crate::manager::JobManager`] use.
    #[default]
    Off,
}

impl Durability {
    /// Parse the `--durability` spelling.
    pub fn parse(s: &str) -> Option<Durability> {
        match s {
            "full" => Some(Durability::Full),
            "batch" => Some(Durability::Batch),
            "off" => Some(Durability::Off),
            _ => None,
        }
    }

    /// The flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Durability::Full => "full",
            Durability::Batch => "batch",
            Durability::Off => "off",
        }
    }
}

/// Lifecycle stage a record asserts for its job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Job validated and enqueued; the record carries everything needed to
    /// resubmit (source path + options).
    Accepted,
    /// A worker claimed the job.
    Started,
    /// Terminal: result computed and checkpointed.
    Finished,
    /// Terminal: cancelled by a client.
    Cancelled,
    /// Terminal: failed (the record carries the error).
    Failed,
}

impl RecordKind {
    /// The payload spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::Accepted => "accepted",
            RecordKind::Started => "started",
            RecordKind::Finished => "finished",
            RecordKind::Cancelled => "cancelled",
            RecordKind::Failed => "failed",
        }
    }

    /// Parse the payload spelling.
    pub fn parse(s: &str) -> Option<RecordKind> {
        match s {
            "accepted" => Some(RecordKind::Accepted),
            "started" => Some(RecordKind::Started),
            "finished" => Some(RecordKind::Finished),
            "cancelled" => Some(RecordKind::Cancelled),
            "failed" => Some(RecordKind::Failed),
            _ => None,
        }
    }

    /// True for the three states a job never leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            RecordKind::Finished | RecordKind::Cancelled | RecordKind::Failed
        )
    }
}

/// One journal record. Identity is `(key, b, mode)` — the same triple the
/// manager's dedup map uses, so replayed records fold onto the jobs the
/// clients actually see.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Lifecycle stage.
    pub kind: RecordKind,
    /// Hex cache key (dataset digest + stream digest).
    pub key: String,
    /// Resolved permutation total.
    pub b: u64,
    /// Run-mode tag (`exact`/`adaptive`; bootstrap jobs ride as `exact`,
    /// matching the dedup key, and are told apart by `opts.workload`).
    pub mode: String,
    /// Dataset path to re-read on recovery (accept records of file-backed
    /// submissions; in-process submissions have none and are reported as
    /// unrecoverable if still live at replay).
    pub source: Option<String>,
    /// Full request options (accept records only).
    pub opts: Option<PmaxtOptions>,
    /// Failure message (failed records only).
    pub error: Option<String>,
}

impl JournalRecord {
    /// A bare lifecycle record (started/terminal) for an identity.
    pub fn transition(kind: RecordKind, key: &str, b: u64, mode: &str) -> JournalRecord {
        JournalRecord {
            kind,
            key: key.to_string(),
            b,
            mode: mode.to_string(),
            source: None,
            opts: None,
            error: None,
        }
    }
}

/// FNV-1a over the payload bytes — same family as the cache digests, cheap
/// and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn record_to_json(rec: &JournalRecord) -> Json {
    let mut pairs = vec![
        ("rec".to_string(), Json::str(rec.kind.as_str())),
        ("key".to_string(), Json::str(&rec.key)),
        ("b".to_string(), Json::u64_str(rec.b)),
        ("mode".to_string(), Json::str(&rec.mode)),
    ];
    if let Some(source) = &rec.source {
        pairs.push(("source".to_string(), Json::str(source)));
    }
    if let Some(opts) = &rec.opts {
        pairs.push(("opts".to_string(), Json::Obj(protocol::opts_to_pairs(opts))));
    }
    if let Some(error) = &rec.error {
        pairs.push(("error".to_string(), Json::str(error)));
    }
    Json::Obj(pairs)
}

fn record_from_json(v: &Json) -> Option<JournalRecord> {
    let kind = RecordKind::parse(v.get("rec")?.as_str()?)?;
    let key = v.get("key")?.as_str()?.to_string();
    let b = v.get("b")?.as_u64()?;
    let mode = v.get("mode")?.as_str()?.to_string();
    let source = match v.get("source") {
        Some(s) => Some(s.as_str()?.to_string()),
        None => None,
    };
    let opts = match v.get("opts") {
        Some(o) => Some(protocol::opts_from_request(o).ok()?),
        None => None,
    };
    let error = match v.get("error") {
        Some(e) => Some(e.as_str()?.to_string()),
        None => None,
    };
    Some(JournalRecord {
        kind,
        key,
        b,
        mode,
        source,
        opts,
        error,
    })
}

/// Encode one record as a framed byte sequence (magic + length + checksum +
/// JSON payload).
pub fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let payload = record_to_json(rec).to_json();
    let payload = payload.as_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// What [`decode_buffer`] recovered from a segment's bytes.
#[derive(Debug, Default)]
pub struct DecodeOutcome {
    /// Every cleanly decoded record, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte offset just past the last cleanly decoded frame — the safe
    /// truncation point for a torn tail.
    pub valid_len: usize,
    /// Bytes skipped by mid-buffer resyncs (torn records with intact
    /// successors).
    pub skipped: u64,
    /// How many resync scans ran.
    pub resyncs: u64,
}

/// Decode one frame at the start of `buf`. Returns the record and the frame
/// length, or `None` for any damage (bad magic, absurd length, truncation,
/// checksum mismatch, unparseable payload).
fn decode_frame(buf: &[u8]) -> Option<(JournalRecord, usize)> {
    if buf.len() < FRAME_HEADER || buf[..8] != FRAME_MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD || buf.len() < FRAME_HEADER + len {
        return None;
    }
    let sum = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    let payload = &buf[FRAME_HEADER..FRAME_HEADER + len];
    if fnv1a(payload) != sum {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let rec = record_from_json(&Json::parse(text).ok()?)?;
    Some((rec, FRAME_HEADER + len))
}

/// Decode a whole segment buffer, resyncing past damaged frames. Records
/// after a mid-buffer tear are still recovered (the magic is the landmark);
/// only an unreadable tail is left behind `valid_len`.
pub fn decode_buffer(buf: &[u8]) -> DecodeOutcome {
    let mut out = DecodeOutcome::default();
    let mut off = 0usize;
    while off < buf.len() {
        if let Some((rec, frame_len)) = decode_frame(&buf[off..]) {
            out.records.push(rec);
            off += frame_len;
            out.valid_len = off;
            continue;
        }
        // Damaged frame: scan forward for the next magic.
        out.resyncs += 1;
        let next = buf[off + 1..]
            .windows(FRAME_MAGIC.len())
            .position(|w| w == FRAME_MAGIC)
            .map(|p| off + 1 + p);
        match next {
            Some(next) => {
                out.skipped += (next - off) as u64;
                off = next;
            }
            None => break, // torn tail — everything past valid_len is damage
        }
    }
    out
}

/// What replay found across all segments at [`Journal::open`].
#[derive(Debug, Default)]
pub struct Replay {
    /// Every record, across segments, in append order.
    pub records: Vec<JournalRecord>,
    /// Segments replayed.
    pub segments: usize,
    /// Torn-tail bytes truncated and quarantined.
    pub torn_bytes: u64,
    /// Mid-segment resyncs (torn records skipped without truncation).
    pub resyncs: u64,
}

/// Fold a replayed record sequence down to the accept records of jobs that
/// never reached a terminal state, in first-accept order. These are the
/// jobs recovery must resubmit.
pub fn fold_pending(records: &[JournalRecord]) -> Vec<JournalRecord> {
    type Identity = (String, u64, String);
    let mut order: Vec<Identity> = Vec::new();
    let mut state: HashMap<Identity, (Option<JournalRecord>, bool)> = HashMap::new();
    for rec in records {
        let id = (rec.key.clone(), rec.b, rec.mode.clone());
        let entry = state.entry(id.clone()).or_insert_with(|| {
            order.push(id);
            (None, false)
        });
        match rec.kind {
            RecordKind::Accepted => {
                entry.0 = Some(rec.clone());
                entry.1 = true;
            }
            RecordKind::Started => {}
            RecordKind::Finished | RecordKind::Cancelled | RecordKind::Failed => entry.1 = false,
        }
    }
    order
        .iter()
        .filter_map(|id| {
            let (accept, live) = &state[id];
            if *live {
                accept.clone()
            } else {
                None
            }
        })
        .collect()
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:06}.wal"))
}

/// `(index, path)` of every segment in `dir`, ascending.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".wal"))
            .and_then(|num| num.parse::<u64>().ok())
        {
            segs.push((idx, entry.path()));
        }
    }
    segs.sort_unstable_by_key(|(idx, _)| *idx);
    Ok(segs)
}

/// The active segment writer.
#[derive(Debug)]
struct Writer {
    file: std::fs::File,
    index: u64,
    len: u64,
    /// Unsynced bytes pending a group commit (Batch mode).
    dirty: bool,
}

impl Writer {
    fn open(dir: &Path, index: u64) -> io::Result<Writer> {
        let path = segment_path(dir, index);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let len = file.metadata()?.len();
        Ok(Writer {
            file,
            index,
            len,
            dirty: false,
        })
    }
}

fn injected_eio() -> io::Error {
    io::Error::other("injected fsync_fail (SPRINT_FAULTS): fsync: I/O error")
}

fn injected_enospc() -> io::Error {
    io::Error::other("injected disk_full (SPRINT_FAULTS): no space left on device")
}

/// fsync the active segment if it has unsynced appends.
fn flush_writer(w: &mut Writer, faults: &Faults) -> io::Result<()> {
    if !w.dirty {
        return Ok(());
    }
    if faults.fire(FaultKind::FsyncFail) {
        return Err(injected_eio());
    }
    w.file.sync_data()?;
    crash_point("journal.fsync");
    w.dirty = false;
    Ok(())
}

/// The write-ahead job journal (see the module docs for the format and the
/// recovery contract). One per daemon, living under the cache directory.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    mode: Durability,
    faults: Faults,
    writer: Arc<Mutex<Writer>>,
    stop: Arc<AtomicBool>,
    flusher: Option<thread::JoinHandle<()>>,
}

impl Journal {
    /// Open (or create) the journal under `dir`, replaying every existing
    /// segment. Torn tails are truncated at the last valid frame and their
    /// bytes quarantined under `dir/quarantine/`. `mode` must be `Full` or
    /// `Batch` — `Off` means "no journal" and is the caller's branch.
    pub fn open(dir: &Path, mode: Durability, faults: Faults) -> io::Result<(Journal, Replay)> {
        if mode == Durability::Off {
            return Err(io::Error::other("Durability::Off opens no journal"));
        }
        std::fs::create_dir_all(dir)?;
        let segments = list_segments(dir)?;
        let mut replay = Replay {
            segments: segments.len(),
            ..Replay::default()
        };
        for (index, path) in &segments {
            let buf = std::fs::read(path)?;
            let outcome = decode_buffer(&buf);
            replay.resyncs += outcome.resyncs;
            if outcome.valid_len < buf.len() {
                // Torn tail: quarantine the damaged bytes, truncate the
                // segment at the last valid frame boundary.
                let torn = &buf[outcome.valid_len..];
                replay.torn_bytes += torn.len() as u64;
                let qdir = dir.join(QUARANTINE_DIR);
                let _ = std::fs::create_dir_all(&qdir);
                let _ = std::fs::write(qdir.join(format!("seg-{index:06}.torn")), torn);
                let file = std::fs::OpenOptions::new().write(true).open(path)?;
                file.set_len(outcome.valid_len as u64)?;
                file.sync_all()?;
            }
            replay.records.extend(outcome.records);
        }
        let index = segments.last().map_or(1, |(idx, _)| *idx);
        let writer = Arc::new(Mutex::new(Writer::open(dir, index)?));
        let stop = Arc::new(AtomicBool::new(false));
        let flusher = (mode == Durability::Batch).then(|| {
            let writer = Arc::clone(&writer);
            let stop = Arc::clone(&stop);
            let faults = faults.clone();
            thread::Builder::new()
                .name("jobd-journal-flush".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        thread::sleep(FLUSH_INTERVAL);
                        let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
                        if let Err(e) = flush_writer(&mut w, &faults) {
                            // Group commit retries next tick; the bytes stay
                            // dirty until a sync succeeds.
                            eprintln!("jobd: warning: journal flush failed: {e}");
                        }
                    }
                })
                .expect("spawn journal flusher")
        });
        let journal = Journal {
            dir: dir.to_path_buf(),
            mode,
            faults,
            writer,
            stop,
            flusher,
        };
        Ok((journal, replay))
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fsync policy this journal runs under.
    pub fn mode(&self) -> Durability {
        self.mode
    }

    /// Append one record. In `Full` mode the record is fsynced before this
    /// returns; in `Batch` mode it is durable within [`FLUSH_INTERVAL`].
    /// Injected disk faults surface as errors (the caller decides whether
    /// the guarded operation may proceed); an injected `journal_torn`
    /// leaves a half-written frame that replay will skip.
    pub fn append(&self, rec: &JournalRecord) -> io::Result<()> {
        let frame = encode_record(rec);
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        if w.len >= SEGMENT_ROTATE_BYTES {
            flush_writer(&mut w, &self.faults)?;
            *w = Writer::open(&self.dir, w.index + 1)?;
        }
        if self.faults.fire(FaultKind::DiskFull) {
            return Err(injected_enospc());
        }
        if self.faults.fire(FaultKind::JournalTorn) {
            // Model a tear: half the frame reaches the segment, the rest
            // never arrives. Replay resyncs past it.
            let half = frame.len() / 2;
            w.file.write_all(&frame[..half])?;
            w.len += half as u64;
            w.dirty = true;
            return Ok(());
        }
        w.file.write_all(&frame)?;
        w.len += frame.len() as u64;
        crash_point("journal.append");
        match self.mode {
            Durability::Full => {
                w.dirty = true;
                flush_writer(&mut w, &self.faults)?;
            }
            Durability::Batch | Durability::Off => w.dirty = true,
        }
        Ok(())
    }

    /// fsync any unsynced appends now (drain, shutdown).
    pub fn flush(&self) -> io::Result<()> {
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        flush_writer(&mut w, &self.faults)
    }

    /// Rewrite the journal to exactly `live` (the accept records of jobs
    /// still in flight) in one fresh segment and delete the older segments.
    /// After a completed drain `live` is empty and the next startup replays
    /// nothing. Crash-safe at every step: the new segment lands via
    /// [`storage::atomic_write`], and replay over any mix of old and new
    /// segments folds to the same pending set.
    pub fn compact(&self, live: &[JournalRecord]) -> io::Result<()> {
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let _ = flush_writer(&mut w, &self.faults);
        let next = w.index + 1;
        let mut buf = Vec::new();
        for rec in live {
            buf.extend_from_slice(&encode_record(rec));
        }
        storage::atomic_write(&segment_path(&self.dir, next), &buf, &self.faults)?;
        crash_point("journal.compact");
        for (index, path) in list_segments(&self.dir)? {
            if index < next {
                let _ = std::fs::remove_file(path);
            }
        }
        let _ = storage::fsync_dir(&self.dir);
        *w = Writer::open(&self.dir, next)?;
        Ok(())
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn tmpdir(name: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sprint-journal-{name}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn accept(key: &str, b: u64) -> JournalRecord {
        JournalRecord {
            kind: RecordKind::Accepted,
            key: key.to_string(),
            b,
            mode: "exact".to_string(),
            source: Some(format!("/data/{key}.tsv")),
            opts: Some(PmaxtOptions {
                b,
                seed: 42,
                ..PmaxtOptions::default()
            }),
            error: None,
        }
    }

    #[test]
    fn durability_spellings_round_trip() {
        for mode in [Durability::Full, Durability::Batch, Durability::Off] {
            assert_eq!(Durability::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(Durability::parse("sometimes"), None);
    }

    #[test]
    fn record_encoding_round_trips_every_kind() {
        let records = vec![
            accept("aaaa", 1000),
            JournalRecord::transition(RecordKind::Started, "aaaa", 1000, "exact"),
            JournalRecord {
                error: Some("worker panicked: boom".to_string()),
                ..JournalRecord::transition(RecordKind::Failed, "aaaa", 1000, "exact")
            },
            JournalRecord::transition(RecordKind::Cancelled, "bbbb", 500, "adaptive"),
            JournalRecord::transition(RecordKind::Finished, "cccc", 250, "exact"),
        ];
        let mut buf = Vec::new();
        for rec in &records {
            buf.extend_from_slice(&encode_record(rec));
        }
        let out = decode_buffer(&buf);
        assert_eq!(out.records, records);
        assert_eq!(out.valid_len, buf.len());
        assert_eq!((out.skipped, out.resyncs), (0, 0));
    }

    #[test]
    fn torn_middle_loses_exactly_one_record() {
        let r1 = accept("aaaa", 100);
        let r2 = accept("bbbb", 200);
        let r3 = accept("cccc", 300);
        let f1 = encode_record(&r1);
        let f2 = encode_record(&r2);
        let f3 = encode_record(&r3);
        let mut buf = f1.clone();
        buf.extend_from_slice(&f2[..f2.len() / 2]); // r2 torn mid-frame
        buf.extend_from_slice(&f3);
        let out = decode_buffer(&buf);
        assert_eq!(out.records, vec![r1, r3], "neighbours must survive");
        assert_eq!(out.resyncs, 1);
        assert!(out.skipped > 0);
    }

    #[test]
    fn corrupted_payload_is_rejected_by_checksum() {
        let mut frame = encode_record(&accept("aaaa", 100));
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        let out = decode_buffer(&frame);
        assert!(out.records.is_empty());
        assert_eq!(out.valid_len, 0);
    }

    #[test]
    fn journal_round_trips_across_reopen() {
        let dir = tmpdir("reopen");
        let records = vec![
            accept("aaaa", 100),
            JournalRecord::transition(RecordKind::Started, "aaaa", 100, "exact"),
            accept("bbbb", 200),
        ];
        {
            let (journal, replay) =
                Journal::open(&dir, Durability::Full, Faults::disabled()).unwrap();
            assert!(replay.records.is_empty());
            for rec in &records {
                journal.append(rec).unwrap();
            }
        }
        let (_journal, replay) =
            Journal::open(&dir, Durability::Batch, Faults::disabled()).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_quarantined() {
        let dir = tmpdir("torntail");
        let r1 = accept("aaaa", 100);
        let r2 = accept("bbbb", 200);
        {
            let (journal, _) = Journal::open(&dir, Durability::Full, Faults::disabled()).unwrap();
            journal.append(&r1).unwrap();
            journal.append(&r2).unwrap();
        }
        // Tear the tail by hand: chop the last segment mid-frame.
        let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 7).unwrap();
        drop(file);

        let (journal, replay) = Journal::open(&dir, Durability::Full, Faults::disabled()).unwrap();
        assert_eq!(
            replay.records,
            vec![r1.clone()],
            "r2's tear must not touch r1"
        );
        assert_eq!(replay.torn_bytes as usize, encode_record(&r2).len() - 7);
        assert!(dir
            .join(QUARANTINE_DIR)
            .read_dir()
            .unwrap()
            .next()
            .is_some());
        // The journal stays appendable at the truncation boundary.
        journal.append(&r2).unwrap();
        drop(journal);
        let (_journal, replay) = Journal::open(&dir, Durability::Full, Faults::disabled()).unwrap();
        assert_eq!(replay.records, vec![r1, r2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let dir = tmpdir("rotate");
        let n = (SEGMENT_ROTATE_BYTES / encode_record(&accept("aaaa", 0)).len() as u64) + 10;
        {
            let (journal, _) = Journal::open(&dir, Durability::Batch, Faults::disabled()).unwrap();
            for i in 0..n {
                journal.append(&accept("aaaa", i)).unwrap();
            }
        }
        assert!(
            list_segments(&dir).unwrap().len() >= 2,
            "past the rotate size a second segment must exist"
        );
        let (_journal, replay) =
            Journal::open(&dir, Durability::Batch, Faults::disabled()).unwrap();
        assert_eq!(replay.records.len() as u64, n);
        assert!(replay
            .records
            .iter()
            .enumerate()
            .all(|(i, r)| r.b == i as u64));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_keeps_exactly_the_live_set() {
        let dir = tmpdir("compact");
        let live = accept("bbbb", 200);
        {
            let (journal, _) = Journal::open(&dir, Durability::Full, Faults::disabled()).unwrap();
            journal.append(&accept("aaaa", 100)).unwrap();
            journal
                .append(&JournalRecord::transition(
                    RecordKind::Finished,
                    "aaaa",
                    100,
                    "exact",
                ))
                .unwrap();
            journal.append(&live).unwrap();
            journal.compact(std::slice::from_ref(&live)).unwrap();
            // Appends after compaction land in the fresh segment.
            journal
                .append(&JournalRecord::transition(
                    RecordKind::Started,
                    "bbbb",
                    200,
                    "exact",
                ))
                .unwrap();
        }
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        let (_journal, replay) = Journal::open(&dir, Durability::Full, Faults::disabled()).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0], live);
        let pending = fold_pending(&replay.records);
        assert_eq!(pending, vec![live]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fold_pending_tracks_lifecycle_and_order() {
        let a = accept("aaaa", 100);
        let b = accept("bbbb", 200);
        let c = accept("cccc", 300);
        let records = vec![
            a.clone(),
            b.clone(),
            JournalRecord::transition(RecordKind::Started, "aaaa", 100, "exact"),
            c.clone(),
            JournalRecord::transition(RecordKind::Finished, "bbbb", 200, "exact"),
            JournalRecord::transition(RecordKind::Started, "cccc", 300, "exact"),
            JournalRecord::transition(RecordKind::Failed, "cccc", 300, "exact"),
        ];
        // a: started, never terminal → pending. b: finished. c: failed.
        assert_eq!(fold_pending(&records), vec![a.clone()]);
        // A fresh accept after a terminal record revives the identity.
        let mut records = records;
        records.push(b.clone());
        assert_eq!(fold_pending(&records), vec![a, b]);
    }

    #[test]
    fn injected_tear_loses_only_the_torn_record() {
        let dir = tmpdir("injtear");
        let r1 = accept("aaaa", 100);
        let r2 = accept("bbbb", 200);
        {
            let torn = Faults::builder().prob(FaultKind::JournalTorn, 1.0).build();
            let (journal, _) = Journal::open(&dir, Durability::Batch, torn).unwrap();
            journal.append(&r1).unwrap(); // torn on the way down
        }
        {
            let (journal, replay) =
                Journal::open(&dir, Durability::Full, Faults::disabled()).unwrap();
            assert!(replay.records.is_empty());
            assert!(replay.torn_bytes > 0, "the half-frame counts as torn");
            journal.append(&r2).unwrap();
        }
        let (_journal, replay) = Journal::open(&dir, Durability::Full, Faults::disabled()).unwrap();
        assert_eq!(replay.records, vec![r2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_faults_fail_the_append_loudly() {
        let dir = tmpdir("diskfaults");
        let full = Faults::builder().prob(FaultKind::DiskFull, 1.0).build();
        let (journal, _) = Journal::open(&dir, Durability::Full, full).unwrap();
        assert!(journal.append(&accept("aaaa", 100)).is_err());
        drop(journal);

        let eio = Faults::builder().prob(FaultKind::FsyncFail, 1.0).build();
        let (journal, _) = Journal::open(&dir, Durability::Full, eio).unwrap();
        let err = journal.append(&accept("aaaa", 100)).unwrap_err();
        assert!(err.to_string().contains("fsync_fail"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
