//! The socket front end: accept connections, speak the line protocol, drive
//! the [`JobManager`].
//!
//! The server listens on a Unix-domain socket (`unix:/path/to.sock`, or any
//! address containing `/`) or a TCP address (`host:port`); each connection is
//! handled on its own thread so a client blocked in `result --wait` or
//! streaming `watch` events never stalls the others. The `shutdown` command
//! stops the accept loop (a self-connection unblocks it) and then stops the
//! worker pool; running spans finish and checkpoint first, so every
//! unfinished job is resumable.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use microarray::io::read_dataset;
use sprint_core::options::PmaxtOptions;

use crate::json::Json;
use crate::manager::{JobManager, JobSpec};
use crate::protocol;

/// A parsed listen/connect address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// Unix-domain socket path.
    Unix(PathBuf),
    /// TCP `host:port`.
    Tcp(String),
}

impl BindAddr {
    /// Parse an address: `unix:` prefix or any string containing `/` is a
    /// socket path; everything else is TCP `host:port`.
    pub fn parse(addr: &str) -> BindAddr {
        if let Some(path) = addr.strip_prefix("unix:") {
            BindAddr::Unix(PathBuf::from(path))
        } else if addr.contains('/') {
            BindAddr::Unix(PathBuf::from(addr))
        } else {
            BindAddr::Tcp(addr.to_string())
        }
    }

    /// Display form (round-trips through [`BindAddr::parse`]).
    pub fn to_addr_string(&self) -> String {
        match self {
            BindAddr::Unix(p) => format!("unix:{}", p.display()),
            BindAddr::Tcp(a) => a.clone(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: Listener,
    addr: BindAddr,
    manager: Arc<JobManager>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind to `addr` (removing a stale Unix socket file first). For TCP,
    /// port 0 binds an ephemeral port — read the real one back with
    /// [`Server::local_addr`].
    pub fn bind(addr: &str, manager: JobManager) -> io::Result<Server> {
        let parsed = BindAddr::parse(addr);
        let (listener, addr) = match &parsed {
            BindAddr::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                (Listener::Unix(UnixListener::bind(path)?), parsed.clone())
            }
            BindAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec)?;
                let actual = listener.local_addr()?.to_string();
                (Listener::Tcp(listener), BindAddr::Tcp(actual))
            }
        };
        Ok(Server {
            listener,
            addr,
            manager: Arc::new(manager),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (with the real port for TCP port-0 binds).
    pub fn local_addr(&self) -> BindAddr {
        self.addr.clone()
    }

    /// Serve until a `shutdown` command arrives. Consumes the server; on
    /// return the worker pool has stopped and all unfinished jobs are
    /// checkpointed.
    pub fn run(self) -> io::Result<()> {
        loop {
            let conn: Box<dyn Conn> = match &self.listener {
                Listener::Unix(l) => match l.accept() {
                    Ok((stream, _)) => Box::new(stream),
                    Err(e) => return Err(e),
                },
                Listener::Tcp(l) => match l.accept() {
                    Ok((stream, _)) => Box::new(stream),
                    Err(e) => return Err(e),
                },
            };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let manager = Arc::clone(&self.manager);
            let stop = Arc::clone(&self.stop);
            let addr = self.addr.clone();
            std::thread::spawn(move || {
                if let Err(e) = handle_connection(conn, &manager, &stop, &addr) {
                    if e.kind() != io::ErrorKind::BrokenPipe {
                        eprintln!("jobd: connection error: {e}");
                    }
                }
            });
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        if let BindAddr::Unix(path) = &self.addr {
            std::fs::remove_file(path).ok();
        }
        self.manager.shutdown();
        Ok(())
    }
}

/// Wake a server blocked in `accept` after its stop flag was set.
fn wake_acceptor(addr: &BindAddr) {
    match addr {
        BindAddr::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
        BindAddr::Tcp(spec) => {
            let _ = TcpStream::connect(spec);
        }
    }
}

/// Both stream types, unified for the handler.
trait Conn: Read2 + Send {}
impl Conn for UnixStream {}
impl Conn for TcpStream {}

/// Object-safe clone-the-stream trait: the handler needs one reader and one
/// writer over the same socket.
trait Read2: io::Read + io::Write {
    fn split(&self) -> io::Result<Box<dyn io::Read + Send>>;
}

impl Read2 for UnixStream {
    fn split(&self) -> io::Result<Box<dyn io::Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

impl Read2 for TcpStream {
    fn split(&self) -> io::Result<Box<dyn io::Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

fn handle_connection(
    mut conn: Box<dyn Conn>,
    manager: &JobManager,
    stop: &AtomicBool,
    addr: &BindAddr,
) -> io::Result<()> {
    let reader = BufReader::new(conn.split()?);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match Json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                respond(&mut conn, &protocol::err_response(&e, "usage"))?;
                continue;
            }
        };
        let cmd = request.get("cmd").and_then(Json::as_str).unwrap_or("");
        match cmd {
            "ping" => respond(&mut conn, &protocol::ok_response(vec![]))?,
            "submit" => {
                let resp = handle_submit(&request, manager);
                respond(&mut conn, &resp)?;
            }
            "status" => {
                let resp = match job_id(&request) {
                    Ok(id) => match manager.status(id) {
                        Ok(st) => protocol::status_to_json(&st),
                        Err(e) => protocol::err_from(&e),
                    },
                    Err(resp) => resp,
                };
                respond(&mut conn, &resp)?;
            }
            "result" => {
                let resp = match job_id(&request) {
                    Ok(id) => {
                        let wait = request.get("wait").and_then(Json::as_bool).unwrap_or(true);
                        let outcome = if wait {
                            manager.wait_result(id, None)
                        } else {
                            manager.result(id)
                        };
                        match outcome {
                            Ok(result) => protocol::result_to_json(id, &result),
                            Err(e) => protocol::err_from(&e),
                        }
                    }
                    Err(resp) => resp,
                };
                respond(&mut conn, &resp)?;
            }
            "cancel" => {
                let resp = match job_id(&request) {
                    Ok(id) => match manager.cancel(id) {
                        Ok(st) => protocol::status_to_json(&st),
                        Err(e) => protocol::err_from(&e),
                    },
                    Err(resp) => resp,
                };
                respond(&mut conn, &resp)?;
            }
            "watch" => match job_id(&request) {
                Ok(id) => match manager.subscribe(id) {
                    Ok(rx) => {
                        for event in rx {
                            let terminal = event.state.is_terminal();
                            respond(&mut conn, &protocol::event_to_json(&event))?;
                            if terminal {
                                break;
                            }
                        }
                    }
                    Err(e) => respond(&mut conn, &protocol::err_from(&e))?,
                },
                Err(resp) => respond(&mut conn, &resp)?,
            },
            "shutdown" => {
                respond(&mut conn, &protocol::ok_response(vec![]))?;
                stop.store(true, Ordering::SeqCst);
                wake_acceptor(addr);
                return Ok(());
            }
            other => {
                let msg = format!("unknown command {other:?}");
                respond(&mut conn, &protocol::err_response(&msg, "usage"))?;
            }
        }
    }
    Ok(())
}

fn handle_submit(request: &Json, manager: &JobManager) -> Json {
    let path = match request.get("path").and_then(Json::as_str) {
        Some(p) => p,
        None => return protocol::err_response("submit requires a path field", "usage"),
    };
    let opts: PmaxtOptions = match protocol::opts_from_request(request) {
        Ok(o) => o,
        Err(e) => return protocol::err_response(&e, "usage"),
    };
    let (data, classlabel) = match read_dataset(std::path::Path::new(path)) {
        Ok(pair) => pair,
        Err(e) => {
            return protocol::err_response(&format!("cannot read dataset {path:?}: {e}"), "runtime")
        }
    };
    match manager.submit(JobSpec {
        data,
        classlabel,
        opts,
    }) {
        Ok(info) => protocol::submit_to_json(&info),
        Err(e) => protocol::err_from(&e),
    }
}

fn job_id(request: &Json) -> Result<u64, Json> {
    request
        .get("job")
        .and_then(Json::as_u64)
        .ok_or_else(|| protocol::err_response("request requires a job id", "usage"))
}

fn respond(conn: &mut Box<dyn Conn>, resp: &Json) -> io::Result<()> {
    let mut line = resp.to_json();
    line.push('\n');
    conn.write_all(line.as_bytes())?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_addr_parsing() {
        assert_eq!(
            BindAddr::parse("unix:/tmp/x.sock"),
            BindAddr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            BindAddr::parse("/tmp/x.sock"),
            BindAddr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            BindAddr::parse("127.0.0.1:8080"),
            BindAddr::Tcp("127.0.0.1:8080".into())
        );
        let a = BindAddr::parse("unix:/a/b");
        assert_eq!(BindAddr::parse(&a.to_addr_string()), a);
    }
}
