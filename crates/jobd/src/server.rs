//! The socket front end: accept connections, speak the line protocol, drive
//! the [`JobManager`].
//!
//! The server listens on a Unix-domain socket (`unix:/path/to.sock`, or any
//! address containing `/`) or a TCP address (`host:port`); each connection is
//! handled on its own thread so a client blocked in `result --wait` or
//! streaming `watch` events never stalls the others. The `shutdown` command
//! stops the accept loop (a self-connection unblocks it) and then stops the
//! worker pool; running spans finish and checkpoint first, so every
//! unfinished job is resumable. With `"drain": true` it first stops
//! accepting submissions and waits for every job to reach a terminal state.
//!
//! ## Hardening
//!
//! A connection can only hurt itself, never the daemon or its neighbours:
//! request lines are read through a bounded reader (an oversized line or
//! invalid UTF-8 earns a protocol error response, not a dead thread),
//! malformed JSON and unknown commands get `usage` error responses, and
//! per-connection read/write deadlines ([`ServerConfig`]) bound how long a
//! stalled peer can pin a handler thread. The [`crate::faults`] registry
//! injects torn frames and slow-peer stalls in [`respond`] to prove the
//! client-side retry story out.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use microarray::io::read_dataset;
use sprint_core::options::PmaxtOptions;

use crate::faults::{FaultKind, Faults};
use crate::json::Json;
use crate::manager::{JobManager, JobSpec};
use crate::protocol;

/// Upper bound on one request line. A well-formed request is well under 1 KiB
/// (datasets travel by path, not inline), so 1 MiB is generous headroom while
/// keeping a garbage-spewing peer from ballooning the handler's buffer.
pub const MAX_REQUEST_LINE: usize = 1 << 20;

/// Tunables of a [`Server`] beyond its address.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection read deadline: how long a handler thread waits for the
    /// *next request byte* before giving the connection up. Does not limit
    /// `result --wait`/`watch` (those block in the manager, not on reads).
    /// `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline: how long one response write may block
    /// on a peer that stopped draining its socket. `None` waits forever.
    pub write_timeout: Option<Duration>,
    /// Fault-injection registry for the framing path (torn frames, slow-peer
    /// stalls). Defaults to the `SPRINT_FAULTS` environment configuration.
    pub faults: Faults,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: None,
            write_timeout: None,
            faults: Faults::from_env(),
        }
    }
}

/// A parsed listen/connect address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// Unix-domain socket path.
    Unix(PathBuf),
    /// TCP `host:port`.
    Tcp(String),
}

impl BindAddr {
    /// Parse an address: `unix:` prefix or any string containing `/` is a
    /// socket path; everything else is TCP `host:port`.
    pub fn parse(addr: &str) -> BindAddr {
        if let Some(path) = addr.strip_prefix("unix:") {
            BindAddr::Unix(PathBuf::from(path))
        } else if addr.contains('/') {
            BindAddr::Unix(PathBuf::from(addr))
        } else {
            BindAddr::Tcp(addr.to_string())
        }
    }

    /// Display form (round-trips through [`BindAddr::parse`]).
    pub fn to_addr_string(&self) -> String {
        match self {
            BindAddr::Unix(p) => format!("unix:{}", p.display()),
            BindAddr::Tcp(a) => a.clone(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: Listener,
    addr: BindAddr,
    manager: Arc<JobManager>,
    stop: Arc<AtomicBool>,
    cfg: ServerConfig,
}

impl Server {
    /// Bind to `addr` (removing a stale Unix socket file first) with default
    /// [`ServerConfig`]. For TCP, port 0 binds an ephemeral port — read the
    /// real one back with [`Server::local_addr`].
    pub fn bind(addr: &str, manager: JobManager) -> io::Result<Server> {
        Self::bind_with(addr, manager, ServerConfig::default())
    }

    /// Bind with explicit connection deadlines and fault injection.
    pub fn bind_with(addr: &str, manager: JobManager, cfg: ServerConfig) -> io::Result<Server> {
        let parsed = BindAddr::parse(addr);
        let (listener, addr) = match &parsed {
            BindAddr::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                (Listener::Unix(UnixListener::bind(path)?), parsed.clone())
            }
            BindAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec)?;
                let actual = listener.local_addr()?.to_string();
                (Listener::Tcp(listener), BindAddr::Tcp(actual))
            }
        };
        Ok(Server {
            listener,
            addr,
            manager: Arc::new(manager),
            stop: Arc::new(AtomicBool::new(false)),
            cfg,
        })
    }

    /// The bound address (with the real port for TCP port-0 binds).
    pub fn local_addr(&self) -> BindAddr {
        self.addr.clone()
    }

    /// Serve until a `shutdown` command arrives. Consumes the server; on
    /// return the worker pool has stopped and all unfinished jobs are
    /// checkpointed.
    pub fn run(self) -> io::Result<()> {
        loop {
            let conn: Box<dyn Conn> = match &self.listener {
                Listener::Unix(l) => match l.accept() {
                    Ok((stream, _)) => Box::new(stream),
                    Err(e) => return Err(e),
                },
                Listener::Tcp(l) => match l.accept() {
                    Ok((stream, _)) => Box::new(stream),
                    Err(e) => return Err(e),
                },
            };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            if let Err(e) = conn.set_deadlines(self.cfg.read_timeout, self.cfg.write_timeout) {
                eprintln!("jobd: cannot set connection deadlines: {e}");
                continue;
            }
            let manager = Arc::clone(&self.manager);
            let stop = Arc::clone(&self.stop);
            let addr = self.addr.clone();
            let faults = self.cfg.faults.clone();
            std::thread::spawn(move || {
                if let Err(e) = handle_connection(conn, &manager, &stop, &addr, &faults) {
                    // Peers vanishing mid-write and injected frame drops are
                    // expected connection-level noise, not daemon trouble.
                    let injected = faults.armed() && e.kind() == io::ErrorKind::ConnectionAborted;
                    if e.kind() != io::ErrorKind::BrokenPipe && !injected {
                        eprintln!("jobd: connection error: {e}");
                    }
                }
            });
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        if let BindAddr::Unix(path) = &self.addr {
            std::fs::remove_file(path).ok();
        }
        self.manager.shutdown();
        Ok(())
    }
}

/// Wake a server blocked in `accept` after its stop flag was set.
fn wake_acceptor(addr: &BindAddr) {
    match addr {
        BindAddr::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
        BindAddr::Tcp(spec) => {
            let _ = TcpStream::connect(spec);
        }
    }
}

/// Both stream types, unified for the handler.
trait Conn: Read2 + Send {}
impl Conn for UnixStream {}
impl Conn for TcpStream {}

/// Object-safe clone-the-stream trait: the handler needs one reader and one
/// writer over the same socket, plus the OS-level deadline knobs.
trait Read2: io::Read + io::Write {
    fn split(&self) -> io::Result<Box<dyn io::Read + Send>>;
    fn set_deadlines(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()>;
}

impl Read2 for UnixStream {
    fn split(&self) -> io::Result<Box<dyn io::Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_deadlines(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(read)?;
        self.set_write_timeout(write)
    }
}

impl Read2 for TcpStream {
    fn split(&self) -> io::Result<Box<dyn io::Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_deadlines(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(read)?;
        self.set_write_timeout(write)
    }
}

/// Outcome of one bounded line read.
enum ReadLine {
    /// A complete UTF-8 line (newline stripped).
    Line(String),
    /// The line exceeded [`MAX_REQUEST_LINE`]; its bytes were discarded but
    /// the stream was consumed through the newline, so the next read resyncs.
    TooLong,
    /// The line contained invalid UTF-8 (also consumed through the newline).
    BadUtf8,
    /// Clean end of stream.
    Eof,
}

/// Read one `\n`-terminated line without trusting its length or encoding.
/// Unlike `BufRead::lines`, a hostile line costs at most [`MAX_REQUEST_LINE`]
/// bytes of memory and never errors the stream: the caller can respond with
/// a protocol error and keep serving the connection. A final unterminated
/// line (peer died mid-frame) is returned as a normal line so the caller can
/// still answer a half-open peer; the next call reports [`ReadLine::Eof`].
fn read_bounded_line(reader: &mut impl BufRead) -> io::Result<ReadLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    let finish = |buf: Vec<u8>, overflow: bool| {
        if overflow {
            ReadLine::TooLong
        } else {
            match String::from_utf8(buf) {
                Ok(s) => ReadLine::Line(s),
                Err(_) => ReadLine::BadUtf8,
            }
        }
    };
    loop {
        let (done, used) = {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                if buf.is_empty() && !overflow {
                    return Ok(ReadLine::Eof);
                }
                return Ok(finish(buf, overflow));
            }
            let newline = chunk.iter().position(|&b| b == b'\n');
            let take = newline.unwrap_or(chunk.len());
            if !overflow {
                if buf.len() + take <= MAX_REQUEST_LINE {
                    buf.extend_from_slice(&chunk[..take]);
                } else {
                    overflow = true;
                }
            }
            (newline.is_some(), take + usize::from(newline.is_some()))
        };
        reader.consume(used);
        if done {
            return Ok(finish(buf, overflow));
        }
    }
}

fn handle_connection(
    mut conn: Box<dyn Conn>,
    manager: &JobManager,
    stop: &AtomicBool,
    addr: &BindAddr,
    faults: &Faults,
) -> io::Result<()> {
    let mut reader = BufReader::new(conn.split()?);
    loop {
        let line = match read_bounded_line(&mut reader)? {
            ReadLine::Eof => return Ok(()),
            ReadLine::TooLong => {
                let msg = format!("request line exceeds {MAX_REQUEST_LINE} bytes");
                respond(&mut conn, &protocol::err_response(&msg, "usage"), faults)?;
                continue;
            }
            ReadLine::BadUtf8 => {
                let msg = "request line is not valid UTF-8";
                respond(&mut conn, &protocol::err_response(msg, "usage"), faults)?;
                continue;
            }
            ReadLine::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                respond(&mut conn, &protocol::err_response(&e, "usage"), faults)?;
                continue;
            }
        };
        let cmd = request.get("cmd").and_then(Json::as_str).unwrap_or("");
        match cmd {
            "ping" => respond(&mut conn, &protocol::ok_response(vec![]), faults)?,
            "submit" => {
                let resp = handle_submit(&request, manager);
                respond(&mut conn, &resp, faults)?;
            }
            "span_exec" => {
                let resp = handle_span_exec(&request, manager);
                respond(&mut conn, &resp, faults)?;
            }
            "boot_exec" => {
                let resp = handle_boot_exec(&request, manager);
                respond(&mut conn, &resp, faults)?;
            }
            "status" => {
                let resp = match job_id(&request) {
                    Ok(id) => match manager.status(id) {
                        Ok(st) => protocol::status_to_json(&st),
                        Err(e) => protocol::err_from(&e),
                    },
                    Err(resp) => resp,
                };
                respond(&mut conn, &resp, faults)?;
            }
            "result" => {
                let resp = match job_id(&request) {
                    Ok(id) => {
                        let wait = request.get("wait").and_then(Json::as_bool).unwrap_or(true);
                        // Bootstrap jobs answer with interval estimates; the
                        // job's workload (not a request field) decides the
                        // response shape, so a generic client just gets the
                        // right thing.
                        if manager.is_boot(id).unwrap_or(false) {
                            let outcome = if wait {
                                manager.wait_boot_result(id, None)
                            } else {
                                manager.boot_result(id)
                            };
                            match outcome {
                                Ok(result) => protocol::boot_result_to_json(id, &result),
                                Err(e) => protocol::err_from(&e),
                            }
                        } else {
                            let outcome = if wait {
                                manager.wait_result(id, None)
                            } else {
                                manager.result(id)
                            };
                            match outcome {
                                Ok(result) => {
                                    // Adaptive jobs carry their per-gene report
                                    // (bounds, stop cursors, tail diagnostics)
                                    // alongside the finalized result.
                                    let report = manager.adaptive_report(id).ok().flatten();
                                    protocol::result_to_json(id, &result, report.as_ref())
                                }
                                Err(e) => protocol::err_from(&e),
                            }
                        }
                    }
                    Err(resp) => resp,
                };
                respond(&mut conn, &resp, faults)?;
            }
            "cancel" => {
                let resp = match job_id(&request) {
                    Ok(id) => match manager.cancel(id) {
                        Ok(st) => protocol::status_to_json(&st),
                        Err(e) => protocol::err_from(&e),
                    },
                    Err(resp) => resp,
                };
                respond(&mut conn, &resp, faults)?;
            }
            "watch" => match job_id(&request) {
                Ok(id) => match manager.subscribe(id) {
                    Ok(rx) => {
                        for event in rx {
                            let terminal = event.state.is_terminal();
                            respond(&mut conn, &protocol::event_to_json(&event), faults)?;
                            if terminal {
                                break;
                            }
                        }
                    }
                    Err(e) => respond(&mut conn, &protocol::err_from(&e), faults)?,
                },
                Err(resp) => respond(&mut conn, &resp, faults)?,
            },
            "shutdown" => {
                let drain = request
                    .get("drain")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
                if drain {
                    // Graceful drain: refuse new submissions, let every
                    // queued/running job reach a terminal state (checkpointing
                    // as usual), and only then acknowledge and stop — so the
                    // requester's ack means "all work is durably settled".
                    // With everything terminal the journal's live set is
                    // empty: compact it away so the next start replays
                    // nothing.
                    manager.drain();
                    manager.wait_idle(None);
                    manager.compact_journal();
                }
                respond(&mut conn, &protocol::ok_response(vec![]), faults)?;
                stop.store(true, Ordering::SeqCst);
                wake_acceptor(addr);
                return Ok(());
            }
            other => {
                let msg = format!("unknown command {other:?}");
                respond(&mut conn, &protocol::err_response(&msg, "usage"), faults)?;
            }
        }
    }
}

fn handle_submit(request: &Json, manager: &JobManager) -> Json {
    let path = match request.get("path").and_then(Json::as_str) {
        Some(p) => p,
        None => return protocol::err_response("submit requires a path field", "usage"),
    };
    let opts: PmaxtOptions = match protocol::opts_from_request(request) {
        Ok(o) => o,
        Err(e) => return protocol::err_response(&e, "usage"),
    };
    let (data, classlabel) = match read_dataset(std::path::Path::new(path)) {
        Ok(pair) => pair,
        Err(e) => {
            return protocol::err_response(&format!("cannot read dataset {path:?}: {e}"), "runtime")
        }
    };
    // Record the canonical dataset path: if this daemon has peers, the
    // coordinator sends it in `span_exec` requests so each peer re-reads
    // its own copy instead of shipping the matrix inline.
    let source_path = std::fs::canonicalize(path).unwrap_or_else(|_| PathBuf::from(path));
    match manager.submit(JobSpec {
        data,
        classlabel,
        opts,
        source_path: Some(source_path),
    }) {
        Ok(info) => protocol::submit_to_json(&info),
        Err(e) => protocol::err_from(&e),
    }
}

/// Execute one span of a sharded job for a peer coordinator: re-read the
/// dataset from this daemon's own filesystem, recompute the span's exact
/// exceedance counts with the same skip-ahead stream the coordinator uses,
/// and return them flat. Stateless by design — no job is registered, so a
/// coordinator retry (or a second coordinator) is harmless.
fn handle_span_exec(request: &Json, manager: &JobManager) -> Json {
    let path = match request.get("path").and_then(Json::as_str) {
        Some(p) => p,
        None => return protocol::err_response("span_exec requires a path field", "usage"),
    };
    let opts: PmaxtOptions = match protocol::opts_from_request(request) {
        Ok(o) => o,
        Err(e) => return protocol::err_response(&e, "usage"),
    };
    let (b, start, take) = match (
        request.get("b_resolved").and_then(Json::as_u64),
        request.get("start").and_then(Json::as_u64),
        request.get("take").and_then(Json::as_u64),
    ) {
        (Some(b), Some(start), Some(take)) => (b, start, take),
        _ => {
            return protocol::err_response(
                "span_exec requires b_resolved, start and take fields",
                "usage",
            )
        }
    };
    let (data, classlabel) = match read_dataset(std::path::Path::new(path)) {
        Ok(pair) => pair,
        Err(e) => {
            return protocol::err_response(&format!("cannot read dataset {path:?}: {e}"), "runtime")
        }
    };
    match manager.exec_span(data, classlabel, opts, b, start, take) {
        Ok((flat, kernel_secs)) => protocol::span_counts_to_json(start, take, &flat, kernel_secs),
        Err(e) => protocol::err_from(&e),
    }
}

/// Execute one gene slice of a sharded bootstrap run for a peer coordinator:
/// re-read the dataset from this daemon's own filesystem, recompute the
/// slice's interval estimates over the same deterministic draw stream, and
/// return them as bit-pattern arrays. Stateless, like `span_exec`.
fn handle_boot_exec(request: &Json, manager: &JobManager) -> Json {
    let path = match request.get("path").and_then(Json::as_str) {
        Some(p) => p,
        None => return protocol::err_response("boot_exec requires a path field", "usage"),
    };
    let opts: PmaxtOptions = match protocol::opts_from_request(request) {
        Ok(o) => o,
        Err(e) => return protocol::err_response(&e, "usage"),
    };
    let (b, row_start, row_take) = match (
        request.get("b_resolved").and_then(Json::as_u64),
        request.get("row_start").and_then(Json::as_u64),
        request.get("row_take").and_then(Json::as_u64),
    ) {
        (Some(b), Some(s), Some(t)) => (b, s, t),
        _ => {
            return protocol::err_response(
                "boot_exec requires b_resolved, row_start and row_take fields",
                "usage",
            )
        }
    };
    let (data, classlabel) = match read_dataset(std::path::Path::new(path)) {
        Ok(pair) => pair,
        Err(e) => {
            return protocol::err_response(&format!("cannot read dataset {path:?}: {e}"), "runtime")
        }
    };
    match manager.exec_boot(data, classlabel, opts, b, row_start, row_take) {
        Ok((result, kernel_secs)) => protocol::boot_slice_to_json(&result, kernel_secs),
        Err(e) => protocol::err_from(&e),
    }
}

fn job_id(request: &Json) -> Result<u64, Json> {
    request
        .get("job")
        .and_then(Json::as_u64)
        .ok_or_else(|| protocol::err_response("request requires a job id", "usage"))
}

/// Write one response frame, with the two framing fault classes injected
/// here: a `slow_peer` stall before the write, and a `frame_truncate` that
/// sends only half the frame and then drops the connection (the injected
/// error unwinds out of [`handle_connection`], closing the socket exactly as
/// a mid-frame network drop would). Clients recover by retrying on a fresh
/// connection; resubmits are idempotent through the content-digest dedup.
fn respond(conn: &mut Box<dyn Conn>, resp: &Json, faults: &Faults) -> io::Result<()> {
    let mut line = resp.to_json();
    line.push('\n');
    if faults.fire(FaultKind::SlowPeer) {
        std::thread::sleep(faults.stall());
    }
    if faults.fire(FaultKind::FrameTruncate) {
        conn.write_all(&line.as_bytes()[..line.len() / 2])?;
        conn.flush()?;
        return Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "injected frame truncation",
        ));
    }
    conn.write_all(line.as_bytes())?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_addr_parsing() {
        assert_eq!(
            BindAddr::parse("unix:/tmp/x.sock"),
            BindAddr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            BindAddr::parse("/tmp/x.sock"),
            BindAddr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            BindAddr::parse("127.0.0.1:8080"),
            BindAddr::Tcp("127.0.0.1:8080".into())
        );
        let a = BindAddr::parse("unix:/a/b");
        assert_eq!(BindAddr::parse(&a.to_addr_string()), a);
    }
}
