//! `jobd` — a persistent permutation-testing job service.
//!
//! The paper's `pmaxT` is a batch function: one dataset, one `B`, one
//! blocking call. This crate wraps the same deterministic engine in a
//! long-lived service, which changes what repeated use costs:
//!
//! - **Job orchestration** ([`manager`]): a bounded queue and worker pool
//!   drive the batched engine span by span — round-robin across jobs for
//!   fairness, per-job thread budgets, cooperative cancellation at batch
//!   granularity, and progress events with a critical-path ETA.
//! - **Content-addressed result cache** ([`cache`]): entries are checkpoint
//!   files keyed by (dataset digest, permutation-stream digest). A repeated
//!   request finalizes from stored counts without computing; a crashed or
//!   cancelled job resumes from its last completed span.
//! - **Incremental extension**: the stream digest collapses the Monte-Carlo
//!   permutation count, and the skip-ahead generators make run prefixes
//!   independent of the total — so raising `B` to `B′` computes only
//!   permutations `B..B′` and is bitwise-identical to a fresh `B′` run.
//! - **Wire protocol** ([`json`], [`protocol`], [`server`], [`client`]):
//!   line-delimited JSON over a Unix-domain socket or TCP, exposed by the
//!   `pmaxt serve` / `submit` / `status` / `result` / `cancel` subcommands.
//! - **Cross-daemon sharding** ([`shard`], [`manager`]): a daemon started
//!   with `--peer` addresses coordinates one job across the roster — the
//!   remaining permutation range is split with the same `span_plan`
//!   arithmetic the SPMD ranks use, peers execute spans via `span_exec`
//!   requests against their own copy of the dataset, and a dead peer's
//!   spans are reassigned to survivors from the last merged frontier.
//! - **Fault injection and recovery** ([`faults`]): a seeded registry
//!   (`SPRINT_FAULTS=worker_panic:0.01,...`) injects worker panics, span I/O
//!   errors, cache corruption, torn frames, slow peers and disk faults; the
//!   hardening it proves out — `catch_unwind` worker isolation,
//!   per-connection deadlines, client retry with idempotent resubmit, cache
//!   quarantine, graceful drain — keeps every fault inside the *job*
//!   failure domain.
//! - **Durability** ([`journal`], [`storage`]): a checksummed write-ahead
//!   journal records each job's lifecycle before the accept ack
//!   (`serve --durability full|batch|off`), every persistent file lands via
//!   a crash-consistent atomic write, and on restart the manager replays
//!   the journal and resubmits every non-terminal job — resuming from its
//!   checkpoint cursor, so even daemon death (`kill -9`, power cut, the
//!   `SPRINT_CRASH` crash points) loses no acked work.
//!
//! Every layer preserves the repo's core invariant: a jobd-served result is
//! bitwise-identical to a direct `mt_maxt` call, whatever the scheduling,
//! geometry, caching or interruption history.

pub mod cache;
pub mod client;
pub mod faults;
pub mod journal;
pub mod json;
pub mod manager;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod storage;

pub use cache::{CacheKey, CacheProbe, ResultCache};
pub use client::{request_retried, Client, RetryPolicy};
pub use faults::{crash_point, FaultKind, Faults, CRASH_POINTS};
pub use journal::{Durability, Journal, JournalRecord, RecordKind, Replay};
pub use manager::{
    CacheDisposition, JobError, JobEvent, JobManager, JobSpec, JobState, JobStatus, ManagerConfig,
    RecoveryReport, SubmitInfo,
};
pub use server::{BindAddr, Server, ServerConfig};
pub use shard::{ShardSnapshot, ShardStats};
