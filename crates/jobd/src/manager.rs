//! The job manager: a bounded queue and worker pool driving the batched
//! permutation engine, with span-sliced fair scheduling, cooperative
//! cancellation, checkpoint-backed caching and progress events.
//!
//! ## Scheduling
//!
//! A job is not run to completion by one worker. Each time a worker pops a
//! job it processes **one span** (`ManagerConfig::span` permutations) through
//! [`accumulate_chunk_hooked`], merges the span's counts into the job, writes
//! the cache entry, and re-enqueues the job at the back of the queue. With
//! more runnable jobs than workers this interleaves them round-robin, so a
//! short job never starves behind a long one; with fewer, each job still gets
//! its own engine thread budget per span.
//!
//! ## Determinism
//!
//! A span is an engine chunk: counts are bitwise-identical to a serial run
//! regardless of span size, worker interleaving, per-job thread budget or
//! batch size (see `sprint_core::maxt::engine`). The manager only ever
//! partitions the permutation index range `0..B` into consecutive spans and
//! sums integer counts, so a jobd-served result equals `mt_maxt` bit for bit.
//!
//! ## Cancellation and resumability
//!
//! Cancellation sets a per-job [`AtomicBool`] polled by every engine worker
//! between batches. A span interrupted mid-way is discarded — its partial
//! counts are not an index prefix — so the job's durable state remains the
//! last completed span's checkpoint, which a later submit resumes from.
//!
//! ## Failure domains
//!
//! A worker panic — real or injected via [`crate::faults`] — is caught at the
//! span boundary and fails the *job* ([`JobState::Failed`] with the panic
//! message in [`JobStatus::error`]), never the daemon: the worker thread
//! survives and moves on to the next queued job. Because a failed job's
//! durable state is still its last completed span's checkpoint, resubmitting
//! the identical request resumes where the failure struck and the final
//! counts stay bitwise-identical to an undisturbed run.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sprint::checkpoint::CheckpointState;
use sprint_core::adaptive::{AdaptiveConfig, AdaptiveReport, AdaptiveRunner};
use sprint_core::boot::{self, BootstrapResult};
use sprint_core::error::Error as CoreError;
use sprint_core::labels::ClassLabels;
use sprint_core::matrix::Matrix;
use sprint_core::maxt::engine::{
    accumulate_chunk_hooked, split_evenly, ChunkHooks, ChunkRun, EngineConfig,
};
use sprint_core::maxt::{CountAccumulator, MaxTContext, MaxTResult};
use sprint_core::options::{Mode, PmaxtOptions, Precision, Workload};
use sprint_core::perm::resolve_permutation_count;
use sprint_core::pmaxt::span_plan;
use sprint_core::stats::prepare_matrix;

use crate::cache::{CacheKey, CacheProbe, ResultCache};
use crate::client::RetryPolicy;
use crate::faults::{crash_point, FaultKind, Faults};
use crate::journal::{self, Durability, Journal, JournalRecord, RecordKind};
use crate::json::Json;
use crate::protocol;
use crate::shard;
use crate::shard::{slice_spans, PeerError, PeerLink, ShardSnapshot, ShardStats, SpanQueue};

/// Lock a mutex, recovering from poisoning.
///
/// Safe here by construction: panics in job-processing code are caught at the
/// span boundary (see [`worker_loop`]) *before* they can unwind through a
/// guarded section, and every critical section in this module leaves its
/// guarded state consistent at each intermediate step — so a poisoned lock
/// carries no torn data. Refusing to recover would escalate one panic into a
/// dead daemon, the exact failure-domain leak this module exists to prevent.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort text of a panic payload, for [`JobStatus::error`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Configuration of a [`JobManager`].
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Worker threads servicing the job queue (each drives one span at a
    /// time); `0` resolves to 2.
    pub workers: usize,
    /// Maximum runnable jobs queued at once; further submissions are
    /// rejected with [`JobError::QueueFull`].
    pub queue_cap: usize,
    /// Permutations per span — the checkpoint / fairness / cancellation
    /// granule.
    pub span: u64,
    /// Engine threads for jobs that leave `opts.threads = 0` (auto); `0`
    /// resolves to available parallelism divided by the worker count, so a
    /// fully busy pool does not oversubscribe the machine.
    pub job_threads: usize,
    /// Cache directory; `None` disables caching (every submit computes).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Peer daemon addresses (`pmaxt serve --peer`). When non-empty, a job
    /// submitted with a dataset path is *sharded*: its permutation range is
    /// split across this daemon and every peer via `span_exec` requests, and
    /// the exceedance counts are merged bitwise-identically to a local run
    /// (see [`crate::shard`]).
    pub peers: Vec<String>,
    /// Fault-injection registry threaded through the span loop and the cache
    /// (see [`crate::faults`]). Defaults to the `SPRINT_FAULTS` environment
    /// configuration, which is disabled when the variable is unset.
    pub faults: Faults,
    /// Write-ahead journal fsync policy (`pmaxt serve --durability`; see
    /// [`crate::journal`]). Requires a cache directory — the journal lives
    /// under it. `Off` (the default, for embedded use) keeps no journal:
    /// daemon death loses queued and running jobs, as before.
    pub durability: Durability,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            workers: 2,
            queue_cap: 64,
            span: 4096,
            job_threads: 0,
            cache_dir: None,
            peers: Vec::new(),
            faults: Faults::from_env(),
            durability: Durability::Off,
        }
    }
}

/// A submitted unit of work: the dataset and the full `pmaxT` options.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Expression matrix (genes × samples).
    pub data: Matrix,
    /// Class labels, one per sample column.
    pub classlabel: Vec<u8>,
    /// Run options; `opts.threads`/`opts.batch` set this job's engine budget.
    pub opts: PmaxtOptions,
    /// Filesystem path the dataset was read from, when it has one. Required
    /// for cross-daemon sharding: peers re-read the dataset from this path on
    /// their own filesystem instead of shipping the matrix inline. Jobs
    /// submitted without a path always run locally.
    pub source_path: Option<std::path::PathBuf>,
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue for a worker.
    Queued,
    /// A worker is processing a span right now.
    Running,
    /// All permutations accumulated; the result is available.
    Finished,
    /// Cancelled; the last completed span remains cached for resumption.
    Cancelled,
    /// The engine reported an error (see [`JobStatus::error`]).
    Failed,
}

impl JobState {
    /// Wire string form.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Finished => "finished",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// True when the job will never make further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Finished | JobState::Cancelled | JobState::Failed
        )
    }
}

/// How the cache served a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// No entry; computed from scratch (and cached).
    Miss,
    /// Entry covered the full request: no permutations computed.
    Hit,
    /// Entry for the same `B` with a partial cursor: crash/cancel recovery.
    Resume {
        /// Cursor the job resumed from.
        from: u64,
    },
    /// Entry for a smaller `B`: incremental extension of a finished run.
    Extend {
        /// Cursor (the previous run's `B`) the job extended from.
        from: u64,
    },
    /// Not cached: caching disabled, or the entry covers more permutations
    /// than requested (computing fresh must not clobber it).
    Uncached,
}

impl CacheDisposition {
    /// Wire string form.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheDisposition::Miss => "miss",
            CacheDisposition::Hit => "hit",
            CacheDisposition::Resume { .. } => "resume",
            CacheDisposition::Extend { .. } => "extend",
            CacheDisposition::Uncached => "uncached",
        }
    }

    /// The cursor this submission started from (0 unless resuming/extending).
    pub fn resumed_from(self) -> u64 {
        match self {
            CacheDisposition::Resume { from } | CacheDisposition::Extend { from } => from,
            _ => 0,
        }
    }
}

/// Point-in-time view of a job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id (unique within the manager's lifetime).
    pub id: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Permutations accounted for, including live intra-span progress.
    pub done: u64,
    /// Total permutations of the run (the resolved `B`).
    pub total: u64,
    /// Permutations actually computed by this submission (0 for a cache hit).
    pub computed: u64,
    /// How the cache served this submission.
    pub cache: CacheDisposition,
    /// Estimated seconds to completion, from the critical-path rate of the
    /// spans processed so far; `None` before the first span (or when done).
    pub eta_secs: Option<f64>,
    /// Failure message when `state == Failed`.
    pub error: Option<String>,
    /// Cross-daemon wire counters, for sharded jobs only.
    pub comm: Option<ShardSnapshot>,
    /// Summary of the adaptive run, for finished adaptive-mode jobs only.
    pub adaptive: Option<AdaptiveBrief>,
    /// True when this job was re-enqueued from the journal after a daemon
    /// restart (recovery provenance; see [`crate::journal`]).
    pub recovered: bool,
}

/// Compact summary of a finished adaptive-mode run, embedded in
/// [`JobStatus`]. The full per-gene report travels with the result
/// (see [`JobManager::adaptive_report`]).
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveBrief {
    /// Genes deactivated before the full permutation budget.
    pub genes_stopped: u64,
    /// Scored gene-permutations as a fraction of the exact-mode total.
    pub budget_fraction: f64,
    /// Cursor of the bitwise-exact full-gene prefix (the upgrade point).
    pub watermark: u64,
    /// True when >90% of eligible genes stopped within 10% of the budget.
    pub mass_deactivation: bool,
}

/// Outcome of [`JobManager::submit`].
#[derive(Debug, Clone)]
pub struct SubmitInfo {
    /// Job id to poll/await/cancel.
    pub id: u64,
    /// State right after submission (`Finished` for an instant cache hit).
    pub state: JobState,
    /// How the cache served the submission.
    pub cache: CacheDisposition,
    /// Total permutations of the run (the resolved `B`).
    pub total: u64,
    /// True when an identical live job already existed and was returned
    /// instead of a new one.
    pub deduped: bool,
    /// Hex cache key of the run's permutation stream.
    pub key: String,
    /// True when the (possibly deduped-onto) job was re-enqueued from the
    /// journal after a daemon restart.
    pub recovered: bool,
}

/// Progress/lifecycle event streamed to subscribers.
#[derive(Debug, Clone)]
pub struct JobEvent {
    /// Job id.
    pub job: u64,
    /// State at the time of the event.
    pub state: JobState,
    /// Permutations accounted for.
    pub done: u64,
    /// Total permutations.
    pub total: u64,
    /// ETA estimate, when one exists.
    pub eta_secs: Option<f64>,
    /// Cross-daemon wire counters, for sharded jobs only.
    pub comm: Option<ShardSnapshot>,
}

/// Errors surfaced by the manager API.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The submission failed validation (bad labels, options, matrix…).
    Invalid(CoreError),
    /// The queue is at capacity.
    QueueFull {
        /// The configured capacity.
        cap: usize,
    },
    /// No job with that id.
    UnknownJob(u64),
    /// The job has not finished yet (non-waiting result fetch).
    NotFinished(u64),
    /// The job was cancelled before finishing.
    Cancelled(u64),
    /// The job failed; the message is the engine error.
    Failed(String),
    /// A bounded wait elapsed.
    Timeout(u64),
    /// The manager is shutting down (or draining).
    ShuttingDown,
    /// An internal invariant broke — a bug, not a caller mistake. The daemon
    /// stays up and reports it instead of panicking the request thread.
    Internal(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Invalid(e) => write!(f, "invalid job: {e}"),
            JobError::QueueFull { cap } => write!(f, "job queue full ({cap} jobs)"),
            JobError::UnknownJob(id) => write!(f, "no such job {id}"),
            JobError::NotFinished(id) => write!(f, "job {id} has not finished"),
            JobError::Cancelled(id) => write!(f, "job {id} was cancelled"),
            JobError::Failed(msg) => write!(f, "job failed: {msg}"),
            JobError::Timeout(id) => write!(f, "timed out waiting for job {id}"),
            JobError::ShuttingDown => write!(f, "job manager is shutting down"),
            JobError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

impl JobError {
    /// Wire error code: `usage` for caller mistakes, `busy` for back-pressure,
    /// `runtime` for everything else.
    pub fn code(&self) -> &'static str {
        match self {
            JobError::Invalid(_) | JobError::UnknownJob(_) | JobError::NotFinished(_) => "usage",
            JobError::QueueFull { .. } => "busy",
            _ => "runtime",
        }
    }
}

/// Everything a worker needs to process spans of one job. Immutable after
/// submission.
struct JobWork {
    prepared: Matrix,
    labels: ClassLabels,
    opts: PmaxtOptions,
    b: u64,
    cfg: EngineConfig,
    check_digest: u64,
    cached: bool,
    /// Resolved run mode (env override folded in at submission time).
    mode: Mode,
    /// Dataset path for sharded dispatch (peers read it themselves).
    source: Option<std::path::PathBuf>,
}

/// Mutable per-job state, guarded by one mutex.
struct JobProgress {
    state: JobState,
    cursor: u64,
    counts: CountAccumulator,
    computed: u64,
    cache: CacheDisposition,
    secs_per_perm: Option<f64>,
    result: Option<MaxTResult>,
    /// Per-gene interval estimates, set when a bootstrap-workload job
    /// finishes (such jobs never set `result`).
    boot: Option<BootstrapResult>,
    /// Per-gene adaptive report, set when a Mode::Adaptive job finishes.
    adaptive: Option<AdaptiveReport>,
    error: Option<String>,
}

struct Job {
    id: u64,
    key: CacheKey,
    work: JobWork,
    cancel: AtomicBool,
    /// Cursor plus live intra-span progress, updated lock-free by engine
    /// workers for cheap status/ETA reads.
    live_done: AtomicU64,
    /// Wire counters when this job is sharded across peer daemons.
    shard: Option<Arc<ShardStats>>,
    /// Recovery provenance: re-enqueued from the journal after a restart.
    recovered: bool,
    /// Journal bookkeeping: set once the accept record is appended (only
    /// then do lifecycle records make sense), and once-guards for the
    /// started/terminal records so retries and races stay idempotent.
    jrn_accepted: AtomicBool,
    jrn_started: AtomicBool,
    jrn_closed: AtomicBool,
    prog: Mutex<JobProgress>,
    subs: Mutex<Vec<mpsc::Sender<JobEvent>>>,
}

struct Inner {
    cfg: ManagerConfig,
    cache: Option<ResultCache>,
    /// Write-ahead job journal; `None` when durability is off or there is
    /// no cache directory to host it.
    journal: Option<Journal>,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// Drain mode: reject new submissions but let queued/running jobs reach
    /// a terminal state (see [`JobManager::drain`]).
    draining: AtomicBool,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    /// (stream key hex, resolved B, mode) → live job id, for submission
    /// dedup. Mode is part of the key: an adaptive and an exact submission
    /// of the same stream are different jobs (they share a cache address —
    /// the watermark — but not a result).
    dedup: Mutex<HashMap<(String, u64, Mode), u64>>,
    next_id: AtomicU64,
    /// Generation counter bumped on every state change; waiters re-check
    /// after each bump. Never locked while holding a job's `prog` mutex.
    change: Mutex<u64>,
    change_cv: Condvar,
}

/// What journal replay found and did at startup (see
/// [`JobManager::recovery_report`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal segments scanned.
    pub segments: usize,
    /// Valid records replayed across all segments.
    pub records: usize,
    /// Bytes truncated from a torn tail (quarantined, not lost silently).
    pub torn_bytes: u64,
    /// Damaged mid-segment frames skipped by resynchronization.
    pub resyncs: u64,
    /// Jobs the fold found in a non-terminal state.
    pub pending: usize,
    /// Pending jobs re-enqueued to compute (possibly resuming mid-stream
    /// from their checkpoint cursor).
    pub requeued: usize,
    /// Pending jobs that finalized straight from a completed cache entry.
    pub from_cache: usize,
    /// Pending jobs that could not be reconstructed (no dataset source
    /// recorded, source unreadable, or resubmission refused).
    pub unrecoverable: usize,
}

/// The job service: owns the queue, the worker pool and the cache.
pub struct JobManager {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Set once at startup when a journal was replayed.
    recovery: Mutex<Option<RecoveryReport>>,
}

impl std::fmt::Debug for JobManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobManager")
            .field("cfg", &self.inner.cfg)
            .finish_non_exhaustive()
    }
}

impl JobManager {
    /// Start a manager: open the cache (if configured) and spawn the worker
    /// pool.
    pub fn new(mut cfg: ManagerConfig) -> std::io::Result<JobManager> {
        if cfg.workers == 0 {
            cfg.workers = 2;
        }
        if cfg.span == 0 {
            cfg.span = ManagerConfig::default().span;
        }
        if cfg.job_threads == 0 {
            let avail = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            cfg.job_threads = (avail / cfg.workers).max(1);
        }
        let cache = match &cfg.cache_dir {
            Some(dir) => Some(ResultCache::open_with(dir.clone(), cfg.faults.clone())?),
            None => None,
        };
        // The journal lives under the cache directory: durability without a
        // cache has nothing to resume from, so it degrades to off (loudly).
        let mut replay = None;
        let journal = match (&cfg.cache_dir, cfg.durability) {
            (_, Durability::Off) => None,
            (None, mode) => {
                eprintln!(
                    "jobd: --durability {} requires a cache directory; journal disabled",
                    mode.as_str()
                );
                None
            }
            (Some(dir), mode) => {
                let (journal, rep) = Journal::open(&dir.join("journal"), mode, cfg.faults.clone())?;
                replay = Some(rep);
                Some(journal)
            }
        };
        let inner = Arc::new(Inner {
            cfg,
            cache,
            journal,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            jobs: Mutex::new(HashMap::new()),
            dedup: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            change: Mutex::new(0),
            change_cv: Condvar::new(),
        });
        let workers = (0..inner.cfg.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let mgr = JobManager {
            inner,
            workers: Mutex::new(workers),
            recovery: Mutex::new(None),
        };
        if let Some(replay) = replay {
            mgr.recover(replay);
        }
        Ok(mgr)
    }

    /// The startup journal-replay report, when this manager keeps a journal.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        plock(&self.recovery).clone()
    }

    /// Submit a run. Validates like `mt_maxt`, consults the cache, dedups
    /// against identical live jobs, and enqueues whatever remains to compute.
    pub fn submit(&self, spec: JobSpec) -> Result<SubmitInfo, JobError> {
        self.submit_inner(spec, false)
    }

    /// [`JobManager::submit`] body, with recovery provenance threaded
    /// through: journal replay re-enters here with `recovered = true`.
    fn submit_inner(&self, spec: JobSpec, recovered: bool) -> Result<SubmitInfo, JobError> {
        if self.inner.shutdown.load(Ordering::Relaxed)
            || self.inner.draining.load(Ordering::Relaxed)
        {
            return Err(JobError::ShuttingDown);
        }
        let JobSpec {
            data,
            classlabel,
            opts,
            source_path,
        } = spec;
        // The bootstrap workload runs on its own driver (no permutation
        // counts, no span queue) — route it to its own submission path.
        if opts.workload == Workload::Bootstrap {
            return self.submit_boot(data, classlabel, opts, source_path, recovered);
        }
        // Validation and NA canonicalization, exactly as `prepare_run` does —
        // inlined because the canonical matrix is also the digest input.
        let labels = ClassLabels::new(classlabel.clone(), opts.test).map_err(JobError::Invalid)?;
        if labels.len() != data.cols() {
            return Err(JobError::Invalid(CoreError::BadLabels(format!(
                "classlabel length {} does not match {} data columns",
                labels.len(),
                data.cols()
            ))));
        }
        // The cache extends a B-permutation result to B′ > B by reusing its
        // counts verbatim, which is only sound when counts are bitwise
        // reproducible — so the f32 accumulation mode is refused at the door
        // (env override included, so SPRINT_PRECISION can't smuggle it in).
        if opts.precision.env_override() == Precision::F32 {
            return Err(JobError::Invalid(CoreError::BadOption {
                param: "precision",
                value: "f32 (the job service requires bitwise-reproducible f64)".into(),
            }));
        }
        // Resolve the run mode once (SPRINT_MODE folded in) so dedup, the
        // runner choice and the cache story all agree for this job's life.
        let mode = opts.mode.env_override();
        let data = match opts.na {
            Some(code) => {
                Matrix::from_vec_with_na(data.rows(), data.cols(), data.as_slice().to_vec(), code)
                    .map_err(JobError::Invalid)?
            }
            None => data,
        };
        let b = resolve_permutation_count(&labels, &opts).map_err(JobError::Invalid)?;
        let key = CacheKey::new(&data, &classlabel, &opts);
        let key_hex = key.hex();

        // Dedup: an identical live submission is the same job. Cancelled and
        // failed jobs fall through — resubmitting one is the recovery path
        // (it resumes from the last checkpoint via the cache probe below).
        if let Some(&id) = plock(&self.inner.dedup).get(&(key_hex.clone(), b, mode)) {
            if let Some(job) = plock(&self.inner.jobs).get(&id) {
                let prog = plock(&job.prog);
                if !matches!(prog.state, JobState::Cancelled | JobState::Failed) {
                    return Ok(SubmitInfo {
                        id,
                        state: prog.state,
                        cache: prog.cache,
                        total: b,
                        deduped: true,
                        key: key_hex,
                        recovered: job.recovered,
                    });
                }
            }
        }

        let prepared = prepare_matrix(&data, opts.test, opts.nonpara).into_owned();
        let genes = prepared.rows();
        let mut cursor = 0u64;
        let mut counts = CountAccumulator::new(genes);
        let mut cache_note = CacheDisposition::Uncached;
        let mut cached = false;
        if let Some(cache) = &self.inner.cache {
            cached = true;
            match cache.probe(&key, b) {
                CacheProbe::Hit(state) => {
                    // The stored counts fully determine the result: finalize
                    // without queueing. An adaptive submission served from a
                    // full exact entry gets collapsed bounds — the cache had
                    // already paid for certainty, so it is handed over.
                    let (result, adaptive) = {
                        let ctx = MaxTContext::with_scorer(
                            &prepared,
                            &labels,
                            opts.test,
                            opts.side,
                            opts.kernel,
                            opts.precision,
                        );
                        let rep = (mode == Mode::Adaptive)
                            .then(|| collapsed_adaptive_report(&ctx, &state.counts, b));
                        (ctx.finalize(&state.counts), rep)
                    };
                    let id = self
                        .register(
                            key,
                            key_hex.clone(),
                            JobWork {
                                prepared,
                                labels,
                                opts,
                                b,
                                cfg: EngineConfig::serial(),
                                check_digest: key.check_digest(),
                                cached: false,
                                mode,
                                source: None,
                            },
                            JobProgress {
                                state: JobState::Finished,
                                cursor: b,
                                counts: state.counts,
                                computed: 0,
                                cache: CacheDisposition::Hit,
                                secs_per_perm: None,
                                result: Some(result),
                                boot: None,
                                adaptive,
                                error: None,
                            },
                            false,
                            None,
                            recovered,
                        )?
                        .id;
                    self.bump_change();
                    return Ok(SubmitInfo {
                        id,
                        state: JobState::Finished,
                        cache: CacheDisposition::Hit,
                        total: b,
                        deduped: false,
                        key: key_hex,
                        recovered,
                    });
                }
                CacheProbe::Partial(state) => {
                    cache_note = if state.b == b {
                        CacheDisposition::Resume { from: state.cursor }
                    } else {
                        CacheDisposition::Extend { from: state.cursor }
                    };
                    cursor = state.cursor;
                    counts = state.counts;
                }
                CacheProbe::Beyond => {
                    cached = false;
                }
                CacheProbe::Miss => {
                    cache_note = CacheDisposition::Miss;
                }
            }
        }

        let threads = if opts.threads == 0 {
            self.inner.cfg.job_threads
        } else {
            opts.threads
        };
        let cfg = EngineConfig::explicit(threads, opts.batch);
        let work = JobWork {
            prepared,
            labels,
            opts,
            b,
            cfg,
            check_digest: key.check_digest(),
            cached,
            mode,
            source: source_path,
        };
        let prog = JobProgress {
            state: JobState::Queued,
            cursor,
            counts,
            computed: 0,
            cache: cache_note,
            secs_per_perm: None,
            result: None,
            boot: None,
            adaptive: None,
            error: None,
        };
        // A job is sharded across peer daemons when a roster is configured
        // and the dataset has a path peers can re-read. Sharded jobs bypass
        // the local span queue: a dedicated coordinator drives them.
        // Adaptive jobs always run locally on their own thread: the live
        // gene set shrinks between chunks, which the span protocol cannot
        // express.
        let adaptive = mode == Mode::Adaptive;
        let sharded = !adaptive && !self.inner.cfg.peers.is_empty() && work.source.is_some();
        let shard = sharded.then(|| Arc::new(ShardStats::default()));
        let enqueue = !sharded && !adaptive;
        let job = self.register(key, key_hex.clone(), work, prog, enqueue, shard, recovered)?;
        self.journal_accept(&job, enqueue)?;
        let id = job.id;
        if sharded {
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || {
                // Same panic isolation as the worker loop: a coordinator
                // panic fails the job, never the daemon.
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run_sharded(&inner, &job))) {
                    fail_job(
                        &inner,
                        &job,
                        format!(
                            "shard coordinator panicked: {}",
                            panic_message(payload.as_ref())
                        ),
                    );
                }
            });
        } else if adaptive {
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || {
                // Same panic isolation as the worker loop: a runner panic
                // fails the job, never the daemon.
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run_adaptive(&inner, &job)))
                {
                    fail_job(
                        &inner,
                        &job,
                        format!(
                            "adaptive runner panicked: {}",
                            panic_message(payload.as_ref())
                        ),
                    );
                }
            });
        }
        Ok(SubmitInfo {
            id,
            state: JobState::Queued,
            cache: cache_note,
            total: b,
            deduped: false,
            key: key_hex,
            recovered,
        })
    }

    /// Execute one span `[start, start + take)` of a sharded run on behalf
    /// of a peer coordinator and return the flat exceedance counts.
    ///
    /// Validation mirrors [`JobManager::submit`] exactly (label checks, f32
    /// refusal, NA canonicalization) so a span computed here is drawn from
    /// the same canonical matrix and skip-ahead permutation stream as the
    /// coordinator's own spans. The daemon additionally re-resolves the
    /// permutation count from its own copy of the dataset and refuses the
    /// span on drift — a peer with a stale or divergent file must never
    /// contribute counts.
    pub fn exec_span(
        &self,
        data: Matrix,
        classlabel: Vec<u8>,
        opts: PmaxtOptions,
        b: u64,
        start: u64,
        take: u64,
    ) -> Result<(Vec<u64>, f64), JobError> {
        if self.inner.shutdown.load(Ordering::Relaxed)
            || self.inner.draining.load(Ordering::Relaxed)
        {
            return Err(JobError::ShuttingDown);
        }
        let labels = ClassLabels::new(classlabel, opts.test).map_err(JobError::Invalid)?;
        if labels.len() != data.cols() {
            return Err(JobError::Invalid(CoreError::BadLabels(format!(
                "classlabel length {} does not match {} data columns",
                labels.len(),
                data.cols()
            ))));
        }
        if opts.precision.env_override() == Precision::F32 {
            return Err(JobError::Invalid(CoreError::BadOption {
                param: "precision",
                value: "f32 (the job service requires bitwise-reproducible f64)".into(),
            }));
        }
        // A span is a fixed permutation range over *all* genes; the adaptive
        // runner's shrinking live set has no place in the span protocol.
        if opts.mode.env_override() == Mode::Adaptive {
            return Err(JobError::Invalid(CoreError::BadOption {
                param: "mode",
                value: "adaptive (span execution serves bitwise-exact sharded runs only)".into(),
            }));
        }
        let data = match opts.na {
            Some(code) => {
                Matrix::from_vec_with_na(data.rows(), data.cols(), data.as_slice().to_vec(), code)
                    .map_err(JobError::Invalid)?
            }
            None => data,
        };
        let resolved = resolve_permutation_count(&labels, &opts).map_err(JobError::Invalid)?;
        if resolved != b {
            return Err(JobError::Invalid(CoreError::BadOption {
                param: "b",
                value: format!(
                    "coordinator resolved B={b} but this daemon resolves B={resolved} \
                     (dataset or option drift between peers)"
                ),
            }));
        }
        if start.checked_add(take).is_none_or(|end| end > b) {
            return Err(JobError::Invalid(CoreError::BadOption {
                param: "span",
                value: format!("[{start}, {start}+{take}) exceeds B={b}"),
            }));
        }
        let prepared = prepare_matrix(&data, opts.test, opts.nonpara).into_owned();
        let threads = if opts.threads == 0 {
            self.inner.cfg.job_threads
        } else {
            opts.threads
        };
        let cfg = EngineConfig::explicit(threads, opts.batch);
        let ctx = MaxTContext::with_scorer(
            &prepared,
            &labels,
            opts.test,
            opts.side,
            opts.kernel,
            opts.precision,
        );
        let hooks = ChunkHooks {
            cancel: None,
            progress: None,
        };
        let cpu0 = shard::thread_cpu_secs();
        let run = accumulate_chunk_hooked(&ctx, &labels, &opts, b, start, take, cfg, hooks)
            .map_err(JobError::Invalid)?;
        let secs = kernel_secs(cpu0, &run);
        Ok((run.counts.to_flat(), secs))
    }

    /// Submit a bootstrap-workload run. Validation follows
    /// [`sprint_core::boot::validate_boot`]; the cache is consulted for a
    /// finished entry of exactly the requested draw count (interval
    /// estimates are order statistics — there is no prefix state to resume
    /// from); whatever remains to compute runs on a dedicated thread,
    /// sharded by gene slices across peer daemons when a roster and a
    /// dataset path are available.
    fn submit_boot(
        &self,
        data: Matrix,
        classlabel: Vec<u8>,
        opts: PmaxtOptions,
        source_path: Option<std::path::PathBuf>,
        recovered: bool,
    ) -> Result<SubmitInfo, JobError> {
        let (labels, b, data) =
            boot::validate_boot(&data, &classlabel, &opts).map_err(JobError::Invalid)?;
        // Same env-override hardening as the permutation path: SPRINT_PRECISION
        // must not smuggle f32 accumulation past the option check.
        if opts.precision.env_override() == Precision::F32 {
            return Err(JobError::Invalid(CoreError::BadOption {
                param: "precision",
                value: "f32 (the job service requires bitwise-reproducible f64)".into(),
            }));
        }
        let genes = data.rows();
        let key = CacheKey::new(&data, &classlabel, &opts);
        let key_hex = key.hex();

        // Dedup against an identical live bootstrap submission. The options
        // digest carries the workload marker, so a permutation job of the
        // same dataset/options can never alias this key.
        if let Some(&id) = plock(&self.inner.dedup).get(&(key_hex.clone(), b, Mode::Exact)) {
            if let Some(job) = plock(&self.inner.jobs).get(&id) {
                let prog = plock(&job.prog);
                if !matches!(prog.state, JobState::Cancelled | JobState::Failed) {
                    return Ok(SubmitInfo {
                        id,
                        state: prog.state,
                        cache: prog.cache,
                        total: b,
                        deduped: true,
                        key: key_hex,
                        recovered: job.recovered,
                    });
                }
            }
        }

        let mut cache_note = CacheDisposition::Uncached;
        let mut cached = false;
        if let Some(cache) = &self.inner.cache {
            cached = true;
            cache_note = CacheDisposition::Miss;
            if let Some(result) = cache.probe_boot(&key, b) {
                if result.offset == 0 && result.genes() == genes {
                    let id = self
                        .register(
                            key,
                            key_hex.clone(),
                            JobWork {
                                prepared: data,
                                labels,
                                opts,
                                b,
                                cfg: EngineConfig::serial(),
                                check_digest: key.check_digest(),
                                cached: false,
                                mode: Mode::Exact,
                                source: None,
                            },
                            JobProgress {
                                state: JobState::Finished,
                                cursor: b,
                                counts: CountAccumulator::new(genes),
                                computed: 0,
                                cache: CacheDisposition::Hit,
                                secs_per_perm: None,
                                result: None,
                                boot: Some(result),
                                adaptive: None,
                                error: None,
                            },
                            false,
                            None,
                            recovered,
                        )?
                        .id;
                    self.bump_change();
                    return Ok(SubmitInfo {
                        id,
                        state: JobState::Finished,
                        cache: CacheDisposition::Hit,
                        total: b,
                        deduped: false,
                        key: key_hex,
                        recovered,
                    });
                }
            }
        }

        let threads = if opts.threads == 0 {
            self.inner.cfg.job_threads
        } else {
            opts.threads
        };
        // Fold the manager's per-job thread budget into the options the
        // driver sees: `boot_run_slice` resolves its own engine config.
        let mut opts = opts;
        opts.threads = threads;
        let cfg = EngineConfig::explicit(threads, opts.batch);
        let sharded = !self.inner.cfg.peers.is_empty() && source_path.is_some();
        let shard = sharded.then(|| Arc::new(ShardStats::default()));
        let work = JobWork {
            prepared: data,
            labels,
            opts,
            b,
            cfg,
            check_digest: key.check_digest(),
            cached,
            mode: Mode::Exact,
            source: source_path,
        };
        let prog = JobProgress {
            state: JobState::Queued,
            cursor: 0,
            counts: CountAccumulator::new(genes),
            computed: 0,
            cache: cache_note,
            secs_per_perm: None,
            result: None,
            boot: None,
            adaptive: None,
            error: None,
        };
        // Bootstrap jobs never enter the span queue: like adaptive runs they
        // get a dedicated thread (their unit of work is the whole replicate
        // set, which the span protocol cannot slice).
        let job = self.register(key, key_hex.clone(), work, prog, false, shard, recovered)?;
        self.journal_accept(&job, false)?;
        let id = job.id;
        let inner = Arc::clone(&self.inner);
        std::thread::spawn(move || {
            // Same panic isolation as the worker loop: a runner panic fails
            // the job, never the daemon.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run_bootstrap(&inner, &job))) {
                fail_job(
                    &inner,
                    &job,
                    format!(
                        "bootstrap runner panicked: {}",
                        panic_message(payload.as_ref())
                    ),
                );
            }
        });
        Ok(SubmitInfo {
            id,
            state: JobState::Queued,
            cache: cache_note,
            total: b,
            deduped: false,
            key: key_hex,
            recovered,
        })
    }

    /// Execute one gene slice `[row_start, row_start + row_take)` of a
    /// sharded bootstrap run on behalf of a peer coordinator.
    ///
    /// Validation mirrors [`JobManager::submit`]'s bootstrap path; the
    /// daemon re-resolves the draw count from its own copy of the dataset
    /// and refuses on drift, exactly like [`JobManager::exec_span`].
    pub fn exec_boot(
        &self,
        data: Matrix,
        classlabel: Vec<u8>,
        opts: PmaxtOptions,
        b: u64,
        row_start: u64,
        row_take: u64,
    ) -> Result<(BootstrapResult, f64), JobError> {
        if self.inner.shutdown.load(Ordering::Relaxed)
            || self.inner.draining.load(Ordering::Relaxed)
        {
            return Err(JobError::ShuttingDown);
        }
        let (_labels, resolved, data) =
            boot::validate_boot(&data, &classlabel, &opts).map_err(JobError::Invalid)?;
        if opts.precision.env_override() == Precision::F32 {
            return Err(JobError::Invalid(CoreError::BadOption {
                param: "precision",
                value: "f32 (the job service requires bitwise-reproducible f64)".into(),
            }));
        }
        if resolved != b {
            return Err(JobError::Invalid(CoreError::BadOption {
                param: "b",
                value: format!(
                    "coordinator resolved B={b} but this daemon resolves B={resolved} \
                     (dataset or option drift between peers)"
                ),
            }));
        }
        let rows = data.rows() as u64;
        if row_start.checked_add(row_take).is_none_or(|end| end > rows) {
            return Err(JobError::Invalid(CoreError::BadOption {
                param: "rows",
                value: format!("[{row_start}, {row_start}+{row_take}) exceeds {rows} gene rows"),
            }));
        }
        let mut opts = opts;
        if opts.threads == 0 {
            opts.threads = self.inner.cfg.job_threads;
        }
        let cpu0 = shard::thread_cpu_secs();
        let t0 = Instant::now();
        let result = boot::boot_run_slice(
            &data,
            &classlabel,
            &opts,
            row_start as usize..(row_start + row_take) as usize,
        )
        .map_err(JobError::Invalid)?;
        let secs = match (cpu0, shard::thread_cpu_secs()) {
            (Some(a), Some(z)) if opts.threads <= 1 => (z - a).max(0.0),
            _ => t0.elapsed().as_secs_f64(),
        };
        Ok((result, secs))
    }

    /// Insert a job into the maps (and, when `enqueue`, the run queue —
    /// enforcing the queue cap).
    #[allow(clippy::too_many_arguments)]
    fn register(
        &self,
        key: CacheKey,
        key_hex: String,
        work: JobWork,
        prog: JobProgress,
        enqueue: bool,
        shard: Option<Arc<ShardStats>>,
        recovered: bool,
    ) -> Result<Arc<Job>, JobError> {
        let b = work.b;
        let mode = work.mode;
        let live_done = prog.cursor;
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(Job {
            id,
            key,
            work,
            cancel: AtomicBool::new(false),
            live_done: AtomicU64::new(live_done),
            shard,
            recovered,
            jrn_accepted: AtomicBool::new(false),
            jrn_started: AtomicBool::new(false),
            jrn_closed: AtomicBool::new(false),
            prog: Mutex::new(prog),
            subs: Mutex::new(Vec::new()),
        });
        if enqueue {
            let mut queue = plock(&self.inner.queue);
            if queue.len() >= self.inner.cfg.queue_cap {
                return Err(JobError::QueueFull {
                    cap: self.inner.cfg.queue_cap,
                });
            }
            queue.push_back(Arc::clone(&job));
            self.inner.queue_cv.notify_one();
        }
        plock(&self.inner.jobs).insert(id, Arc::clone(&job));
        plock(&self.inner.dedup).insert((key_hex, b, mode), id);
        Ok(job)
    }

    fn get(&self, id: u64) -> Result<Arc<Job>, JobError> {
        plock(&self.inner.jobs)
            .get(&id)
            .cloned()
            .ok_or(JobError::UnknownJob(id))
    }

    /// Snapshot a job's status.
    pub fn status(&self, id: u64) -> Result<JobStatus, JobError> {
        let job = self.get(id)?;
        Ok(status_of(&job))
    }

    /// Status of every known job, by ascending id.
    pub fn list(&self) -> Vec<JobStatus> {
        let mut all: Vec<JobStatus> = plock(&self.inner.jobs)
            .values()
            .map(|j| status_of(j))
            .collect();
        all.sort_by_key(|s| s.id);
        all
    }

    /// The finished result, or [`JobError::NotFinished`] (terminal failure
    /// states map to their own errors).
    pub fn result(&self, id: u64) -> Result<MaxTResult, JobError> {
        let job = self.get(id)?;
        let prog = plock(&job.prog);
        match prog.state {
            JobState::Finished if prog.boot.is_some() => {
                Err(JobError::Invalid(CoreError::BadOption {
                    param: "workload",
                    value: format!(
                        "bootstrap (job {id} is a bootstrap run; fetch its interval \
                         estimates with the bootstrap result call)"
                    ),
                }))
            }
            JobState::Finished => prog.result.clone().ok_or_else(|| {
                JobError::Internal(format!("job {id} is finished but has no stored result"))
            }),
            JobState::Cancelled => Err(JobError::Cancelled(id)),
            JobState::Failed => Err(JobError::Failed(
                prog.error.clone().unwrap_or_else(|| "unknown".into()),
            )),
            _ => Err(JobError::NotFinished(id)),
        }
    }

    /// True when `id` is a bootstrap-workload job (its result travels as
    /// interval estimates, not maxT p-values).
    pub fn is_boot(&self, id: u64) -> Result<bool, JobError> {
        Ok(self.get(id)?.work.opts.workload == Workload::Bootstrap)
    }

    /// The finished bootstrap estimates, or [`JobError::NotFinished`]. Same
    /// terminal-state contract as [`JobManager::result`]; asking a
    /// permutation job for bootstrap estimates is a usage error.
    pub fn boot_result(&self, id: u64) -> Result<BootstrapResult, JobError> {
        let job = self.get(id)?;
        let prog = plock(&job.prog);
        match prog.state {
            JobState::Finished => prog.boot.clone().ok_or_else(|| {
                JobError::Invalid(CoreError::BadOption {
                    param: "workload",
                    value: format!(
                        "{} (job {id} is a permutation run; fetch its maxT result instead)",
                        job.work.opts.workload.as_str()
                    ),
                })
            }),
            JobState::Cancelled => Err(JobError::Cancelled(id)),
            JobState::Failed => Err(JobError::Failed(
                prog.error.clone().unwrap_or_else(|| "unknown".into()),
            )),
            _ => Err(JobError::NotFinished(id)),
        }
    }

    /// Block until the bootstrap job reaches a terminal state (or `timeout`
    /// elapses) and return its estimates.
    pub fn wait_boot_result(
        &self,
        id: u64,
        timeout: Option<Duration>,
    ) -> Result<BootstrapResult, JobError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let seen = *plock(&self.inner.change);
            match self.boot_result(id) {
                Err(JobError::NotFinished(_)) => {}
                other => return other,
            }
            if self.inner.shutdown.load(Ordering::Relaxed) {
                return Err(JobError::ShuttingDown);
            }
            let mut gen = plock(&self.inner.change);
            while *gen == seen {
                match deadline {
                    None => {
                        gen = self
                            .inner
                            .change_cv
                            .wait(gen)
                            .unwrap_or_else(PoisonError::into_inner)
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Err(JobError::Timeout(id));
                        }
                        let (g, _) = self
                            .inner
                            .change_cv
                            .wait_timeout(gen, d - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        gen = g;
                    }
                }
            }
        }
    }

    /// The per-gene adaptive report of a finished adaptive-mode job; `None`
    /// for exact jobs. Same terminal-state contract as [`JobManager::result`].
    pub fn adaptive_report(&self, id: u64) -> Result<Option<AdaptiveReport>, JobError> {
        let job = self.get(id)?;
        let prog = plock(&job.prog);
        match prog.state {
            JobState::Finished => Ok(prog.adaptive.clone()),
            JobState::Cancelled => Err(JobError::Cancelled(id)),
            JobState::Failed => Err(JobError::Failed(
                prog.error.clone().unwrap_or_else(|| "unknown".into()),
            )),
            _ => Err(JobError::NotFinished(id)),
        }
    }

    /// Block until the job reaches a terminal state (or `timeout` elapses)
    /// and return its result.
    pub fn wait_result(&self, id: u64, timeout: Option<Duration>) -> Result<MaxTResult, JobError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            // Read the generation *before* checking state: any transition
            // after the check bumps it, so the wait below cannot miss it.
            let seen = *plock(&self.inner.change);
            match self.result(id) {
                Err(JobError::NotFinished(_)) => {}
                other => return other,
            }
            if self.inner.shutdown.load(Ordering::Relaxed) {
                return Err(JobError::ShuttingDown);
            }
            let mut gen = plock(&self.inner.change);
            while *gen == seen {
                match deadline {
                    None => {
                        gen = self
                            .inner
                            .change_cv
                            .wait(gen)
                            .unwrap_or_else(PoisonError::into_inner)
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Err(JobError::Timeout(id));
                        }
                        let (g, _) = self
                            .inner
                            .change_cv
                            .wait_timeout(gen, d - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        gen = g;
                    }
                }
            }
        }
    }

    /// Request cancellation. Queued jobs cancel immediately; running jobs
    /// abort at the next batch boundary and keep their last completed span's
    /// checkpoint. Idempotent; terminal jobs are unaffected.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, JobError> {
        let job = self.get(id)?;
        job.cancel.store(true, Ordering::Relaxed);
        let became_terminal = {
            let mut prog = plock(&job.prog);
            if prog.state == JobState::Queued {
                prog.state = JobState::Cancelled;
                true
            } else {
                false
            }
        };
        if became_terminal {
            self.emit(&job);
            self.bump_change();
            journal_transition(&self.inner, &job);
        }
        Ok(status_of(&job))
    }

    /// Subscribe to a job's progress events. The current status is delivered
    /// immediately as the first event, so a subscriber to an already-terminal
    /// job still observes its outcome.
    pub fn subscribe(&self, id: u64) -> Result<mpsc::Receiver<JobEvent>, JobError> {
        let job = self.get(id)?;
        let (tx, rx) = mpsc::channel();
        let snapshot = event_of(&job);
        // Register before snapshotting delivery so no transition between the
        // two is lost; a duplicate event is harmless, a missing terminal one
        // would wedge watchers.
        plock(&job.subs).push(tx.clone());
        let _ = tx.send(snapshot);
        Ok(rx)
    }

    /// Enter drain mode: reject further submissions with
    /// [`JobError::ShuttingDown`] while letting every queued and running job
    /// reach a terminal state. Pair with [`wait_idle`] then [`shutdown`] for
    /// a graceful exit. Idempotent.
    ///
    /// [`wait_idle`]: JobManager::wait_idle
    /// [`shutdown`]: JobManager::shutdown
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.bump_change();
    }

    /// True when no job can make further progress: the queue is empty and
    /// every known job is terminal.
    pub fn idle(&self) -> bool {
        if !plock(&self.inner.queue).is_empty() {
            return false;
        }
        plock(&self.inner.jobs)
            .values()
            .all(|job| plock(&job.prog).state.is_terminal())
    }

    /// Block until [`idle`] (or `timeout` elapses); returns whether the
    /// manager is idle. Meaningful after [`drain`] — without it new
    /// submissions can keep arriving and idleness is a race.
    ///
    /// [`idle`]: JobManager::idle
    /// [`drain`]: JobManager::drain
    pub fn wait_idle(&self, timeout: Option<Duration>) -> bool {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let seen = *plock(&self.inner.change);
            if self.idle() {
                return true;
            }
            let mut gen = plock(&self.inner.change);
            while *gen == seen {
                match deadline {
                    None => {
                        gen = self
                            .inner
                            .change_cv
                            .wait(gen)
                            .unwrap_or_else(PoisonError::into_inner)
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return self.idle();
                        }
                        let (g, _) = self
                            .inner
                            .change_cv
                            .wait_timeout(gen, d - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        gen = g;
                    }
                }
            }
        }
    }

    /// Fault-class counters of this manager's injection registry (all zero
    /// when injection is disabled). Soak tests use this to assert each fault
    /// class actually exercised its recovery path.
    pub fn fault_report(&self) -> Vec<(FaultKind, u64, u64)> {
        self.inner.cfg.faults.report()
    }

    /// Stop the worker pool: no further spans are started (in-flight spans
    /// finish and checkpoint), waiters are released with
    /// [`JobError::ShuttingDown`]. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.queue_cv.notify_all();
        self.bump_change();
        for handle in plock(&self.workers).drain(..) {
            let _ = handle.join();
        }
    }

    /// Append `job`'s accept record to the journal — the write that makes
    /// the submission durable, so it happens before the ack is returned.
    /// Under `--durability full` the append fsyncs; under `batch` the
    /// group-commit flusher picks it up within one flush interval.
    ///
    /// On failure the registration is rolled back and the client gets an
    /// error: acknowledging a job the journal never saw would break the
    /// "no acked job is lost" contract this subsystem exists for.
    fn journal_accept(&self, job: &Arc<Job>, enqueued: bool) -> Result<(), JobError> {
        let Some(journal) = &self.inner.journal else {
            return Ok(());
        };
        match journal.append(&accept_record_for(job)) {
            Ok(()) => {
                job.jrn_accepted.store(true, Ordering::SeqCst);
                crash_point("manager.accept");
                Ok(())
            }
            Err(e) => {
                self.withdraw(job, enqueued);
                Err(JobError::Internal(format!("journal append failed: {e}")))
            }
        }
    }

    /// Roll back a registration whose accept record could not be journaled:
    /// the client is told the submission failed, so the job must neither run
    /// nor serve as a dedup target.
    fn withdraw(&self, job: &Job, enqueued: bool) {
        job.cancel.store(true, Ordering::SeqCst);
        if enqueued {
            plock(&self.inner.queue).retain(|j| j.id != job.id);
        }
        plock(&self.inner.jobs).remove(&job.id);
        plock(&self.inner.dedup).retain(|_, id| *id != job.id);
    }

    /// Rewrite the journal down to the accept records of still-live jobs.
    /// After a completed drain that set is empty and the next startup
    /// replays nothing. Called by `shutdown --drain` before the ack; errors
    /// only warn — an uncompacted journal replays longer, never wrongly.
    pub fn compact_journal(&self) {
        let Some(journal) = &self.inner.journal else {
            return;
        };
        let live: Vec<JournalRecord> = plock(&self.inner.jobs)
            .values()
            .filter(|job| {
                job.jrn_accepted.load(Ordering::SeqCst) && !plock(&job.prog).state.is_terminal()
            })
            .map(|job| accept_record_for(job))
            .collect();
        if let Err(e) = journal.flush().and_then(|()| journal.compact(&live)) {
            eprintln!("jobd: journal compaction failed: {e}");
        }
    }

    /// Journal replay: fold the record stream to the set of jobs that were
    /// accepted but never reached a terminal record, and resubmit each one.
    /// Resubmission runs the normal path, so a job whose result actually
    /// made it to the cache before the crash finalizes instantly (dedup
    /// against completed work), and anything else resumes from its last
    /// checkpoint cursor. Compaction afterwards folds the replayed segments
    /// away; it runs after resubmission so a crash mid-recovery still finds
    /// every pending job in some segment.
    fn recover(&self, replay: journal::Replay) {
        let pending = journal::fold_pending(&replay.records);
        let mut report = RecoveryReport {
            segments: replay.segments,
            records: replay.records.len(),
            torn_bytes: replay.torn_bytes,
            resyncs: replay.resyncs,
            pending: pending.len(),
            ..RecoveryReport::default()
        };
        for rec in pending {
            let Some(source) = rec.source.as_deref() else {
                eprintln!(
                    "jobd: recovery: job {}:{} was submitted in-process (no dataset path); \
                     cannot reconstruct it",
                    &rec.key[..rec.key.len().min(12)],
                    rec.b
                );
                report.unrecoverable += 1;
                continue;
            };
            let opts = rec.opts.clone().unwrap_or_default();
            let spec = match microarray::io::read_dataset(std::path::Path::new(source)) {
                Ok((data, classlabel)) => JobSpec {
                    data,
                    classlabel,
                    opts,
                    source_path: Some(std::path::PathBuf::from(source)),
                },
                Err(e) => {
                    eprintln!("jobd: recovery: cannot re-read {source}: {e}");
                    report.unrecoverable += 1;
                    continue;
                }
            };
            match self.submit_inner(spec, true) {
                Ok(info) if info.state == JobState::Finished => report.from_cache += 1,
                Ok(_) => report.requeued += 1,
                Err(e) => {
                    eprintln!("jobd: recovery: resubmission of {source} refused: {e}");
                    report.unrecoverable += 1;
                }
            }
        }
        self.compact_journal();
        *plock(&self.recovery) = Some(report);
    }

    fn emit(&self, job: &Job) {
        emit_event(job);
    }

    fn bump_change(&self) {
        bump_change(&self.inner);
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn status_of(job: &Job) -> JobStatus {
    let prog = plock(&job.prog);
    let done = job.live_done.load(Ordering::Relaxed).max(prog.cursor);
    let eta_secs = match prog.state {
        JobState::Queued | JobState::Running => prog
            .secs_per_perm
            .map(|per| (job.work.b.saturating_sub(done)) as f64 * per),
        _ => None,
    };
    JobStatus {
        id: job.id,
        state: prog.state,
        done,
        total: job.work.b,
        computed: prog.computed,
        cache: prog.cache,
        eta_secs,
        error: prog.error.clone(),
        comm: job.shard.as_ref().map(|s| s.snapshot()),
        adaptive: prog.adaptive.as_ref().map(|r| AdaptiveBrief {
            genes_stopped: r.genes_stopped() as u64,
            budget_fraction: r.budget_fraction(),
            watermark: r.watermark,
            mass_deactivation: r.mass_deactivation,
        }),
        recovered: job.recovered,
    }
}

fn event_of(job: &Job) -> JobEvent {
    let st = status_of(job);
    JobEvent {
        job: st.id,
        state: st.state,
        done: st.done,
        total: st.total,
        eta_secs: st.eta_secs,
        comm: st.comm,
    }
}

fn emit_event(job: &Job) {
    let event = event_of(job);
    plock(&job.subs).retain(|tx| tx.send(event.clone()).is_ok());
}

fn bump_change(inner: &Inner) {
    *plock(&inner.change) += 1;
    inner.change_cv.notify_all();
}

/// The journal accept record describing `job` — also the shape compaction
/// re-emits for still-live jobs, so replay after any crash converges on the
/// same pending set.
fn accept_record_for(job: &Job) -> JournalRecord {
    JournalRecord {
        kind: RecordKind::Accepted,
        key: job.key.hex(),
        b: job.work.b,
        mode: job.work.mode.as_str().to_string(),
        source: job.work.source.as_ref().map(|p| p.display().to_string()),
        opts: Some(job.work.opts.clone()),
        error: None,
    }
}

/// Append the journal record for `job`'s current state, if its accept record
/// made it in. The started and terminal records are once-guarded so claim
/// races and driver retries stay idempotent; append errors only warn — the
/// in-memory outcome is already decided, and a missing lifecycle record
/// costs at most a redundant (cache-served) replay after a crash.
fn journal_transition(inner: &Inner, job: &Job) {
    let Some(journal) = &inner.journal else {
        return;
    };
    if !job.jrn_accepted.load(Ordering::SeqCst) {
        return;
    }
    let (state, error) = {
        let prog = plock(&job.prog);
        (prog.state, prog.error.clone())
    };
    let kind = match state {
        // Shutdown parks sharded jobs back to Queued; the accept record
        // already covers that state.
        JobState::Queued => return,
        JobState::Running => {
            if job.jrn_started.swap(true, Ordering::SeqCst) {
                return;
            }
            RecordKind::Started
        }
        JobState::Finished => RecordKind::Finished,
        JobState::Cancelled => RecordKind::Cancelled,
        JobState::Failed => RecordKind::Failed,
    };
    if kind.is_terminal() {
        if job.jrn_closed.swap(true, Ordering::SeqCst) {
            return;
        }
        // The widest crash window the harness drills: outcome decided and
        // (for finishes) the cache entry stored, terminal record not yet on
        // disk. Replay must re-serve the job from the cache, not recompute.
        crash_point("manager.finish");
    }
    let mut rec =
        JournalRecord::transition(kind, &job.key.hex(), job.work.b, job.work.mode.as_str());
    if kind == RecordKind::Failed {
        rec.error = error;
    }
    if let Err(e) = journal.append(&rec) {
        eprintln!(
            "jobd: journal {} record for job {} failed: {e}",
            kind.as_str(),
            job.id
        );
    }
    if kind == RecordKind::Started {
        crash_point("manager.start");
    }
}

/// Force `job` into `Failed` with `reason` (unless already terminal) and wake
/// everyone. The recovery half of worker panic isolation.
fn fail_job(inner: &Inner, job: &Arc<Job>, reason: String) {
    {
        let mut prog = plock(&job.prog);
        if prog.state.is_terminal() {
            return;
        }
        job.live_done.store(prog.cursor, Ordering::Relaxed);
        prog.state = JobState::Failed;
        prog.error = Some(reason);
    }
    emit_event(job);
    bump_change(inner);
    journal_transition(inner, job);
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut queue = plock(&inner.queue);
            loop {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = inner
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Panic isolation: a panic anywhere in span processing — engine code,
        // scoring, checkpointing, or an injected `worker_panic` — fails the
        // *job* and this worker moves on. The daemon's failure domain is
        // never entered from job-processing code.
        let requeue =
            catch_unwind(AssertUnwindSafe(|| run_span(inner, &job))).unwrap_or_else(|payload| {
                fail_job(
                    inner,
                    &job,
                    format!("worker panicked: {}", panic_message(payload.as_ref())),
                );
                false
            });
        if requeue {
            plock(&inner.queue).push_back(job);
            inner.queue_cv.notify_one();
        }
    }
}

/// Process one span of `job`. Returns true when the job should be
/// re-enqueued (more spans remain).
fn run_span(inner: &Inner, job: &Arc<Job>) -> bool {
    let work = &job.work;
    // Claim the job; bail out if it was cancelled while queued.
    let start = {
        let mut prog = plock(&job.prog);
        if prog.state != JobState::Queued {
            return false;
        }
        if job.cancel.load(Ordering::Relaxed) {
            prog.state = JobState::Cancelled;
            drop(prog);
            emit_event(job);
            bump_change(inner);
            journal_transition(inner, job);
            return false;
        }
        prog.state = JobState::Running;
        prog.cursor
    };
    journal_transition(inner, job);
    let faults = &inner.cfg.faults;
    let take = inner.cfg.span.min(work.b - start);
    let ctx = MaxTContext::with_scorer(
        &work.prepared,
        &work.labels,
        work.opts.test,
        work.opts.side,
        work.opts.kernel,
        work.opts.precision,
    );
    if take == 0 {
        // Degenerate B = cursor (e.g. resumed entry already complete but not
        // classified as a hit because caching raced): finalize in place.
        let mut prog = plock(&job.prog);
        prog.result = Some(ctx.finalize(&prog.counts));
        prog.state = JobState::Finished;
        drop(prog);
        emit_event(job);
        bump_change(inner);
        journal_transition(inner, job);
        return false;
    }
    let progress = |n: u64| {
        job.live_done.fetch_add(n, Ordering::Relaxed);
    };
    let hooks = ChunkHooks {
        cancel: Some(&job.cancel),
        progress: Some(&progress),
    };
    // Injection points for the two in-span fault classes. The panic unwinds
    // into `worker_loop`'s catch_unwind exactly as a real engine panic would;
    // the I/O error takes the ordinary engine-error path. Either way the
    // span's counts are discarded, so the job's durable state stays the last
    // completed span and a resubmit resumes bitwise-identically.
    let outcome = if faults.fire(FaultKind::WorkerPanic) {
        panic!("injected worker panic (SPRINT_FAULTS worker_panic)");
    } else if faults.fire(FaultKind::SpanIo) {
        Err(CoreError::Comm("injected span I/O error".to_string()))
    } else {
        accumulate_chunk_hooked(
            &ctx,
            &work.labels,
            &work.opts,
            work.b,
            start,
            take,
            work.cfg,
            hooks,
        )
    };
    match outcome {
        Err(CoreError::Cancelled) => {
            let mut prog = plock(&job.prog);
            // The interrupted span's partial counts were discarded; roll the
            // live counter back to the last durable cursor.
            job.live_done.store(prog.cursor, Ordering::Relaxed);
            prog.state = JobState::Cancelled;
            drop(prog);
            emit_event(job);
            bump_change(inner);
            journal_transition(inner, job);
            false
        }
        Err(e) => {
            fail_job(inner, job, e.to_string());
            false
        }
        Ok(run) => {
            // ETA model: the span's wall time is its slowest worker (the
            // critical path), matching the bench crate's scaling model.
            let critical = run
                .workers
                .iter()
                .map(|w| w.busy.as_secs_f64())
                .fold(0.0_f64, f64::max);
            let per_perm = critical / take as f64;
            let mut prog = plock(&job.prog);
            prog.counts.merge(&run.counts);
            prog.cursor += take;
            prog.computed += take;
            job.live_done.store(prog.cursor, Ordering::Relaxed);
            prog.secs_per_perm = Some(match prog.secs_per_perm {
                Some(old) => 0.6 * old + 0.4 * per_perm,
                None => per_perm,
            });
            if work.cached {
                if let Some(cache) = &inner.cache {
                    let state = CheckpointState {
                        digest: work.check_digest,
                        cursor: prog.cursor,
                        b: work.b,
                        counts: prog.counts.clone(),
                    };
                    if let Err(e) = cache.store(&job.key, &state) {
                        eprintln!(
                            "jobd: warning: failed to write cache entry {}: {e}",
                            job.key.hex()
                        );
                    }
                }
            }
            let finished = prog.cursor >= work.b;
            if finished {
                prog.result = Some(ctx.finalize(&prog.counts));
                prog.state = JobState::Finished;
            } else {
                prog.state = JobState::Queued;
            }
            drop(prog);
            emit_event(job);
            bump_change(inner);
            journal_transition(inner, job);
            !finished
        }
    }
}

/// Report for an adaptive submission served whole from a full exact cache
/// entry: every gene was scored over the entire stream, so the envelope
/// collapses to the exact p-value and nothing was spent.
fn collapsed_adaptive_report(
    ctx: &MaxTContext<'_>,
    counts: &CountAccumulator,
    b: u64,
) -> AdaptiveReport {
    let genes = ctx.genes();
    let mut p_lower = vec![f64::NAN; genes];
    let mut p_upper = vec![f64::NAN; genes];
    let mut p_point = vec![f64::NAN; genes];
    for g in 0..genes {
        if ctx.observed_scores()[g] > f64::NEG_INFINITY {
            let p = counts.count_raw[g] as f64 / b as f64;
            p_lower[g] = p;
            p_upper[g] = p;
            p_point[g] = p;
        }
    }
    AdaptiveReport {
        b,
        scored: vec![b; genes],
        counts: counts.count_raw.clone(),
        stopped_at: vec![None; genes],
        p_lower,
        p_upper,
        p_point,
        tail: vec![None; genes],
        gene_perms_scored: 0,
        gene_perms_exact: genes as u64 * b,
        watermark: b,
        mass_deactivation: false,
    }
}

/// Drive one adaptive job to completion on its dedicated thread.
///
/// The runner alternates full-gene chunks (the bitwise-exact watermark
/// prefix) with masked live-set chunks; on success the watermark is written
/// to the cache as an ordinary exact checkpoint — but only when it improves
/// on the stored cursor, so an adaptive run never clobbers a longer exact
/// prefix some other job already paid for. A later exact submission of the
/// same stream then probes `Partial` at the watermark and extends it through
/// the incremental machinery, reproducing a fresh exact run bit for bit.
fn run_adaptive(inner: &Arc<Inner>, job: &Arc<Job>) {
    let work = &job.work;
    // Claim the job; bail out if it was cancelled before we started.
    let (resume_counts, resumed_from) = {
        let mut prog = plock(&job.prog);
        if prog.state != JobState::Queued {
            return;
        }
        if job.cancel.load(Ordering::Relaxed) {
            prog.state = JobState::Cancelled;
            drop(prog);
            emit_event(job);
            bump_change(inner);
            journal_transition(inner, job);
            return;
        }
        prog.state = JobState::Running;
        let resume = (prog.counts.n_perm > 0).then(|| prog.counts.clone());
        (resume, prog.cursor)
    };
    journal_transition(inner, job);
    let faults = &inner.cfg.faults;
    let ctx = MaxTContext::with_scorer(
        &work.prepared,
        &work.labels,
        work.opts.test,
        work.opts.side,
        work.opts.kernel,
        work.opts.precision,
    );
    let mut runner = AdaptiveRunner::new(
        &ctx,
        &work.prepared,
        &work.labels,
        &work.opts,
        work.b,
        work.cfg,
        AdaptiveConfig::default(),
    );
    if let Some(counts) = &resume_counts {
        runner.resume_from(counts);
    }
    let progress = |n: u64| {
        job.live_done.fetch_add(n, Ordering::Relaxed);
    };
    let hooks = ChunkHooks {
        cancel: Some(&job.cancel),
        progress: Some(&progress),
    };
    // Same injection points as the span loop: a panic unwinds into the
    // catch_unwind wrapping this function; the I/O error takes the ordinary
    // failure path. Either way the durable state stays whatever exact prefix
    // the cache held at submission, so a resubmit recovers.
    let outcome = if faults.fire(FaultKind::WorkerPanic) {
        panic!("injected worker panic (SPRINT_FAULTS worker_panic)");
    } else if faults.fire(FaultKind::SpanIo) {
        Err(CoreError::Comm("injected span I/O error".to_string()))
    } else {
        runner.run(hooks)
    };
    match outcome {
        Err(CoreError::Cancelled) => {
            let mut prog = plock(&job.prog);
            job.live_done.store(prog.cursor, Ordering::Relaxed);
            prog.state = JobState::Cancelled;
            drop(prog);
            emit_event(job);
            bump_change(inner);
            journal_transition(inner, job);
        }
        Err(e) => {
            fail_job(inner, job, e.to_string());
        }
        Ok(out) => {
            if work.cached {
                if let Some(cache) = &inner.cache {
                    let improves = match cache.probe(&job.key, work.b) {
                        CacheProbe::Miss => true,
                        CacheProbe::Partial(s) => s.cursor < out.watermark.n_perm,
                        CacheProbe::Hit(_) | CacheProbe::Beyond => false,
                    };
                    if improves && out.watermark.n_perm > 0 {
                        let state = CheckpointState {
                            digest: work.check_digest,
                            cursor: out.watermark.n_perm,
                            b: work.b,
                            counts: out.watermark.clone(),
                        };
                        if let Err(e) = cache.store(&job.key, &state) {
                            eprintln!(
                                "jobd: warning: failed to write cache entry {}: {e}",
                                job.key.hex()
                            );
                        }
                    }
                }
            }
            // Stream cursor the runner reached: genes live at the end were
            // scored through it (all-stopped runs halt earlier).
            let reached = out.report.scored.iter().copied().max().unwrap_or(0);
            let mut prog = plock(&job.prog);
            prog.computed = reached.saturating_sub(resumed_from);
            prog.cursor = work.b;
            job.live_done.store(work.b, Ordering::Relaxed);
            prog.counts = out.watermark;
            prog.result = Some(out.result);
            prog.adaptive = Some(out.report);
            prog.state = JobState::Finished;
            drop(prog);
            emit_event(job);
            bump_change(inner);
            journal_transition(inner, job);
        }
    }
}

/// Drive one bootstrap job to completion on its dedicated thread: run the
/// whole replicate set locally, or shard it by gene slices across the peer
/// roster when one is configured. On success the finished estimates are
/// written to the cache as a `.boot` entry and stored on the job.
fn run_bootstrap(inner: &Arc<Inner>, job: &Arc<Job>) {
    let work = &job.work;
    // Claim the job; bail out if it was cancelled while pending.
    {
        let mut prog = plock(&job.prog);
        if prog.state != JobState::Queued {
            return;
        }
        if job.cancel.load(Ordering::Relaxed) {
            prog.state = JobState::Cancelled;
            drop(prog);
            emit_event(job);
            bump_change(inner);
            journal_transition(inner, job);
            return;
        }
        prog.state = JobState::Running;
    }
    journal_transition(inner, job);
    let faults = &inner.cfg.faults;
    // Same injection points as the span loop: a panic unwinds into the
    // catch_unwind wrapping this function, the I/O error takes the ordinary
    // failure path, and a resubmit recovers either way (bootstrap jobs have
    // no partial state — the cache entry is all-or-nothing).
    let outcome = if faults.fire(FaultKind::WorkerPanic) {
        panic!("injected worker panic (SPRINT_FAULTS worker_panic)");
    } else if faults.fire(FaultKind::SpanIo) {
        Err(CoreError::Comm("injected span I/O error".to_string()))
    } else if job.shard.is_some() {
        boot_sharded(inner, job)
    } else {
        boot::boot_run(&work.prepared, work.labels.as_slice(), &work.opts)
    };
    match outcome {
        Err(CoreError::Cancelled) => {
            let mut prog = plock(&job.prog);
            job.live_done.store(prog.cursor, Ordering::Relaxed);
            prog.state = JobState::Cancelled;
            drop(prog);
            emit_event(job);
            bump_change(inner);
            journal_transition(inner, job);
        }
        Err(e) => {
            fail_job(inner, job, e.to_string());
        }
        Ok(result) => {
            if work.cached {
                if let Some(cache) = &inner.cache {
                    if let Err(e) = cache.store_boot(&job.key, work.b, &result) {
                        eprintln!(
                            "jobd: warning: failed to write cache entry {}: {e}",
                            job.key.hex()
                        );
                    }
                }
            }
            // A cancel that raced the (uninterruptible) replicate run loses
            // to completion: the work is done and durably cached, so serving
            // it beats discarding it.
            let mut prog = plock(&job.prog);
            prog.cursor = work.b;
            prog.computed = work.b;
            job.live_done.store(work.b, Ordering::Relaxed);
            prog.boot = Some(result);
            prog.state = JobState::Finished;
            drop(prog);
            emit_event(job);
            bump_change(inner);
            journal_transition(inner, job);
        }
    }
}

/// How one peer's gene slice went.
enum BootSliceOutcome {
    /// The slice's estimates, shape-checked against the request.
    Done(BootstrapResult),
    /// Empty slice (more participants than genes): nothing to merge.
    Empty,
    /// Transport-level loss after retries: the coordinator recomputes the
    /// slice locally.
    Lost {
        row_start: u64,
        row_take: u64,
        why: String,
    },
    /// The peer answered with a protocol error: the request itself is wrong
    /// everywhere (drifted dataset, mismatched B), so the job fails.
    Rejected(String),
}

/// Shard one bootstrap run by gene slices: each participant computes the
/// *full* replicate set for a contiguous band of gene rows (per-gene
/// finalization is independent, so a slice is bitwise-equal to the same rows
/// of a full run), and the coordinator merges the bands in row order. A lost
/// peer's band is recomputed locally — slower, never wrong.
fn boot_sharded(inner: &Arc<Inner>, job: &Arc<Job>) -> Result<BootstrapResult, CoreError> {
    let work = &job.work;
    let stats = Arc::clone(job.shard.as_ref().expect("sharded job carries stats"));
    let genes = work.prepared.rows() as u64;
    let roster = 1 + inner.cfg.peers.len();
    let plan: Vec<(u64, u64)> = (0..roster)
        .map(|i| split_evenly(genes, roster as u64, i as u64))
        .collect();
    stats.peers.store(roster as u64, Ordering::Relaxed);
    stats.spans_total.store(
        plan.iter().filter(|&&(_, t)| t > 0).count() as u64,
        Ordering::Relaxed,
    );
    let path = work
        .source
        .as_ref()
        .expect("sharded job has a source path")
        .display()
        .to_string();
    let faults = &inner.cfg.faults;
    let run_local_slice = |start: u64, take: u64| -> Result<BootstrapResult, CoreError> {
        let cpu0 = shard::thread_cpu_secs();
        let t0 = Instant::now();
        let r = boot::boot_run_slice(
            &work.prepared,
            work.labels.as_slice(),
            &work.opts,
            start as usize..(start + take) as usize,
        )?;
        let secs = match (cpu0, shard::thread_cpu_secs()) {
            (Some(a), Some(z)) if work.cfg.threads <= 1 => (z - a).max(0.0),
            _ => t0.elapsed().as_secs_f64(),
        };
        stats
            .kernel_local_micros
            .fetch_add((secs.max(0.0) * 1e6) as u64, Ordering::Relaxed);
        stats.spans_local.fetch_add(1, Ordering::Relaxed);
        Ok(r)
    };

    let (local, peer_outcomes) = std::thread::scope(|scope| {
        let stats_ref = &stats;
        let handles: Vec<_> = inner
            .cfg
            .peers
            .iter()
            .enumerate()
            .map(|(idx, addr)| {
                let (row_start, row_take) = plan[idx + 1];
                let path = path.clone();
                scope.spawn(move || {
                    if row_take == 0 {
                        return BootSliceOutcome::Empty;
                    }
                    if faults.fire(FaultKind::PeerDrop) {
                        return BootSliceOutcome::Lost {
                            row_start,
                            row_take,
                            why: "injected peer_drop".into(),
                        };
                    }
                    let policy = RetryPolicy {
                        attempts: 3,
                        base: Duration::from_millis(50),
                        max: Duration::from_secs(2),
                        seed: 0x626f_6f74 ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    };
                    let link = PeerLink {
                        addr,
                        policy,
                        timeout: Some(PEER_TIMEOUT),
                        stats: stats_ref,
                        faults,
                    };
                    let req =
                        protocol::boot_exec_request(&path, &work.opts, work.b, row_start, row_take);
                    match link.exec(&req) {
                        Ok(resp) => match protocol::boot_from_json(&resp) {
                            Ok(r)
                                if r.offset as u64 == row_start
                                    && r.genes() as u64 == row_take
                                    && r.replicates == work.b - 1 =>
                            {
                                let secs = resp
                                    .get("kernel_secs")
                                    .and_then(Json::as_f64)
                                    .unwrap_or(0.0);
                                stats_ref
                                    .kernel_remote_micros
                                    .fetch_add((secs.max(0.0) * 1e6) as u64, Ordering::Relaxed);
                                stats_ref.spans_remote.fetch_add(1, Ordering::Relaxed);
                                BootSliceOutcome::Done(r)
                            }
                            Ok(_) => BootSliceOutcome::Lost {
                                row_start,
                                row_take,
                                why: "slice shape mismatch in response".into(),
                            },
                            Err(e) => BootSliceOutcome::Lost {
                                row_start,
                                row_take,
                                why: format!("malformed boot response: {e}"),
                            },
                        },
                        Err(PeerError::Dead(why)) => BootSliceOutcome::Lost {
                            row_start,
                            row_take,
                            why,
                        },
                        Err(PeerError::Rejected(why)) => BootSliceOutcome::Rejected(format!(
                            "peer {addr} rejected gene slice [{row_start}, {}): {why}",
                            row_start + row_take
                        )),
                    }
                })
            })
            .collect();
        // Participant 0 computes its own band on this thread while the
        // dispatchers wait on their peers.
        let (s0, t0) = plan[0];
        let local = if t0 > 0 {
            Some(run_local_slice(s0, t0))
        } else {
            None
        };
        let outcomes: Vec<BootSliceOutcome> = handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|payload| {
                    BootSliceOutcome::Rejected(format!(
                        "boot dispatcher panicked: {}",
                        panic_message(payload.as_ref())
                    ))
                })
            })
            .collect();
        (local, outcomes)
    });

    // Assemble the bands in participant order (== row order). Lost slices
    // are recomputed locally before merging; a rejection fails the job.
    let mut bands: Vec<(u64, BootstrapResult)> = Vec::new();
    if let Some(r) = local {
        bands.push((plan[0].0, r?));
    }
    for outcome in peer_outcomes {
        match outcome {
            BootSliceOutcome::Done(r) => bands.push((r.offset as u64, r)),
            BootSliceOutcome::Empty => {}
            BootSliceOutcome::Lost {
                row_start,
                row_take,
                why,
            } => {
                if job.cancel.load(Ordering::Relaxed) {
                    return Err(CoreError::Cancelled);
                }
                stats.peers_failed.fetch_add(1, Ordering::Relaxed);
                stats.spans_reassigned.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "jobd: boot: peer slice [{row_start}, {}) lost ({why}); recomputing locally",
                    row_start + row_take
                );
                bands.push((row_start, run_local_slice(row_start, row_take)?));
            }
            BootSliceOutcome::Rejected(why) => {
                return Err(CoreError::Comm(why));
            }
        }
    }
    bands.sort_by_key(|&(start, _)| start);
    let mut merged = BootstrapResult {
        offset: 0,
        theta: Vec::new(),
        se: Vec::new(),
        pct_lo: Vec::new(),
        pct_hi: Vec::new(),
        bca_lo: Vec::new(),
        bca_hi: Vec::new(),
        replicates: work.b - 1,
        level: boot::CI_LEVEL,
    };
    for (_, band) in &bands {
        merged.extend(band)?;
    }
    if merged.genes() as u64 != genes {
        return Err(CoreError::Comm(format!(
            "sharded bootstrap covered {} of {genes} gene rows",
            merged.genes()
        )));
    }
    Ok(merged)
}

/// One unit of sharded work reported to the merger.
enum SpanOutcome {
    /// A span's exact exceedance counts, from any participant.
    Done {
        start: u64,
        take: u64,
        counts: CountAccumulator,
    },
    /// The work itself is invalid everywhere (engine error, rejected
    /// request): fail the job, reassignment cannot help.
    JobFail(String),
}

/// Per-attempt socket deadline for peer span dispatch: long enough for a
/// busy peer to grind a span, short enough that a hung peer is declared dead
/// and its spans reassigned within one retry budget.
const PEER_TIMEOUT: Duration = Duration::from_secs(30);

/// Blocking next-work for one sharded participant: its own range first,
/// then orphaned spans of dead peers. Polls the orphan queue until the job
/// is complete so a late peer death never strands work — the merger flips
/// `done` when the frontier reaches `B` (or on failure).
fn next_span(
    own: &mut VecDeque<(u64, u64)>,
    orphans: &SpanQueue,
    done: &AtomicBool,
    cancel: &AtomicBool,
    shutdown: &AtomicBool,
) -> Option<(u64, u64)> {
    loop {
        if done.load(Ordering::Relaxed)
            || cancel.load(Ordering::Relaxed)
            || shutdown.load(Ordering::Relaxed)
        {
            return None;
        }
        if let Some(span) = own.pop_front().or_else(|| orphans.pop()) {
            return Some(span);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Drive one sharded job to completion: split the remaining permutation
/// range across the roster (this daemon plus every configured peer) with the
/// same [`span_plan`] arithmetic the SPMD ranks use, dispatch remote spans
/// as `span_exec` requests, run the local share on this thread's scope, and
/// merge results in frontier order so every checkpoint is an exact prefix.
///
/// Counts are `u64` exceedance tallies and addition is commutative, so the
/// merged result is bitwise-identical to a serial run whatever the roster,
/// span size, completion order or failure history — provided each span is
/// merged exactly once, which the frontier map enforces (duplicates from
/// at-least-once dispatch are dropped by start index).
/// Seconds of kernel work in one engine run, for the shard telemetry
/// counters: the caller's thread-CPU delta when the run was inline (one
/// worker — immune to CPU oversubscription across roster daemons), the
/// engine's per-worker busy sum otherwise.
fn kernel_secs(cpu0: Option<f64>, run: &ChunkRun) -> f64 {
    if run.workers.len() <= 1 {
        if let (Some(a), Some(b)) = (cpu0, shard::thread_cpu_secs()) {
            return (b - a).max(0.0);
        }
    }
    run.workers.iter().map(|w| w.busy.as_secs_f64()).sum()
}

fn run_sharded(inner: &Arc<Inner>, job: &Arc<Job>) {
    let work = &job.work;
    let stats = Arc::clone(job.shard.as_ref().expect("sharded job carries stats"));
    // Claim the job; bail out if it was cancelled before we started.
    let start_cursor = {
        let mut prog = plock(&job.prog);
        if prog.state != JobState::Queued {
            return;
        }
        if job.cancel.load(Ordering::Relaxed) {
            prog.state = JobState::Cancelled;
            drop(prog);
            emit_event(job);
            bump_change(inner);
            journal_transition(inner, job);
            return;
        }
        prog.state = JobState::Running;
        prog.cursor
    };
    journal_transition(inner, job);
    let make_ctx = || {
        MaxTContext::with_scorer(
            &work.prepared,
            &work.labels,
            work.opts.test,
            work.opts.side,
            work.opts.kernel,
            work.opts.precision,
        )
    };
    let remaining = work.b - start_cursor;
    if remaining == 0 {
        let mut prog = plock(&job.prog);
        prog.result = Some(make_ctx().finalize(&prog.counts));
        prog.state = JobState::Finished;
        drop(prog);
        emit_event(job);
        bump_change(inner);
        journal_transition(inner, job);
        return;
    }
    let roster = 1 + inner.cfg.peers.len();
    // Participant 0 is the local executor, so the identity-permutation chunk
    // (index 0) is always computed where the coordinator lives.
    let plan = match span_plan(remaining, roster) {
        Ok(plan) => plan,
        Err(e) => {
            fail_job(inner, job, e.to_string());
            return;
        }
    };
    let mut queues: Vec<VecDeque<(u64, u64)>> = plan
        .iter()
        .map(|&(s, t)| slice_spans(start_cursor + s, t, inner.cfg.span).into())
        .collect();
    stats.peers.store(roster as u64, Ordering::Relaxed);
    stats.spans_total.store(
        queues.iter().map(|q| q.len() as u64).sum(),
        Ordering::Relaxed,
    );
    let genes = work.prepared.rows();
    let flat_len = CountAccumulator::new(genes).to_flat().len();
    let path = work
        .source
        .as_ref()
        .expect("sharded job has a source path")
        .display()
        .to_string();
    let faults = &inner.cfg.faults;
    let orphans = SpanQueue::new();
    let done = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<SpanOutcome>();
    let mut failure: Option<String> = None;

    std::thread::scope(|scope| {
        let orphans = &orphans;
        let done = &done;
        let inner_ref: &Inner = inner;
        let job_ref: &Job = job;

        // Peer dispatchers: participants 1..roster, one thread per peer.
        for (idx, addr) in inner_ref.cfg.peers.iter().enumerate() {
            let mut own = std::mem::take(&mut queues[idx + 1]);
            let tx = tx.clone();
            let stats = Arc::clone(&stats);
            let path = path.clone();
            scope.spawn(move || {
                let policy = RetryPolicy {
                    attempts: 3,
                    base: Duration::from_millis(50),
                    max: Duration::from_secs(2),
                    seed: 0x7065_6572 ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                };
                let link = PeerLink {
                    addr,
                    policy,
                    timeout: Some(PEER_TIMEOUT),
                    stats: &stats,
                    faults,
                };
                // Declare this peer dead: return its unfinished spans (the
                // in-flight one included) to the orphan queue for survivors.
                let die = |own: &mut VecDeque<(u64, u64)>, current: (u64, u64), why: &str| {
                    let n = orphans.reassign(std::iter::once(current).chain(own.drain(..)));
                    stats.peers_failed.fetch_add(1, Ordering::Relaxed);
                    stats.spans_reassigned.fetch_add(n, Ordering::Relaxed);
                    eprintln!("jobd: shard: peer {addr} lost ({why}); {n} span(s) reassigned");
                };
                while let Some((s, t)) = next_span(
                    &mut own,
                    orphans,
                    done,
                    &job_ref.cancel,
                    &inner_ref.shutdown,
                ) {
                    if faults.fire(FaultKind::PeerDrop) {
                        die(&mut own, (s, t), "injected peer_drop");
                        return;
                    }
                    let req = protocol::span_exec_request(&path, &work.opts, work.b, s, t);
                    match link.exec(&req) {
                        Ok(resp) => match protocol::span_counts_from_json(&resp) {
                            Ok((rs, rt, flat, secs))
                                if rs == s && rt == t && flat.len() == flat_len =>
                            {
                                stats
                                    .kernel_remote_micros
                                    .fetch_add((secs.max(0.0) * 1e6) as u64, Ordering::Relaxed);
                                stats.spans_remote.fetch_add(1, Ordering::Relaxed);
                                let counts = CountAccumulator::from_flat(&flat, genes);
                                let _ = tx.send(SpanOutcome::Done {
                                    start: s,
                                    take: t,
                                    counts,
                                });
                            }
                            Ok(_) => {
                                die(&mut own, (s, t), "span/shape mismatch in response");
                                return;
                            }
                            Err(e) => {
                                die(&mut own, (s, t), &format!("malformed span response: {e}"));
                                return;
                            }
                        },
                        Err(PeerError::Dead(why)) => {
                            die(&mut own, (s, t), &why);
                            return;
                        }
                        Err(PeerError::Rejected(why)) => {
                            let _ = tx.send(SpanOutcome::JobFail(format!(
                                "peer {addr} rejected span [{s}, {}): {why}",
                                s + t
                            )));
                            return;
                        }
                    }
                }
            });
        }

        // Local executor: participant 0, plus whatever the dead peers leave
        // behind. Runs on this scope so a local engine panic fails the job,
        // not the daemon.
        {
            let mut own = std::mem::take(&mut queues[0]);
            let tx = tx.clone();
            let stats = Arc::clone(&stats);
            scope.spawn(move || {
                let ctx = make_ctx();
                while let Some((s, t)) = next_span(
                    &mut own,
                    orphans,
                    done,
                    &job_ref.cancel,
                    &inner_ref.shutdown,
                ) {
                    let cpu0 = shard::thread_cpu_secs();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if faults.fire(FaultKind::WorkerPanic) {
                            panic!("injected worker panic (SPRINT_FAULTS worker_panic)");
                        }
                        if faults.fire(FaultKind::SpanIo) {
                            return Err(CoreError::Comm("injected span I/O error".to_string()));
                        }
                        let hooks = ChunkHooks {
                            cancel: Some(&job_ref.cancel),
                            progress: None,
                        };
                        accumulate_chunk_hooked(
                            &ctx,
                            &work.labels,
                            &work.opts,
                            work.b,
                            s,
                            t,
                            work.cfg,
                            hooks,
                        )
                    }));
                    match outcome {
                        Ok(Ok(run)) => {
                            stats.kernel_local_micros.fetch_add(
                                (kernel_secs(cpu0, &run) * 1e6) as u64,
                                Ordering::Relaxed,
                            );
                            stats.spans_local.fetch_add(1, Ordering::Relaxed);
                            let _ = tx.send(SpanOutcome::Done {
                                start: s,
                                take: t,
                                counts: run.counts,
                            });
                        }
                        Ok(Err(CoreError::Cancelled)) => return,
                        Ok(Err(e)) => {
                            let _ = tx.send(SpanOutcome::JobFail(e.to_string()));
                            return;
                        }
                        Err(payload) => {
                            let _ = tx.send(SpanOutcome::JobFail(format!(
                                "worker panicked: {}",
                                panic_message(payload.as_ref())
                            )));
                            return;
                        }
                    }
                }
            });
        }
        drop(tx);

        // Merger: this thread. Spans may complete in any order; they are
        // merged strictly in frontier order so `prog.counts` is always the
        // exact accumulation of permutations `[0, cursor)` — the invariant
        // the checkpoint format requires.
        let mut pending: BTreeMap<u64, (u64, CountAccumulator)> = BTreeMap::new();
        let mut frontier = start_cursor;
        let t0 = Instant::now();
        for outcome in rx {
            match outcome {
                SpanOutcome::Done {
                    start,
                    take,
                    counts,
                } => {
                    if failure.is_some() {
                        continue;
                    }
                    if start < frontier || pending.contains_key(&start) {
                        // Duplicate under at-least-once dispatch (a peer was
                        // declared dead after actually finishing the span).
                        continue;
                    }
                    pending.insert(start, (take, counts));
                    let mut advanced = false;
                    while let Some((take, counts)) = pending.remove(&frontier) {
                        let mut prog = plock(&job.prog);
                        prog.counts.merge(&counts);
                        prog.cursor += take;
                        prog.computed += take;
                        frontier = prog.cursor;
                        job.live_done.store(frontier, Ordering::Relaxed);
                        let done_perms = (frontier - start_cursor).max(1);
                        prog.secs_per_perm = Some(t0.elapsed().as_secs_f64() / done_perms as f64);
                        if work.cached {
                            if let Some(cache) = &inner.cache {
                                let state = CheckpointState {
                                    digest: work.check_digest,
                                    cursor: prog.cursor,
                                    b: work.b,
                                    counts: prog.counts.clone(),
                                };
                                if let Err(e) = cache.store(&job.key, &state) {
                                    eprintln!(
                                        "jobd: warning: failed to write cache entry {}: {e}",
                                        job.key.hex()
                                    );
                                }
                            }
                        }
                        advanced = true;
                    }
                    if advanced {
                        emit_event(job);
                        bump_change(inner);
                        if frontier >= work.b {
                            done.store(true, Ordering::Relaxed);
                        }
                    }
                }
                SpanOutcome::JobFail(msg) => {
                    if failure.is_none() {
                        failure = Some(msg);
                    }
                    done.store(true, Ordering::Relaxed);
                }
            }
        }
    });

    if let Some(msg) = failure {
        fail_job(inner, job, msg);
        return;
    }
    let mut prog = plock(&job.prog);
    if prog.cursor >= work.b {
        prog.result = Some(make_ctx().finalize(&prog.counts));
        prog.state = JobState::Finished;
        drop(prog);
        emit_event(job);
        bump_change(inner);
        journal_transition(inner, job);
    } else if job.cancel.load(Ordering::Relaxed) {
        job.live_done.store(prog.cursor, Ordering::Relaxed);
        prog.state = JobState::Cancelled;
        drop(prog);
        emit_event(job);
        bump_change(inner);
        journal_transition(inner, job);
    } else if inner.shutdown.load(Ordering::Relaxed) {
        // Resumable on restart: the checkpoint holds the merged frontier.
        prog.state = JobState::Queued;
        drop(prog);
        bump_change(inner);
    } else {
        drop(prog);
        fail_job(
            inner,
            job,
            "sharded run stalled with spans unaccounted".to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_core::maxt::serial::mt_maxt;

    fn small_dataset() -> (Matrix, Vec<u8>) {
        let data = Matrix::from_vec(
            4,
            6,
            vec![
                1.0, 2.0, 1.5, 9.0, 10.0, 9.5, //
                5.0, 4.0, 6.0, 5.5, 4.5, 5.2, //
                2.0, 8.0, 3.0, 7.0, 2.5, 7.5, //
                3.3, 3.1, 3.2, 3.4, 3.0, 3.5,
            ],
        )
        .unwrap();
        (data, vec![0, 0, 0, 1, 1, 1])
    }

    fn manager(span: u64) -> JobManager {
        JobManager::new(ManagerConfig {
            workers: 2,
            span,
            cache_dir: None,
            ..ManagerConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn single_job_matches_mt_maxt_bitwise() {
        let (data, labels) = small_dataset();
        let opts = PmaxtOptions::default().permutations(97);
        let mgr = manager(16);
        let info = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: opts.clone(),
                source_path: None,
            })
            .unwrap();
        assert_eq!(info.total, 97);
        assert_eq!(info.cache, CacheDisposition::Uncached);
        let served = mgr
            .wait_result(info.id, Some(Duration::from_secs(30)))
            .unwrap();
        let direct = mt_maxt(&data, &labels, &opts).unwrap();
        assert_eq!(served, direct);
        let status = mgr.status(info.id).unwrap();
        assert_eq!(status.state, JobState::Finished);
        assert_eq!(status.done, 97);
        assert_eq!(status.computed, 97);
    }

    #[test]
    fn bootstrap_job_matches_boot_run_bitwise() {
        let (data, labels) = small_dataset();
        let opts = PmaxtOptions::default()
            .workload(Workload::Bootstrap)
            .permutations(150);
        let mgr = manager(16);
        let info = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: opts.clone(),
                source_path: None,
            })
            .unwrap();
        assert_eq!(info.total, 150);
        let served = mgr
            .wait_boot_result(info.id, Some(Duration::from_secs(30)))
            .unwrap();
        let direct = boot::boot_run(&data, &labels, &opts).unwrap();
        assert_eq!(served, direct);
        let status = mgr.status(info.id).unwrap();
        assert_eq!(status.state, JobState::Finished);
        assert_eq!(status.done, 150);
        // The maxT accessor refuses a bootstrap job with a usage error, and
        // vice versa.
        assert!(matches!(
            mgr.result(info.id).unwrap_err(),
            JobError::Invalid(CoreError::BadOption {
                param: "workload",
                ..
            })
        ));
        assert!(mgr.is_boot(info.id).unwrap());
    }

    #[test]
    fn bootstrap_jobs_dedup_and_cache_separately_from_permutation_jobs() {
        let (data, labels) = small_dataset();
        let mut dir = std::env::temp_dir();
        dir.push(format!("sprint-jobd-bootcache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mgr = JobManager::new(ManagerConfig {
            workers: 1,
            span: 16,
            cache_dir: Some(dir.clone()),
            ..ManagerConfig::default()
        })
        .unwrap();
        let boot_opts = PmaxtOptions::default()
            .workload(Workload::Bootstrap)
            .permutations(120);
        let perm_opts = PmaxtOptions::default().permutations(120);
        let a = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: boot_opts.clone(),
                source_path: None,
            })
            .unwrap();
        let perm = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: perm_opts,
                source_path: None,
            })
            .unwrap();
        // The workload marker keeps the two streams apart.
        assert_ne!(a.key, perm.key);
        assert_ne!(a.id, perm.id);
        let first = mgr
            .wait_boot_result(a.id, Some(Duration::from_secs(30)))
            .unwrap();
        mgr.wait_result(perm.id, Some(Duration::from_secs(30)))
            .unwrap();
        // The bootstrap accessor refuses a permutation job.
        assert!(matches!(
            mgr.boot_result(perm.id).unwrap_err(),
            JobError::Invalid(CoreError::BadOption {
                param: "workload",
                ..
            })
        ));
        // An identical live resubmission dedups onto the same job.
        let b = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: boot_opts.clone(),
                source_path: None,
            })
            .unwrap();
        assert_eq!(b.id, a.id);
        assert!(b.deduped);
        // A fresh manager over the same cache dir (a daemon restart) serves
        // the run whole from the `.boot` entry without recomputing.
        let mgr2 = JobManager::new(ManagerConfig {
            workers: 1,
            span: 16,
            cache_dir: Some(dir.clone()),
            ..ManagerConfig::default()
        })
        .unwrap();
        let hit = mgr2
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: boot_opts.clone(),
                source_path: None,
            })
            .unwrap();
        assert_eq!(hit.state, JobState::Finished);
        assert_eq!(hit.cache, CacheDisposition::Hit);
        assert_eq!(mgr2.boot_result(hit.id).unwrap(), first);
        let st = mgr2.status(hit.id).unwrap();
        assert_eq!(st.computed, 0, "cache hit computes nothing");
        // A different draw count misses (no prefix semantics) and recomputes.
        let c = mgr2
            .submit(JobSpec {
                data,
                classlabel: labels,
                opts: boot_opts.permutations(240),
                source_path: None,
            })
            .unwrap();
        assert_eq!(c.cache, CacheDisposition::Miss);
        let longer = mgr2
            .wait_boot_result(c.id, Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(longer.replicates, 239);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bootstrap_rejects_env_smuggled_f32_and_wrong_designs() {
        let (data, labels) = small_dataset();
        let mgr = manager(16);
        let err = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: PmaxtOptions::default()
                    .workload(Workload::Bootstrap)
                    .permutations(100)
                    .precision(Precision::F32),
                source_path: None,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            JobError::Invalid(CoreError::BadOption {
                param: "precision",
                ..
            })
        ));
        // B below the bootstrap floor is refused at the door.
        let err = mgr
            .submit(JobSpec {
                data,
                classlabel: labels,
                opts: PmaxtOptions::default()
                    .workload(Workload::Bootstrap)
                    .permutations(1),
                source_path: None,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            JobError::Invalid(CoreError::BadOption { param: "b", .. })
        ));
        assert!(mgr.list().is_empty(), "no job must be created");
    }

    #[test]
    fn f32_precision_is_rejected_before_touching_queue_or_cache() {
        let (data, labels) = small_dataset();
        let mgr = manager(16);
        let err = mgr
            .submit(JobSpec {
                data,
                classlabel: labels,
                opts: PmaxtOptions::default().precision(Precision::F32),
                source_path: None,
            })
            .unwrap_err();
        match err {
            JobError::Invalid(CoreError::BadOption { param, .. }) => {
                assert_eq!(param, "precision");
            }
            other => panic!("expected Invalid(BadOption), got {other:?}"),
        }
        assert!(mgr.list().is_empty(), "no job must be created");
    }

    #[test]
    fn invalid_submissions_are_rejected_up_front() {
        let (data, _) = small_dataset();
        let mgr = manager(16);
        let err = mgr
            .submit(JobSpec {
                data,
                classlabel: vec![0, 1], // wrong length
                opts: PmaxtOptions::default(),
                source_path: None,
            })
            .unwrap_err();
        assert!(matches!(err, JobError::Invalid(_)));
        assert_eq!(err.code(), "usage");
        assert!(matches!(
            mgr.status(999).unwrap_err(),
            JobError::UnknownJob(999)
        ));
    }

    #[test]
    fn identical_live_submissions_dedup_to_one_job() {
        let (data, labels) = small_dataset();
        let opts = PmaxtOptions::default().permutations(500);
        let mgr = manager(8);
        let a = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: opts.clone(),
                source_path: None,
            })
            .unwrap();
        let b = mgr
            .submit(JobSpec {
                data,
                classlabel: labels,
                opts,
                source_path: None,
            })
            .unwrap();
        assert_eq!(a.id, b.id);
        assert!(!a.deduped);
        assert!(b.deduped);
        assert_eq!(a.key, b.key);
        mgr.wait_result(a.id, Some(Duration::from_secs(30)))
            .unwrap();
    }

    #[test]
    fn queue_cap_rejects_with_busy_code() {
        let (data, labels) = small_dataset();
        let mgr = JobManager::new(ManagerConfig {
            workers: 1,
            queue_cap: 1,
            span: 4,
            cache_dir: None,
            ..ManagerConfig::default()
        })
        .unwrap();
        // Fill the queue with distinct long jobs (different seeds).
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        for seed in 0..12u64 {
            let spec = JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: PmaxtOptions::default().permutations(50_000).seed(seed),
                source_path: None,
            };
            match mgr.submit(spec) {
                Ok(_) => accepted += 1,
                Err(e @ JobError::QueueFull { .. }) => {
                    assert_eq!(e.code(), "busy");
                    rejected += 1;
                }
                Err(other) => panic!(
                    "unexpected error {other:?} submitting seed {seed} \
                     (accepted {accepted}, rejected {rejected}); job snapshot: {:?}",
                    mgr.list()
                        .iter()
                        .map(|s| (s.id, s.state, s.done, s.total, s.error.clone()))
                        .collect::<Vec<_>>()
                ),
            }
        }
        assert!(accepted >= 1, "at least one job must be accepted");
        assert!(rejected >= 1, "the cap must reject at least one job");
        mgr.shutdown();
    }

    #[test]
    fn round_robin_interleaves_two_jobs_on_one_worker() {
        let (data, labels) = small_dataset();
        let mgr = JobManager::new(ManagerConfig {
            workers: 1,
            span: 32,
            cache_dir: None,
            ..ManagerConfig::default()
        })
        .unwrap();
        let submit = |seed: u64| {
            mgr.submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: PmaxtOptions::default().permutations(256).seed(seed),
                source_path: None,
            })
            .unwrap()
        };
        let a = submit(1);
        let b = submit(2);
        let rx_a = mgr.subscribe(a.id).unwrap();
        mgr.wait_result(a.id, Some(Duration::from_secs(30)))
            .unwrap();
        mgr.wait_result(b.id, Some(Duration::from_secs(30)))
            .unwrap();
        // Fairness: job B must have made progress before job A finished —
        // with span-sliced round-robin on one worker, A's progress events
        // cannot all precede B's first span.
        let b_status = mgr.status(b.id).unwrap();
        assert_eq!(b_status.state, JobState::Finished);
        let events: Vec<JobEvent> = rx_a.try_iter().collect();
        assert!(
            events.iter().any(|e| e.state == JobState::Finished),
            "subscriber must observe the terminal event"
        );
        let mut last = 0u64;
        for e in &events {
            assert!(e.done >= last, "progress must be monotone");
            last = e.done;
        }
    }

    #[test]
    fn worker_panic_fails_the_job_not_the_daemon() {
        let (data, labels) = small_dataset();
        let mgr = JobManager::new(ManagerConfig {
            workers: 1,
            span: 16,
            cache_dir: None,
            faults: Faults::builder().prob(FaultKind::WorkerPanic, 1.0).build(),
            ..ManagerConfig::default()
        })
        .unwrap();
        let info = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: PmaxtOptions::default().permutations(97),
                source_path: None,
            })
            .unwrap();
        let err = mgr
            .wait_result(info.id, Some(Duration::from_secs(30)))
            .unwrap_err();
        let JobError::Failed(msg) = &err else {
            panic!("expected Failed, got {err:?}");
        };
        assert!(
            msg.contains("panic"),
            "reason should mention the panic: {msg}"
        );
        let status = mgr.status(info.id).unwrap();
        assert_eq!(status.state, JobState::Failed);
        assert!(status.error.is_some());
        // The daemon survived: the worker is alive and the API responsive.
        assert_eq!(mgr.list().len(), 1);
        let second = mgr
            .submit(JobSpec {
                data,
                classlabel: labels,
                opts: PmaxtOptions::default().permutations(97).seed(9),
                source_path: None,
            })
            .unwrap();
        assert!(matches!(
            mgr.wait_result(second.id, Some(Duration::from_secs(30))),
            Err(JobError::Failed(_))
        ));
    }

    #[test]
    fn injected_span_io_error_fails_job_and_resubmit_recovers() {
        let (data, labels) = small_dataset();
        let opts = PmaxtOptions::default().permutations(97);
        let mut dir = std::env::temp_dir();
        dir.push(format!("sprint-jobd-mgr-{}-spanio", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // First manager: every span errors, but completed spans checkpoint.
        // (With probability 1 the very first span fails, so cursor stays 0 —
        // the point is the terminal state and the recovery, not the prefix.)
        let mgr = JobManager::new(ManagerConfig {
            workers: 1,
            span: 16,
            cache_dir: Some(dir.clone()),
            faults: Faults::builder().prob(FaultKind::SpanIo, 1.0).build(),
            ..ManagerConfig::default()
        })
        .unwrap();
        let spec = JobSpec {
            data: data.clone(),
            classlabel: labels.clone(),
            opts: opts.clone(),
            source_path: None,
        };
        let info = mgr.submit(spec.clone()).unwrap();
        let err = mgr
            .wait_result(info.id, Some(Duration::from_secs(30)))
            .unwrap_err();
        assert!(
            matches!(&err, JobError::Failed(m) if m.contains("injected span I/O error")),
            "got {err:?}"
        );
        drop(mgr);
        // Fault-free manager over the same cache: resubmit must recover and
        // match a direct serial run bitwise.
        let mgr = JobManager::new(ManagerConfig {
            workers: 1,
            span: 16,
            cache_dir: Some(dir.clone()),
            faults: Faults::disabled(),
            ..ManagerConfig::default()
        })
        .unwrap();
        let info = mgr.submit(spec).unwrap();
        let served = mgr
            .wait_result(info.id, Some(Duration::from_secs(30)))
            .unwrap();
        let direct = mt_maxt(&data, &labels, &opts).unwrap();
        assert_eq!(served, direct);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drain_rejects_new_work_and_waits_for_running_jobs() {
        let (data, labels) = small_dataset();
        let mgr = JobManager::new(ManagerConfig {
            workers: 1,
            span: 32,
            cache_dir: None,
            faults: Faults::disabled(),
            ..ManagerConfig::default()
        })
        .unwrap();
        let info = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: PmaxtOptions::default().permutations(2_000),
                source_path: None,
            })
            .unwrap();
        mgr.drain();
        let err = mgr
            .submit(JobSpec {
                data,
                classlabel: labels,
                opts: PmaxtOptions::default().permutations(50).seed(3),
                source_path: None,
            })
            .unwrap_err();
        assert_eq!(err, JobError::ShuttingDown);
        assert!(
            mgr.wait_idle(Some(Duration::from_secs(60))),
            "drain must let the in-flight job run to a terminal state"
        );
        assert_eq!(mgr.status(info.id).unwrap().state, JobState::Finished);
        mgr.shutdown();
    }

    #[test]
    fn eta_appears_after_first_span() {
        let (data, labels) = small_dataset();
        let mgr = JobManager::new(ManagerConfig {
            workers: 1,
            span: 64,
            cache_dir: None,
            ..ManagerConfig::default()
        })
        .unwrap();
        let info = mgr
            .submit(JobSpec {
                data,
                classlabel: labels,
                opts: PmaxtOptions::default().permutations(100_000),
                source_path: None,
            })
            .unwrap();
        let rx = mgr.subscribe(info.id).unwrap();
        // Wait for a post-first-span event; it must carry an ETA.
        let mut saw_eta = false;
        for _ in 0..200 {
            match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(e) if e.done > 0 && !e.state.is_terminal() => {
                    assert!(e.eta_secs.is_some(), "running event after a span has ETA");
                    assert!(e.eta_secs.unwrap() >= 0.0);
                    saw_eta = true;
                    break;
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
        assert!(saw_eta, "never observed a progress event with an ETA");
        mgr.cancel(info.id).unwrap();
    }

    /// Mostly-null dataset: adaptive mode deactivates most genes early, so
    /// the watermark lands well before `B` and the upgrade path is exercised.
    fn null_heavy_dataset() -> (Matrix, Vec<u8>) {
        let genes = 16;
        let cols = 10;
        let mut v = Vec::with_capacity(genes * cols);
        for g in 0..genes {
            for c in 0..cols {
                v.push(((g * 31 + c * 17) as f64 + 1.25).sin() * 3.0);
            }
        }
        for cell in &mut v[5..10] {
            *cell += 25.0; // gene 0 carries real signal
        }
        let labels = (0..cols).map(|c| (c >= cols / 2) as u8).collect();
        (Matrix::from_vec(genes, cols, v).unwrap(), labels)
    }

    #[test]
    fn adaptive_job_reports_bounds_that_contain_the_exact_p_values() {
        let (data, labels) = null_heavy_dataset();
        let opts = PmaxtOptions::default().permutations(4000);
        let mgr = manager(64);
        let info = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: opts.clone().mode(Mode::Adaptive),
                source_path: None,
            })
            .unwrap();
        mgr.wait_result(info.id, Some(Duration::from_secs(60)))
            .unwrap();
        let report = mgr
            .adaptive_report(info.id)
            .unwrap()
            .expect("adaptive job carries a report");
        assert!(report.genes_stopped() > 0, "null genes should stop");
        assert!(
            report.gene_perms_scored < report.gene_perms_exact,
            "adaptive must score fewer gene-permutations than exact"
        );
        let exact = mt_maxt(&data, &labels, &opts).unwrap();
        for g in 0..16 {
            if !exact.rawp[g].is_nan() {
                assert!(report.p_lower[g] <= exact.rawp[g] + 1e-12);
                assert!(exact.rawp[g] <= report.p_upper[g] + 1e-12);
            }
        }
        let status = mgr.status(info.id).unwrap();
        let brief = status.adaptive.expect("status carries adaptive summary");
        assert_eq!(brief.genes_stopped, report.genes_stopped() as u64);
        assert!(brief.budget_fraction < 1.0);
    }

    #[test]
    fn adaptive_then_exact_upgrade_reproduces_a_fresh_exact_run_bitwise() {
        let (data, labels) = null_heavy_dataset();
        let opts = PmaxtOptions::default().permutations(4000);
        let mut dir = std::env::temp_dir();
        dir.push(format!("sprint-jobd-mgr-{}-upgrade", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mgr = JobManager::new(ManagerConfig {
            workers: 1,
            span: 64,
            cache_dir: Some(dir.clone()),
            ..ManagerConfig::default()
        })
        .unwrap();
        let adaptive = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: opts.clone().mode(Mode::Adaptive),
                source_path: None,
            })
            .unwrap();
        mgr.wait_result(adaptive.id, Some(Duration::from_secs(60)))
            .unwrap();
        let report = mgr.adaptive_report(adaptive.id).unwrap().unwrap();
        assert!(
            report.watermark > 0 && report.watermark < 4000,
            "watermark {} should be a strict prefix",
            report.watermark
        );
        // Upgrade: an exact submission of the same stream resumes from the
        // adaptive run's cached watermark and extends it to the full B.
        let exact = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: opts.clone(),
                source_path: None,
            })
            .unwrap();
        assert_eq!(
            exact.cache,
            CacheDisposition::Resume {
                from: report.watermark
            },
            "exact upgrade must start from the adaptive watermark"
        );
        let served = mgr
            .wait_result(exact.id, Some(Duration::from_secs(60)))
            .unwrap();
        let direct = mt_maxt(&data, &labels, &opts).unwrap();
        assert_eq!(served, direct, "upgrade must be bitwise-exact");
        assert!(
            mgr.adaptive_report(exact.id).unwrap().is_none(),
            "exact job carries no adaptive report"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adaptive_and_exact_submissions_never_dedup_together() {
        let (data, labels) = null_heavy_dataset();
        let opts = PmaxtOptions::default().permutations(2000);
        let mgr = manager(64);
        let a = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: opts.clone().mode(Mode::Adaptive),
                source_path: None,
            })
            .unwrap();
        let b = mgr
            .submit(JobSpec {
                data: data.clone(),
                classlabel: labels.clone(),
                opts: opts.clone(),
                source_path: None,
            })
            .unwrap();
        assert_ne!(a.id, b.id, "different modes must be different jobs");
        assert!(!b.deduped);
        // Same mode still dedups.
        let c = mgr
            .submit(JobSpec {
                data,
                classlabel: labels,
                opts: opts.mode(Mode::Adaptive),
                source_path: None,
            })
            .unwrap();
        assert_eq!(c.id, a.id);
        assert!(c.deduped);
        mgr.wait_result(a.id, Some(Duration::from_secs(60)))
            .unwrap();
        mgr.wait_result(b.id, Some(Duration::from_secs(60)))
            .unwrap();
    }

    #[test]
    fn exec_span_refuses_adaptive_mode() {
        let (data, labels) = small_dataset();
        let mgr = manager(16);
        let err = mgr
            .exec_span(
                data,
                labels,
                PmaxtOptions::default()
                    .permutations(97)
                    .mode(Mode::Adaptive),
                97,
                0,
                16,
            )
            .unwrap_err();
        match err {
            JobError::Invalid(CoreError::BadOption { param, .. }) => assert_eq!(param, "mode"),
            other => panic!("expected Invalid(BadOption), got {other:?}"),
        }
    }
}
