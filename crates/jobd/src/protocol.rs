//! Wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response per line (the `watch` command streams
//! multiple event lines and ends with a terminal-state event). Conventions:
//!
//! - every request is an object with a `cmd` field;
//! - every response carries `ok: true` or `ok: false` plus `error`/`code`
//!   (`usage` | `busy` | `runtime`);
//! - `u64` fields that may exceed f64 precision (`seed`) ride as strings;
//! - non-finite floats (NaN p-values of non-computable genes) ride as
//!   `null` and decode back to NaN.

use sprint_core::adaptive::AdaptiveReport;
use sprint_core::boot::BootstrapResult;
use sprint_core::maxt::MaxTResult;
use sprint_core::options::{
    KernelChoice, Mode, PmaxtOptions, Precision, SamplingMode, TestMethod, Workload,
};
use sprint_core::side::Side;

use crate::json::Json;
use crate::manager::{JobError, JobEvent, JobStatus, SubmitInfo};
use crate::shard::ShardSnapshot;

/// Build a `submit` request for a dataset file on the server's filesystem.
pub fn submit_request(path: &str, opts: &PmaxtOptions) -> Json {
    let mut pairs = vec![
        ("cmd".to_string(), Json::str("submit")),
        ("path".to_string(), Json::str(path)),
    ];
    pairs.extend(opts_to_pairs(opts));
    Json::Obj(pairs)
}

/// Options → wire fields, mirroring the `pmaxt run` flag set. Also reused
/// by the journal's accept records ([`crate::journal`]), which must carry
/// enough of the request to resubmit it after a crash.
pub(crate) fn opts_to_pairs(opts: &PmaxtOptions) -> Vec<(String, Json)> {
    let mut pairs = vec![
        ("test".to_string(), Json::str(opts.test.as_str())),
        ("side".to_string(), Json::str(opts.side.as_str())),
        ("sampling".to_string(), Json::str(opts.sampling.as_str())),
        ("b".to_string(), Json::Num(opts.b as f64)),
        ("nonpara".to_string(), Json::Bool(opts.nonpara)),
        ("seed".to_string(), Json::u64_str(opts.seed)),
        ("kernel".to_string(), Json::str(opts.kernel.as_str())),
        ("precision".to_string(), Json::str(opts.precision.as_str())),
        ("mode".to_string(), Json::str(opts.mode.as_str())),
        ("threads".to_string(), Json::Num(opts.threads as f64)),
        ("batch".to_string(), Json::Num(opts.batch as f64)),
        ("workload".to_string(), Json::str(opts.workload.as_str())),
    ];
    if let Some(na) = opts.na {
        pairs.push(("na".to_string(), Json::Num(na)));
    }
    pairs
}

/// Wire fields → options. Absent fields keep their defaults; malformed ones
/// are usage errors.
pub fn opts_from_request(req: &Json) -> Result<PmaxtOptions, String> {
    let mut opts = PmaxtOptions::default();
    if let Some(v) = req.get("test") {
        let s = v.as_str().ok_or("test must be a string")?;
        opts.test = TestMethod::parse(s).map_err(|e| e.to_string())?;
    }
    if let Some(v) = req.get("side") {
        let s = v.as_str().ok_or("side must be a string")?;
        opts.side = Side::parse(s).map_err(|e| e.to_string())?;
    }
    if let Some(v) = req.get("sampling") {
        let s = v.as_str().ok_or("sampling must be a string")?;
        opts.sampling = SamplingMode::parse(s).map_err(|e| e.to_string())?;
    }
    if let Some(v) = req.get("b") {
        opts.b = v.as_u64().ok_or("b must be a non-negative integer")?;
    }
    if let Some(v) = req.get("nonpara") {
        opts.nonpara = v.as_bool().ok_or("nonpara must be a boolean")?;
    }
    if let Some(v) = req.get("seed") {
        opts.seed = v.as_u64().ok_or("seed must be an unsigned integer")?;
    }
    if let Some(v) = req.get("kernel") {
        let s = v.as_str().ok_or("kernel must be a string")?;
        opts.kernel = KernelChoice::parse(s).map_err(|e| e.to_string())?;
    }
    if let Some(v) = req.get("precision") {
        let s = v.as_str().ok_or("precision must be a string")?;
        opts.precision = Precision::parse(s).map_err(|e| e.to_string())?;
    }
    if let Some(v) = req.get("mode") {
        let s = v.as_str().ok_or("mode must be a string")?;
        opts.mode = Mode::parse(s).map_err(|e| e.to_string())?;
    }
    if let Some(v) = req.get("threads") {
        opts.threads = v.as_u64().ok_or("threads must be a non-negative integer")? as usize;
    }
    if let Some(v) = req.get("batch") {
        opts.batch = v.as_u64().ok_or("batch must be a non-negative integer")? as usize;
    }
    if let Some(v) = req.get("na") {
        opts.na = Some(v.as_f64().ok_or("na must be a number")?);
    }
    if let Some(v) = req.get("workload") {
        let s = v.as_str().ok_or("workload must be a string")?;
        opts.workload = Workload::parse(s).map_err(|e| e.to_string())?;
    }
    Ok(opts)
}

/// Build a `span_exec` request: run permutations `[start, start + take)` of
/// the dataset at `path` (a path on the *peer's* filesystem) and return the
/// raw exceedance counts. `b` is the coordinator's resolved permutation
/// total; the executor re-resolves it from the options and refuses on
/// mismatch, so two daemons can never silently shard different permutation
/// streams.
pub fn span_exec_request(path: &str, opts: &PmaxtOptions, b: u64, start: u64, take: u64) -> Json {
    let mut pairs = vec![
        ("cmd".to_string(), Json::str("span_exec")),
        ("path".to_string(), Json::str(path)),
        ("b_resolved".to_string(), Json::u64_str(b)),
        ("start".to_string(), Json::u64_str(start)),
        ("take".to_string(), Json::u64_str(take)),
    ];
    pairs.extend(opts_to_pairs(opts));
    Json::Obj(pairs)
}

/// Span-exec outcome → response fields. Counts ride as decimal strings:
/// exceedance counts are exact `u64`s and must survive the wire bit for bit
/// (JSON numbers are f64 and lose integers past 2^53).
pub fn span_counts_to_json(start: u64, take: u64, counts: &[u64], kernel_secs: f64) -> Json {
    ok_response(vec![
        ("start", Json::u64_str(start)),
        ("take", Json::u64_str(take)),
        // Seconds this daemon spent inside the permutation kernel for the
        // span — the coordinator aggregates these to separate compute time
        // from comm overhead in its status counters.
        ("kernel_secs", Json::Num(kernel_secs)),
        (
            "counts",
            Json::Arr(counts.iter().map(|&c| Json::u64_str(c)).collect()),
        ),
    ])
}

/// Response fields → `(start, take, counts, kernel_secs)`. The kernel time
/// is advisory (0 when absent): counts are the contract, timing is telemetry.
pub fn span_counts_from_json(resp: &Json) -> Result<(u64, u64, Vec<u64>, f64), String> {
    let start = resp
        .get("start")
        .and_then(Json::as_u64)
        .ok_or("missing start")?;
    let take = resp
        .get("take")
        .and_then(Json::as_u64)
        .ok_or("missing take")?;
    let counts = resp
        .get("counts")
        .and_then(Json::as_arr)
        .ok_or("missing counts array")?
        .iter()
        .map(|v| v.as_u64().ok_or("non-integer count"))
        .collect::<Result<Vec<u64>, _>>()?;
    let kernel_secs = resp
        .get("kernel_secs")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    Ok((start, take, counts, kernel_secs))
}

/// Build a `boot_exec` request: compute the bootstrap estimates of gene rows
/// `[row_start, row_start + row_take)` of the dataset at `path` (a path on
/// the *peer's* filesystem). `b` is the coordinator's resolved draw count;
/// the executor re-resolves it and refuses on drift, exactly like
/// [`span_exec_request`].
pub fn boot_exec_request(
    path: &str,
    opts: &PmaxtOptions,
    b: u64,
    row_start: u64,
    row_take: u64,
) -> Json {
    let mut pairs = vec![
        ("cmd".to_string(), Json::str("boot_exec")),
        ("path".to_string(), Json::str(path)),
        ("b_resolved".to_string(), Json::u64_str(b)),
        ("row_start".to_string(), Json::u64_str(row_start)),
        ("row_take".to_string(), Json::u64_str(row_take)),
    ];
    pairs.extend(opts_to_pairs(opts));
    Json::Obj(pairs)
}

/// f64 slice → array of IEEE-754 bit patterns as decimal strings. Interval
/// endpoints must survive the wire bit for bit (the sharded-equals-serial
/// contract is bitwise), and JSON's decimal float round-trip cannot promise
/// that — the bit pattern can.
fn f64_bits_arr(v: &[f64]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::u64_str(x.to_bits())).collect())
}

/// Bit-pattern array → f64 slice (inverse of [`f64_bits_arr`]).
fn f64_bits_from(resp: &Json, field: &str) -> Result<Vec<f64>, String> {
    resp.get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array {field}"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .map(f64::from_bits)
                .ok_or_else(|| format!("non-integer bit pattern in {field}"))
        })
        .collect()
}

/// Bootstrap estimates → response fields, shared by `boot_exec` responses
/// and `result` responses of bootstrap jobs. All float arrays ride as bit
/// patterns (see [`f64_bits_arr`]).
pub fn boot_to_json(r: &BootstrapResult) -> Vec<(&'static str, Json)> {
    vec![
        ("workload", Json::str("bootstrap")),
        ("row_offset", Json::u64_str(r.offset as u64)),
        ("replicates", Json::u64_str(r.replicates)),
        ("level", Json::u64_str(r.level.to_bits())),
        ("theta", f64_bits_arr(&r.theta)),
        ("se", f64_bits_arr(&r.se)),
        ("pct_lo", f64_bits_arr(&r.pct_lo)),
        ("pct_hi", f64_bits_arr(&r.pct_hi)),
        ("bca_lo", f64_bits_arr(&r.bca_lo)),
        ("bca_hi", f64_bits_arr(&r.bca_hi)),
    ]
}

/// Response fields → bootstrap estimates (inverse of [`boot_to_json`]).
pub fn boot_from_json(resp: &Json) -> Result<BootstrapResult, String> {
    let u64_field = |field: &str| -> Result<u64, String> {
        resp.get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing field {field}"))
    };
    let out = BootstrapResult {
        offset: u64_field("row_offset")? as usize,
        theta: f64_bits_from(resp, "theta")?,
        se: f64_bits_from(resp, "se")?,
        pct_lo: f64_bits_from(resp, "pct_lo")?,
        pct_hi: f64_bits_from(resp, "pct_hi")?,
        bca_lo: f64_bits_from(resp, "bca_lo")?,
        bca_hi: f64_bits_from(resp, "bca_hi")?,
        replicates: u64_field("replicates")?,
        level: f64::from_bits(u64_field("level")?),
    };
    let n = out.theta.len();
    for (name, len) in [
        ("se", out.se.len()),
        ("pct_lo", out.pct_lo.len()),
        ("pct_hi", out.pct_hi.len()),
        ("bca_lo", out.bca_lo.len()),
        ("bca_hi", out.bca_hi.len()),
    ] {
        if len != n {
            return Err(format!("array {name} has {len} entries, expected {n}"));
        }
    }
    Ok(out)
}

/// Bootstrap job result → response fields (`result` of a bootstrap job).
pub fn boot_result_to_json(job: u64, r: &BootstrapResult) -> Json {
    let mut fields = vec![("job", Json::Num(job as f64))];
    fields.extend(boot_to_json(r));
    ok_response(fields)
}

/// Boot-exec outcome → response fields (one gene slice plus kernel time).
pub fn boot_slice_to_json(r: &BootstrapResult, kernel_secs: f64) -> Json {
    let mut fields = vec![("kernel_secs", Json::Num(kernel_secs))];
    fields.extend(boot_to_json(r));
    ok_response(fields)
}

/// Shard wire counters → the `comm` object embedded in status/progress
/// responses of sharded jobs.
pub fn shard_to_json(s: &ShardSnapshot) -> Json {
    Json::obj(vec![
        ("peers", Json::Num(s.peers as f64)),
        ("peers_failed", Json::Num(s.peers_failed as f64)),
        ("spans_total", Json::Num(s.spans_total as f64)),
        ("spans_local", Json::Num(s.spans_local as f64)),
        ("spans_remote", Json::Num(s.spans_remote as f64)),
        ("spans_reassigned", Json::Num(s.spans_reassigned as f64)),
        ("requests_sent", Json::Num(s.requests_sent as f64)),
        ("responses_received", Json::Num(s.responses_received as f64)),
        ("retries", Json::Num(s.retries as f64)),
        ("bytes_sent", Json::u64_str(s.bytes_sent)),
        ("bytes_received", Json::u64_str(s.bytes_received)),
        ("kernel_local_micros", Json::u64_str(s.kernel_local_micros)),
        (
            "kernel_remote_micros",
            Json::u64_str(s.kernel_remote_micros),
        ),
    ])
}

/// Build a request that addresses a job by id.
pub fn job_request(cmd: &str, job: u64) -> Json {
    Json::obj(vec![
        ("cmd", Json::str(cmd)),
        ("job", Json::Num(job as f64)),
    ])
}

/// Build a `result` request; `wait` blocks server-side until terminal.
pub fn result_request(job: u64, wait: bool) -> Json {
    Json::obj(vec![
        ("cmd", Json::str("result")),
        ("job", Json::Num(job as f64)),
        ("wait", Json::Bool(wait)),
    ])
}

/// Build a `shutdown` request. With `drain`, the server first refuses new
/// submissions and lets every job reach a terminal state; the response
/// arrives only once all work is durably settled.
pub fn shutdown_request(drain: bool) -> Json {
    let mut pairs = vec![("cmd", Json::str("shutdown"))];
    if drain {
        pairs.push(("drain", Json::Bool(true)));
    }
    Json::obj(pairs)
}

/// A successful response with extra fields.
pub fn ok_response(mut fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.append(&mut fields);
    Json::obj(pairs)
}

/// A failure response: message plus machine-readable code.
pub fn err_response(message: &str, code: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::str(message)),
        ("code", Json::str(code)),
    ])
}

/// A failure response from a manager error.
pub fn err_from(e: &JobError) -> Json {
    err_response(&e.to_string(), e.code())
}

/// Submission outcome → response fields.
pub fn submit_to_json(info: &SubmitInfo) -> Json {
    ok_response(vec![
        ("job", Json::Num(info.id as f64)),
        ("state", Json::str(info.state.as_str())),
        ("cache", Json::str(info.cache.as_str())),
        ("resumed_from", Json::Num(info.cache.resumed_from() as f64)),
        ("total", Json::Num(info.total as f64)),
        ("deduped", Json::Bool(info.deduped)),
        ("key", Json::str(info.key.clone())),
        ("recovered", Json::Bool(info.recovered)),
    ])
}

/// Status snapshot → response fields.
pub fn status_to_json(st: &JobStatus) -> Json {
    let mut fields = vec![
        ("job", Json::Num(st.id as f64)),
        ("state", Json::str(st.state.as_str())),
        ("done", Json::Num(st.done as f64)),
        ("total", Json::Num(st.total as f64)),
        ("computed", Json::Num(st.computed as f64)),
        ("cache", Json::str(st.cache.as_str())),
        ("resumed_from", Json::Num(st.cache.resumed_from() as f64)),
        ("recovered", Json::Bool(st.recovered)),
    ];
    if let Some(eta) = st.eta_secs {
        fields.push(("eta_secs", Json::Num(eta)));
    }
    if let Some(err) = &st.error {
        fields.push(("error", Json::str(err.clone())));
    }
    if let Some(comm) = &st.comm {
        fields.push(("comm", shard_to_json(comm)));
    }
    if let Some(a) = &st.adaptive {
        fields.push((
            "adaptive",
            Json::obj(vec![
                ("genes_stopped", Json::Num(a.genes_stopped as f64)),
                ("budget_fraction", Json::Num(a.budget_fraction)),
                ("watermark", Json::u64_str(a.watermark)),
                ("mass_deactivation", Json::Bool(a.mass_deactivation)),
            ]),
        ));
    }
    ok_response(fields)
}

/// Progress event → one stream line.
pub fn event_to_json(e: &JobEvent) -> Json {
    let mut fields = vec![
        ("event", Json::str("progress")),
        ("job", Json::Num(e.job as f64)),
        ("state", Json::str(e.state.as_str())),
        ("done", Json::Num(e.done as f64)),
        ("total", Json::Num(e.total as f64)),
    ];
    if let Some(eta) = e.eta_secs {
        fields.push(("eta_secs", Json::Num(eta)));
    }
    if let Some(comm) = &e.comm {
        fields.push(("comm", shard_to_json(comm)));
    }
    ok_response(fields)
}

/// Adaptive run report → the `adaptive` object embedded in result responses.
/// Per-gene counters ride as decimal strings (exact `u64`s); the per-gene
/// p-value envelope uses plain numbers (`null` for non-computable genes).
pub fn adaptive_to_json(r: &AdaptiveReport) -> Json {
    let nums = |v: &[f64]| Json::Arr(v.iter().map(|&x| Json::Num(x)).collect());
    let u64s = |v: &[u64]| Json::Arr(v.iter().map(|&c| Json::u64_str(c)).collect());
    let tail_rows: Vec<Json> = r
        .tail
        .iter()
        .enumerate()
        .filter_map(|(g, fit)| fit.as_ref().map(|f| (g, f)))
        .map(|(g, f)| {
            Json::obj(vec![
                ("gene", Json::Num(g as f64)),
                ("threshold", Json::Num(f.threshold)),
                ("shape", Json::Num(f.shape)),
                ("scale", Json::Num(f.scale)),
                ("exceedances", Json::Num(f.exceedances as f64)),
                ("p_tail", Json::Num(f.p_tail)),
                ("ad_stat", Json::Num(f.ad_stat)),
                ("good", Json::Bool(f.good)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("b", Json::u64_str(r.b)),
        ("watermark", Json::u64_str(r.watermark)),
        ("gene_perms_scored", Json::u64_str(r.gene_perms_scored)),
        ("gene_perms_exact", Json::u64_str(r.gene_perms_exact)),
        ("budget_fraction", Json::Num(r.budget_fraction())),
        ("genes_stopped", Json::Num(r.genes_stopped() as f64)),
        ("mass_deactivation", Json::Bool(r.mass_deactivation)),
        ("scored", u64s(&r.scored)),
        ("counts", u64s(&r.counts)),
        (
            "stopped_at",
            Json::Arr(
                r.stopped_at
                    .iter()
                    .map(|s| s.map(Json::u64_str).unwrap_or(Json::Null))
                    .collect(),
            ),
        ),
        ("p_lower", nums(&r.p_lower)),
        ("p_upper", nums(&r.p_upper)),
        ("p_point", nums(&r.p_point)),
        (
            "tail_fitted",
            Json::Arr(r.tail.iter().map(|f| Json::Bool(f.is_some())).collect()),
        ),
        ("tail", Json::Arr(tail_rows)),
    ])
}

/// Result → response fields. NaNs serialize as `null` (see module docs).
/// Adaptive jobs additionally carry their per-gene report (`adaptive`).
pub fn result_to_json(job: u64, r: &MaxTResult, adaptive: Option<&AdaptiveReport>) -> Json {
    let nums = |v: &[f64]| Json::Arr(v.iter().map(|&x| Json::Num(x)).collect());
    let mut fields = vec![
        ("job", Json::Num(job as f64)),
        ("b_used", Json::Num(r.b_used as f64)),
        ("teststat", nums(&r.teststat)),
        ("rawp", nums(&r.rawp)),
        ("adjp", nums(&r.adjp)),
        (
            "order",
            Json::Arr(r.order.iter().map(|&i| Json::Num(i as f64)).collect()),
        ),
    ];
    if let Some(rep) = adaptive {
        fields.push(("adaptive", adaptive_to_json(rep)));
    }
    ok_response(fields)
}

/// Response fields → result. `null` entries decode to NaN.
pub fn result_from_json(resp: &Json) -> Result<MaxTResult, String> {
    let floats = |field: &str| -> Result<Vec<f64>, String> {
        resp.get(field)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing array {field}"))?
            .iter()
            .map(|v| match v {
                Json::Null => Ok(f64::NAN),
                Json::Num(n) => Ok(*n),
                _ => Err(format!("non-numeric entry in {field}")),
            })
            .collect()
    };
    let order = resp
        .get("order")
        .and_then(Json::as_arr)
        .ok_or("missing array order")?
        .iter()
        .map(|v| v.as_u64().map(|n| n as usize).ok_or("bad order entry"))
        .collect::<Result<Vec<usize>, _>>()?;
    Ok(MaxTResult {
        teststat: floats("teststat")?,
        rawp: floats("rawp")?,
        adjp: floats("adjp")?,
        order,
        b_used: resp
            .get("b_used")
            .and_then(Json::as_u64)
            .ok_or("missing b_used")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_round_trip_through_a_submit_request() {
        let opts = PmaxtOptions::default()
            .test_str("wilcoxon")
            .unwrap()
            .side_str("upper")
            .unwrap()
            .fixed_seed_sampling("n")
            .unwrap()
            .permutations(1234)
            .na_code(-99.5)
            .nonpara(true)
            .seed(u64::MAX - 3)
            .kernel(KernelChoice::Scalar)
            .precision(Precision::F32)
            .mode(Mode::Adaptive)
            .threads(3)
            .batch(17)
            .workload(Workload::Bootstrap);
        let req = submit_request("/data/set.tsv", &opts);
        let wire = Json::parse(&req.to_json()).unwrap();
        assert_eq!(wire.get("cmd").unwrap().as_str(), Some("submit"));
        assert_eq!(wire.get("path").unwrap().as_str(), Some("/data/set.tsv"));
        let decoded = opts_from_request(&wire).unwrap();
        assert_eq!(decoded, opts, "options must survive the wire");
    }

    #[test]
    fn absent_option_fields_default() {
        let req = Json::obj(vec![("cmd", Json::str("submit"))]);
        assert_eq!(opts_from_request(&req).unwrap(), PmaxtOptions::default());
        let bad = Json::obj(vec![("test", Json::str("ttest"))]);
        assert!(opts_from_request(&bad).is_err());
        let bad = Json::obj(vec![("b", Json::Num(-3.0))]);
        assert!(opts_from_request(&bad).is_err());
    }

    #[test]
    fn results_round_trip_including_nan() {
        let r = MaxTResult {
            teststat: vec![2.5, f64::NAN, -1.0],
            rawp: vec![0.01, f64::NAN, 0.5],
            adjp: vec![0.02, f64::NAN, 0.5],
            order: vec![0, 2, 1],
            b_used: 1000,
        };
        let wire = Json::parse(&result_to_json(7, &r, None).to_json()).unwrap();
        assert_eq!(wire.get("ok").unwrap().as_bool(), Some(true));
        let back = result_from_json(&wire).unwrap();
        assert_eq!(back.order, r.order);
        assert_eq!(back.b_used, r.b_used);
        for (a, b) in back.teststat.iter().zip(&r.teststat) {
            assert!(a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()));
        }
        assert!(back.rawp[1].is_nan());
    }

    #[test]
    fn adaptive_report_rides_the_result_response() {
        use sprint_core::adaptive::TailFit;
        let r = MaxTResult {
            teststat: vec![2.5, -1.0],
            rawp: vec![0.01, 0.5],
            adjp: vec![0.02, 0.5],
            order: vec![0, 1],
            b_used: 1000,
        };
        let rep = AdaptiveReport {
            b: 1000,
            scored: vec![1000, 200],
            counts: vec![10, 100],
            stopped_at: vec![None, Some(200)],
            p_lower: vec![0.01, 0.1],
            p_upper: vec![0.01, 0.9],
            p_point: vec![0.01, 0.5],
            tail: vec![
                Some(TailFit {
                    threshold: 3.0,
                    shape: 0.1,
                    scale: 0.5,
                    exceedances: 50,
                    p_tail: 1e-6,
                    ad_stat: 0.4,
                    good: true,
                }),
                None,
            ],
            gene_perms_scored: 1200,
            gene_perms_exact: 2000,
            watermark: 200,
            mass_deactivation: false,
        };
        let wire = Json::parse(&result_to_json(9, &r, Some(&rep)).to_json()).unwrap();
        let a = wire.get("adaptive").expect("adaptive object present");
        assert_eq!(a.get("watermark").unwrap().as_u64(), Some(200));
        assert_eq!(a.get("genes_stopped").unwrap().as_u64(), Some(1));
        assert_eq!(
            a.get("stopped_at").unwrap().as_arr().unwrap()[1].as_u64(),
            Some(200)
        );
        assert!(matches!(
            a.get("stopped_at").unwrap().as_arr().unwrap()[0],
            Json::Null
        ));
        let fitted = a.get("tail_fitted").unwrap().as_arr().unwrap();
        assert_eq!(fitted[0].as_bool(), Some(true));
        assert_eq!(fitted[1].as_bool(), Some(false));
        let tail = a.get("tail").unwrap().as_arr().unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].get("gene").unwrap().as_u64(), Some(0));
        assert_eq!(tail[0].get("good").unwrap().as_bool(), Some(true));
        // An exact result carries no adaptive object.
        let plain = Json::parse(&result_to_json(9, &r, None).to_json()).unwrap();
        assert!(plain.get("adaptive").is_none());
    }

    #[test]
    fn bootstrap_results_round_trip_bit_for_bit() {
        let r = BootstrapResult {
            offset: 3,
            theta: vec![8.0, -0.125, f64::NAN],
            se: vec![0.5, 0.25, f64::NAN],
            pct_lo: vec![7.0, -1.0, f64::NAN],
            pct_hi: vec![9.0, 1.0, f64::NAN],
            bca_lo: vec![7.1, f64::NAN, f64::NAN],
            bca_hi: vec![9.1, f64::NAN, f64::NAN],
            replicates: 399,
            level: 0.95,
        };
        let wire = Json::parse(&boot_result_to_json(4, &r).to_json()).unwrap();
        assert_eq!(wire.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(wire.get("workload").unwrap().as_str(), Some("bootstrap"));
        let back = boot_from_json(&wire).unwrap();
        assert_eq!(back.offset, 3);
        assert_eq!(back.replicates, 399);
        assert_eq!(back.level.to_bits(), r.level.to_bits());
        for (a, b) in back.theta.iter().zip(&r.theta) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in back.bca_lo.iter().zip(&r.bca_lo) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Ragged arrays are rejected, not silently truncated.
        let mut ragged = r.clone();
        ragged.se.pop();
        let wire = Json::parse(&boot_slice_to_json(&ragged, 0.1).to_json()).unwrap();
        assert!(boot_from_json(&wire).is_err());
        assert!((wire.get("kernel_secs").unwrap().as_f64().unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn boot_exec_request_carries_slice_and_options() {
        let opts = PmaxtOptions::default()
            .workload(Workload::Bootstrap)
            .permutations(500)
            .seed(11);
        let req = boot_exec_request("/data/set.tsv", &opts, 500, 100, 50);
        let wire = Json::parse(&req.to_json()).unwrap();
        assert_eq!(wire.get("cmd").unwrap().as_str(), Some("boot_exec"));
        assert_eq!(wire.get("b_resolved").unwrap().as_u64(), Some(500));
        assert_eq!(wire.get("row_start").unwrap().as_u64(), Some(100));
        assert_eq!(wire.get("row_take").unwrap().as_u64(), Some(50));
        let decoded = opts_from_request(&wire).unwrap();
        assert_eq!(decoded, opts);
    }

    #[test]
    fn error_responses_carry_code() {
        let e = JobError::UnknownJob(42);
        let wire = Json::parse(&err_from(&e).to_json()).unwrap();
        assert_eq!(wire.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(wire.get("code").unwrap().as_str(), Some("usage"));
        assert!(wire.get("error").unwrap().as_str().unwrap().contains("42"));
    }
}
