//! Backend ablation: the SPMD message-passing driver (mpi-sim, as in the
//! paper) vs a rayon work-stealing pool computing identical counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use microarray::prelude::*;
use sprint_bench::maxt_rayon;
use sprint_core::options::PmaxtOptions;
use sprint_core::pmaxt::pmaxt;

fn bench_backends(c: &mut Criterion) {
    let ds = SynthConfig::two_class(120, 38, 38).seed(10).generate();
    let opts = PmaxtOptions::default().permutations(300);
    let mut group = c.benchmark_group("backend_120x76_b300");
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("mpi_sim", workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(
                    pmaxt(&ds.matrix, &ds.labels, &opts, w)
                        .unwrap()
                        .result
                        .b_used,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("rayon", workers), &workers, |b, &w| {
            b.iter(|| black_box(maxt_rayon(&ds.matrix, &ds.labels, &opts, w).unwrap().b_used))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_backends
}
criterion_main!(benches);
