//! Future-work item 2 ablation: allocate-new vs in-place non-square
//! transposition at the paper's dataset shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sprint::transpose::{transpose_copy, transpose_in_place};

fn bench_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpose_by_rows_x76");
    for rows in [1_000usize, 6_102] {
        let cols = 76usize;
        let data: Vec<f64> = (0..rows * cols).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::new("copy", rows), &rows, |b, _| {
            b.iter(|| black_box(transpose_copy(black_box(&data), rows, cols)))
        });
        group.bench_with_input(BenchmarkId::new("in_place", rows), &rows, |b, _| {
            b.iter(|| {
                let mut work = data.clone();
                transpose_in_place(black_box(&mut work), rows, cols);
                black_box(work.len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_transpose
}
criterion_main!(benches);
