//! End-to-end pmaxT wall-clock at 1/2/4/8 ranks — the honest local analogue
//! of the paper's Table V (quad-core desktop). On a single-core host the
//! ranks time-share and speedup ≈ 1; the table harness prints the core count
//! alongside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use microarray::prelude::*;
use sprint_core::options::PmaxtOptions;
use sprint_core::pmaxt::pmaxt;

fn bench_pmaxt_ranks(c: &mut Criterion) {
    let ds = SynthConfig::two_class(150, 38, 38).seed(9).generate();
    let opts = PmaxtOptions::default().permutations(400);
    let mut group = c.benchmark_group("pmaxt_150x76_b400_by_ranks");
    for ranks in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &r| {
            b.iter(|| {
                let run = pmaxt(&ds.matrix, &ds.labels, &opts, r).unwrap();
                black_box(run.result.b_used)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pmaxt_ranks
}
criterion_main!(benches);
