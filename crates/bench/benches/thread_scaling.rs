//! Thread scaling of the batched engine: the same workload driven through
//! `maxt_with_config` at increasing thread counts and batch sizes.
//!
//! Results are bit-identical across every configuration (the determinism
//! suite proves it); this bench only asks what the geometry costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use microarray::prelude::*;
use sprint_core::prelude::*;

fn bench_threads(c: &mut Criterion) {
    let ds = SynthConfig::two_class(600, 38, 38)
        .diff_fraction(0.05)
        .seed(21)
        .generate();
    let b = 400u64;
    let opts = PmaxtOptions::default().permutations(b);
    let mut group = c.benchmark_group("threads_600x76_b400");
    group.throughput(Throughput::Elements(b));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bench, &t| {
                bench.iter(|| {
                    black_box(
                        maxt_with_config(
                            &ds.matrix,
                            &ds.labels,
                            &opts,
                            EngineConfig::explicit(t, 0),
                        )
                        .unwrap()
                        .b_used,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let ds = SynthConfig::two_class(600, 38, 38)
        .diff_fraction(0.05)
        .seed(21)
        .generate();
    let b = 400u64;
    let opts = PmaxtOptions::default().permutations(b);
    let mut group = c.benchmark_group("batch_600x76_b400_1thread");
    group.throughput(Throughput::Elements(b));
    for batch in [1usize, 8, 32, 128] {
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |bench, &k| {
            bench.iter(|| {
                black_box(
                    maxt_with_config(&ds.matrix, &ds.labels, &opts, EngineConfig::explicit(1, k))
                        .unwrap()
                        .b_used,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_threads, bench_batch
}
criterion_main!(benches);
