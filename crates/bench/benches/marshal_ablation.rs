//! Future-work item 3 ablation: string-coded vs integer-coded parameter
//! marshalling (encode + decode of the pmaxT argument list).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sprint::marshal::{decode, encode, options_to_args, Codec};
use sprint::Value;
use sprint_core::options::{PmaxtOptions, TestMethod};

fn bench_marshal(c: &mut Criterion) {
    let opts = PmaxtOptions::default()
        .test(TestMethod::TEqualVar)
        .permutations(150_000);
    let args = options_to_args(&opts).with("classlabel", Value::Bytes(vec![0u8; 76]));
    let mut group = c.benchmark_group("marshal_pmaxt_args");
    for (name, codec) in [
        ("string_coded", Codec::StringCoded),
        ("int_coded", Codec::IntCoded),
    ] {
        group.bench_function(format!("{name}_encode"), |b| {
            b.iter(|| black_box(encode(black_box(&args), codec)))
        });
        let wire = encode(&args, codec);
        group.bench_function(format!("{name}_round_trip"), |b| {
            b.iter(|| {
                let w = encode(black_box(&args), codec);
                black_box(decode(&w))
            })
        });
        // Also report the wire sizes once per run via a trivial benchmark
        // label (criterion has no annotation channel).
        eprintln!("{name}: wire size {} bytes", wire.len());
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_marshal
}
criterion_main!(benches);
