//! Kernel cost scaling in genes and permutations — the mechanism behind
//! Table VI's "linear in B, slightly superlinear in rows" behaviour — plus
//! the scalar-vs-fast kernel strategy comparison on the paper's reference
//! workload shape (6102 genes × 76 samples).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use microarray::prelude::*;
use sprint_core::labels::ClassLabels;
use sprint_core::maxt::{CountAccumulator, MaxTContext};
use sprint_core::options::{KernelChoice, PmaxtOptions, TestMethod};
use sprint_core::perm::build_generator;
use sprint_core::stats::prepare_matrix;

fn bench_kernel_vs_genes(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_100_perms_by_genes");
    for genes in [100usize, 200, 400] {
        let ds = SynthConfig::two_class(genes, 38, 38).seed(5).generate();
        let labels = ClassLabels::new(ds.labels.clone(), TestMethod::T).unwrap();
        let opts = PmaxtOptions::default().permutations(100);
        let prepared = prepare_matrix(&ds.matrix, TestMethod::T, false).into_owned();
        let ctx = MaxTContext::new(&prepared, &labels, opts.test, opts.side);
        group.throughput(Throughput::Elements((genes * 100) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(genes), &genes, |b, _| {
            b.iter(|| {
                let mut gen = build_generator(&labels, &opts, 100).unwrap();
                let mut acc = CountAccumulator::new(prepared.rows());
                ctx.accumulate(&mut *gen, u64::MAX, &mut acc);
                black_box(acc.n_perm)
            })
        });
    }
    group.finish();
}

fn bench_kernel_vs_perms(c: &mut Criterion) {
    let ds = SynthConfig::two_class(200, 38, 38).seed(6).generate();
    let labels = ClassLabels::new(ds.labels.clone(), TestMethod::T).unwrap();
    let prepared = prepare_matrix(&ds.matrix, TestMethod::T, false).into_owned();
    let mut group = c.benchmark_group("kernel_200_genes_by_perms");
    for b_count in [50u64, 100, 200] {
        let opts = PmaxtOptions::default().permutations(b_count);
        let ctx = MaxTContext::new(&prepared, &labels, opts.test, opts.side);
        group.throughput(Throughput::Elements(200 * b_count));
        group.bench_with_input(BenchmarkId::from_parameter(b_count), &b_count, |b, _| {
            b.iter(|| {
                let mut gen = build_generator(&labels, &opts, b_count).unwrap();
                let mut acc = CountAccumulator::new(prepared.rows());
                ctx.accumulate(&mut *gen, u64::MAX, &mut acc);
                black_box(acc.n_perm)
            })
        });
    }
    group.finish();
}

fn bench_kernel_strategies(c: &mut Criterion) {
    // The acceptance workload: 6102 genes × 76 samples, NA-free, B = 100 per
    // iteration (per-permutation cost is independent of B, so a moderate B
    // keeps criterion calibration fast while measuring the same loop that a
    // B = 150 000 production run spends its time in).
    const B: u64 = 100;
    for method in TestMethod::ALL {
        let ds = SynthConfig::two_class(6_102, 38, 38)
            .diff_fraction(0.05)
            .seed(11)
            .generate();
        let labels = ClassLabels::new(sprint_bench::kernel_labels(method), method).unwrap();
        let opts = PmaxtOptions::default().test(method).permutations(B);
        let prepared = prepare_matrix(&ds.matrix, method, false).into_owned();
        let mut group = c.benchmark_group(format!("kernel_strategy_6102x76_{}", method.as_str()));
        group.sample_size(10);
        for kernel in [KernelChoice::Scalar, KernelChoice::Fast] {
            let ctx = MaxTContext::with_scorer(
                &prepared,
                &labels,
                method,
                opts.side,
                kernel,
                opts.precision,
            );
            group.throughput(Throughput::Elements(6_102 * B));
            group.bench_with_input(
                BenchmarkId::from_parameter(kernel.as_str()),
                &kernel,
                |b, _| {
                    b.iter(|| {
                        let mut gen = build_generator(&labels, &opts, B).unwrap();
                        let mut acc = CountAccumulator::new(prepared.rows());
                        ctx.accumulate(&mut *gen, u64::MAX, &mut acc);
                        black_box(acc.n_perm)
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel_vs_genes, bench_kernel_vs_perms, bench_kernel_strategies
}
criterion_main!(benches);
