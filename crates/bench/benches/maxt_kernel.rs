//! Kernel cost scaling in genes and permutations — the mechanism behind
//! Table VI's "linear in B, slightly superlinear in rows" behaviour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use microarray::prelude::*;
use sprint_core::labels::ClassLabels;
use sprint_core::maxt::{CountAccumulator, MaxTContext};
use sprint_core::options::{PmaxtOptions, TestMethod};
use sprint_core::perm::build_generator;
use sprint_core::stats::prepare_matrix;

fn bench_kernel_vs_genes(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_100_perms_by_genes");
    for genes in [100usize, 200, 400] {
        let ds = SynthConfig::two_class(genes, 38, 38).seed(5).generate();
        let labels = ClassLabels::new(ds.labels.clone(), TestMethod::T).unwrap();
        let opts = PmaxtOptions::default().permutations(100);
        let prepared = prepare_matrix(&ds.matrix, TestMethod::T, false).into_owned();
        let ctx = MaxTContext::new(&prepared, &labels, opts.test, opts.side);
        group.throughput(Throughput::Elements((genes * 100) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(genes), &genes, |b, _| {
            b.iter(|| {
                let mut gen = build_generator(&labels, &opts, 100).unwrap();
                let mut acc = CountAccumulator::new(prepared.rows());
                ctx.accumulate(&mut *gen, u64::MAX, &mut acc);
                black_box(acc.n_perm)
            })
        });
    }
    group.finish();
}

fn bench_kernel_vs_perms(c: &mut Criterion) {
    let ds = SynthConfig::two_class(200, 38, 38).seed(6).generate();
    let labels = ClassLabels::new(ds.labels.clone(), TestMethod::T).unwrap();
    let prepared = prepare_matrix(&ds.matrix, TestMethod::T, false).into_owned();
    let mut group = c.benchmark_group("kernel_200_genes_by_perms");
    for b_count in [50u64, 100, 200] {
        let opts = PmaxtOptions::default().permutations(b_count);
        let ctx = MaxTContext::new(&prepared, &labels, opts.test, opts.side);
        group.throughput(Throughput::Elements(200 * b_count));
        group.bench_with_input(BenchmarkId::from_parameter(b_count), &b_count, |b, _| {
            b.iter(|| {
                let mut gen = build_generator(&labels, &opts, b_count).unwrap();
                let mut acc = CountAccumulator::new(prepared.rows());
                ctx.accumulate(&mut *gen, u64::MAX, &mut acc);
                black_box(acc.n_perm)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel_vs_genes, bench_kernel_vs_perms
}
criterion_main!(benches);
