//! Permutation generator throughput and skip-ahead cost: the fixed-seed
//! on-the-fly generator (O(1) skip) vs the sequential stream (replaying skip)
//! vs complete enumeration (unranking skip), plus stored-matrix replay.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sprint_core::labels::ClassLabels;
use sprint_core::options::{PmaxtOptions, TestMethod};
use sprint_core::perm::{build_generator, resolve_permutation_count};

fn labels_76() -> ClassLabels {
    let v: Vec<u8> = (0..76).map(|i| u8::from(i >= 38)).collect();
    ClassLabels::new(v, TestMethod::T).unwrap()
}

fn bench_generation(c: &mut Criterion) {
    let labels = labels_76();
    let mut group = c.benchmark_group("generator_next_1000_perms_76_cols");
    let cases = [
        ("fixed_seed", PmaxtOptions::default().permutations(1_000)),
        (
            "sequential_stored",
            PmaxtOptions::default()
                .permutations(1_000)
                .fixed_seed_sampling("n")
                .unwrap(),
        ),
    ];
    for (name, opts) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut gen = build_generator(&labels, &opts, 1_000).unwrap();
                let mut buf = vec![0u8; 76];
                let mut acc = 0u64;
                while gen.next_into(&mut buf) {
                    acc += buf[0] as u64;
                }
                black_box(acc)
            })
        });
    }
    // Complete enumeration on a smaller design (C(12,6) = 924 arrangements).
    let small: Vec<u8> = (0..12).map(|i| u8::from(i >= 6)).collect();
    let small_labels = ClassLabels::new(small, TestMethod::T).unwrap();
    let opts = PmaxtOptions::default().permutations(0);
    let total = resolve_permutation_count(&small_labels, &opts).unwrap();
    group.bench_function("complete_12c6", |b| {
        b.iter(|| {
            let mut gen = build_generator(&small_labels, &opts, total).unwrap();
            let mut buf = vec![0u8; 12];
            let mut acc = 0u64;
            while gen.next_into(&mut buf) {
                acc += buf[0] as u64;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_skip(c: &mut Criterion) {
    let labels = labels_76();
    let mut group = c.benchmark_group("generator_skip_to_middle_of_150k");
    let b_total = 150_000u64;
    let cases = [
        (
            "fixed_seed_o1",
            PmaxtOptions::default().permutations(b_total),
        ),
        (
            "sequential_replay",
            PmaxtOptions::default()
                .permutations(b_total)
                .fixed_seed_sampling("n")
                .unwrap(),
        ),
    ];
    for (name, opts) in cases {
        group.bench_function(name, |bch| {
            bch.iter(|| {
                let mut gen = build_generator(&labels, &opts, b_total).unwrap();
                gen.skip(black_box(b_total / 2));
                let mut buf = vec![0u8; 76];
                gen.next_into(&mut buf);
                black_box(buf[0])
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation, bench_skip
}
criterion_main!(benches);
