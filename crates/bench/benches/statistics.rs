//! Per-row cost of the six test statistics — the inner operation of the main
//! kernel, executed genes × B times per run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use microarray::prelude::*;
use sprint_core::labels::ClassLabels;
use sprint_core::options::TestMethod;
use sprint_core::stats::{prepare_matrix, StatComputer};

fn bench_statistics(c: &mut Criterion) {
    // Rows of the paper's 76-sample layout, one statistic family at a time.
    let ds = SynthConfig::two_class(8, 38, 38).seed(3).generate();
    let two_labels = ds.labels.clone();
    let f_labels: Vec<u8> = (0..76).map(|i| (i % 4) as u8).collect();
    let pair_labels: Vec<u8> = (0..38).flat_map(|_| [0u8, 1]).collect();
    let block_labels: Vec<u8> = (0..19).flat_map(|_| [0u8, 1, 2, 3]).collect();

    let mut group = c.benchmark_group("statistics_per_row_76_samples");
    for method in TestMethod::ALL {
        let labels: &[u8] = match method {
            TestMethod::F => &f_labels,
            TestMethod::PairT => &pair_labels,
            TestMethod::BlockF => &block_labels,
            _ => &two_labels,
        };
        let class = ClassLabels::new(labels.to_vec(), method).unwrap();
        let prepared = prepare_matrix(&ds.matrix, method, false).into_owned();
        let computer = StatComputer::new(method, &class);
        group.bench_function(method.as_str(), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for g in 0..prepared.rows() {
                    let s = computer.compute(black_box(prepared.row(g)), black_box(labels));
                    if !s.is_nan() {
                        acc += s;
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_statistics
}
criterion_main!(benches);
