//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! make_tables table1|table2|table3|table4|table5   simulated profile tables
//! make_tables table6                               large-workload table (256 procs)
//! make_tables figure3                              speedup curves (CSV + ASCII)
//! make_tables compare                              model vs paper, per cell
//! make_tables whatif                               efficiency/crossover/network analysis
//! make_tables local [GENES] [B] [MAXPROCS]         real run on this machine
//! make_tables kernel [OUT.json] [--quick]                    scalar vs fast kernel grid
//! make_tables threads [OUT.json]                   hybrid ranks x threads grid
//! make_tables serve [JOBS] [B] [OUT.json]          jobd throughput + cache latency
//! make_tables faults [JOBS] [B] [OUT.json]         fault-hook overhead + soak recovery
//! make_tables cluster [JOBS] [B] [OUT.json]        cross-daemon sharding over TCP
//! make_tables adaptive [B] [--quick]               adaptive early stopping vs exact
//! make_tables bootstrap [B] [--quick]              bootstrap CIs: serial/threaded/sharded
//! make_tables all                                  everything above
//! ```
//!
//! Every JSON-writing subcommand also accepts `--out PATH`, which overrides
//! both the positional OUT form and the `BENCH_*.json` default (the default
//! silently overwrites any committed file of the same name). Every emitted
//! document carries a `schema_version` / `subcommand` / `options` provenance
//! header ([`sprint_bench::stamp_bench_json`]).

use cluster_sim::platform::{ec2, ecdf, hector, ness, quadcore, PlatformSpec};
use cluster_sim::{compare, figure, tables, whatif};
use microarray::prelude::SynthConfig;
use sprint_bench::{
    format_local_rows, kernel_cells_to_json, kernel_grid, local_profile_rows, stamp_bench_json,
    thread_cells_to_json, thread_grid,
};
use sprint_core::options::{PmaxtOptions, TestMethod};

fn platform_table(plat: &PlatformSpec, label: &str) {
    println!(
        "=== {label} (simulated {}; reference workload 6102x76, B=150000) ===",
        plat.name
    );
    print!("{}", tables::profile_table(plat));
    println!();
}

fn run_table6() {
    println!("=== Table VI (simulated HECToR, 256 processes) ===");
    let rows = tables::table6(&hector(), 256);
    print!("{}", tables::format_table6(&rows, 256));
    println!();
}

fn run_figure3() {
    println!("=== Figure 3: pmaxT speed-up on the various systems ===");
    let series = figure::figure3_series();
    print!("{}", figure::ascii_plot(&series, 72, 24));
    println!("--- CSV ---");
    print!("{}", figure::to_csv(&series));
    println!();
}

fn run_compare() {
    println!("=== Model vs paper (per published cell) ===");
    for (name, rows) in compare::compare_all() {
        print!("{}", compare::format_comparison(&name, &rows));
        println!();
    }
    println!("### Table VI");
    println!("| genes | B | total model (s) | total paper (s) | err |");
    println!("|---|---|---|---|---|");
    for c in compare::compare_table6() {
        println!(
            "| {} | {} | {:.2} | {:.2} | {:.1}% |",
            c.genes,
            c.permutations,
            c.total_model,
            c.total_paper,
            100.0 * c.rel_error()
        );
    }
    println!();
}

fn run_whatif() {
    use cluster_sim::{simulate, Workload, REFERENCE};
    println!("=== What-if analysis (platform models) ===");
    println!("parallel efficiency at each platform's maximum process count:");
    for plat in [hector(), ecdf(), ec2(), ness(), quadcore()] {
        let p = *plat.proc_counts.last().unwrap();
        let eff = whatif::efficiency(&plat, REFERENCE, p);
        let half = whatif::max_procs_at_efficiency(&plat, REFERENCE, 0.5);
        println!(
            "  {:<12} {:>4} procs: {:>5.1}% efficient; >=50% efficiency up to {:>4} procs",
            plat.name,
            p,
            eff * 100.0,
            half
        );
    }
    println!();
    println!("desktop vs cloud crossover (6102 genes):");
    let quad = quadcore();
    let cloud = ec2();
    match whatif::crossover_permutations(&cloud, 32, &quad, 4, 6_102, 100, 1 << 22) {
        Some(b) => println!(
            "  32 EC2 processes overtake the quad-core desktop near B = {b}              (at B = {b}: EC2 {:.1} s vs desktop {:.1} s)",
            simulate(&cloud, Workload::new(6_102, b), 32).total(),
            simulate(&quad, Workload::new(6_102, b), 4).total()
        ),
        None => println!("  no crossover in range"),
    }
    println!();
    println!("EC2 network sensitivity (total time at 32 processes, reference workload):");
    for factor in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let plat = whatif::with_network_scaled(&ec2(), factor);
        println!(
            "  network cost x{factor:<4}: {:>7.2} s",
            simulate(&plat, REFERENCE, 32).total()
        );
    }
    println!();
    println!("model calibration vs measured localhost-TCP collectives (6102x76 payload):");
    for procs in [2usize, 4] {
        let m = sprint_bench::measure_collectives(procs, 6_102, 76, 5);
        let model = simulate(&quad, REFERENCE, procs as u32).bcast;
        let delta = 100.0 * (m.bcast_secs - model) / model;
        println!(
            "  p={procs}: bcast {:>6.1} KiB measured {:>8.4} s, quad-core model {:>7.4} s \
             ({delta:+.0}%); count reduce measured {:>8.4} s",
            m.payload_bytes as f64 / 1024.0,
            m.bcast_secs,
            model,
            m.reduce_secs,
        );
    }
    println!(
        "  (the model's bcast section also folds in the paper platform's MPI \
         stack and interconnect constants; localhost loopback TCP is the \
         floor, so a measured value at or below the model is expected)"
    );
    println!();
}

fn run_local(genes: usize, b: u64, max_procs: usize) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("=== Local measured profile (this machine: {cores} core(s)) ===");
    println!(
        "workload: {genes} genes x 76 samples, B = {b}; ranks are threads, so \
         wall-clock speedup is bounded by the physical core count"
    );
    let ds = SynthConfig::two_class(genes, 38, 38)
        .diff_fraction(0.05)
        .seed(7)
        .generate();
    let opts = PmaxtOptions::default().permutations(b);
    let mut procs = vec![1usize];
    while *procs.last().unwrap() * 2 <= max_procs {
        procs.push(procs.last().unwrap() * 2);
    }
    let rows = local_profile_rows(&ds.matrix, &ds.labels, &opts, &procs);
    print!("{}", format_local_rows(&rows));
    println!();
}

fn run_kernel(out: Option<&str>, quick: bool) {
    println!("=== Scorer ablation: scalar vs sufficient-statistic fast scorer ===");
    println!("(serial accumulate loop, 76-sample workloads, NA-free, all six statistics)");
    // The 6102-gene row is the paper's reference workload shape; B is kept
    // moderate so the grid completes in seconds — per-permutation cost is
    // what's being compared, and it does not depend on B. `--quick` shrinks
    // the grid to one cell per statistic: a CI-sized smoke run whose only
    // claim is "every fast path actually beats scalar" (exit 1 otherwise).
    let (genes_grid, b_grid): (&[usize], &[u64]) = if quick {
        (&[600], &[200])
    } else {
        (&[600, 2_000, 6_102], &[200, 1_000])
    };
    let mut results = Vec::new();
    let mut regressions = Vec::new();
    for test in TestMethod::ALL {
        println!("\n--- test = {} ---", test.as_str());
        let cells = kernel_grid(genes_grid, b_grid, test);
        println!(
            "{:>6} {:>8} {:>6} {:>12} {:>12} {:>9} {:>14}",
            "genes", "samples", "B", "scalar(s)", "fast(s)", "speedup", "gene·perm/s"
        );
        for c in &cells {
            println!(
                "{:>6} {:>8} {:>6} {:>12.4} {:>12.4} {:>8.2}x {:>14.3e}",
                c.genes,
                c.samples,
                c.b,
                c.scalar_secs,
                c.fast_secs,
                c.speedup(),
                c.throughput()
            );
            if c.speedup() < 1.0 {
                regressions.push(format!(
                    "{} at {} genes, B={}: {:.2}x",
                    test.as_str(),
                    c.genes,
                    c.b,
                    c.speedup()
                ));
            }
        }
        results.push((test, cells));
    }
    if quick {
        if regressions.is_empty() {
            println!("\nquick gate: every fast path beats scalar");
        } else {
            eprintln!("\nquick gate FAILED — fast path slower than scalar:");
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        return;
    }
    let json = stamp_bench_json(
        &kernel_cells_to_json(&results),
        "kernel",
        &[("quick", quick.to_string())],
    );
    let path = out.unwrap_or("BENCH_kernel.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\ngrid written to {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

fn run_threads(out: Option<&str>) {
    println!("=== Hybrid scaling: simulated ranks x engine threads ===");
    println!(
        "(reference workload shape 6102x76; per-worker busy times measured in \
         isolation, wall-clock modelled as the critical path — see the JSON note)"
    );
    let ds = SynthConfig::two_class(6_102, 38, 38)
        .diff_fraction(0.05)
        .seed(7)
        .generate();
    // B is kept moderate: per-permutation cost is what the grid compares and
    // it does not depend on B, while 12 cells each process the full B.
    let opts = PmaxtOptions::default().permutations(2_000);
    let cells = thread_grid(&ds.matrix, &ds.labels, &opts, &[1, 2, 4], &[1, 2, 4, 8], 32);
    let baseline = cells
        .iter()
        .find(|c| c.ranks == 1 && c.threads == 1)
        .map_or(f64::NAN, |c| c.critical_path_secs);
    println!(
        "{:>6} {:>8} {:>6} {:>10} {:>14} {:>9}",
        "ranks", "threads", "B", "busy(s)", "critical(s)", "speedup"
    );
    for c in &cells {
        println!(
            "{:>6} {:>8} {:>6} {:>10.3} {:>14.3} {:>8.2}x",
            c.ranks,
            c.threads,
            c.b,
            c.total_busy_secs,
            c.critical_path_secs,
            baseline / c.critical_path_secs
        );
    }
    let json = stamp_bench_json(
        &thread_cells_to_json(ds.matrix.rows(), ds.matrix.cols(), &cells),
        "threads",
        &[("B", "2000".to_string())],
    );
    let path = out.unwrap_or("BENCH_threads.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\ngrid written to {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

fn run_serve(jobs: usize, b: u64, out: Option<&str>) {
    println!("=== jobd service: throughput, cache-hit latency, extension ===");
    println!(
        "(reference workload shape 6102x76; {jobs} distinct jobs at B = {b} \
         through a 2-worker pool, then the same requests as cache hits, then \
         one incremental extension to 3B/2)"
    );
    let r = sprint_bench::serve_bench(6_102, 76, b, jobs);
    println!(
        "  cold:   {jobs} jobs in {:>8.3} s  ({:.2} jobs/s)",
        r.cold_secs, r.jobs_per_sec
    );
    println!(
        "  hits:   {:>8.3} ms mean submit-to-result latency",
        r.hit_latency_secs * 1e3
    );
    println!(
        "  extend: B -> 3B/2 in {:>8.3} s  (fresh 3B/2 run: {:.3} s)",
        r.extend_secs, r.fresh_secs
    );
    let json = stamp_bench_json(
        &sprint_bench::serve_bench_to_json(&r),
        "serve",
        &[("jobs", jobs.to_string()), ("B", b.to_string())],
    );
    let path = out.unwrap_or("BENCH_serve.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nresults written to {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

fn run_faults(jobs: usize, b: u64, out: Option<&str>) {
    println!("=== fault injection: idle-hook overhead and soak recovery cost ===");
    println!(
        "(reference workload shape 6102x76; {jobs} jobs at B = {b}, run three \
         times: injection disabled, armed at probability zero, and a 3% \
         worker-fault soak with resubmit recovery)"
    );
    let r = sprint_bench::faults_bench(6_102, 76, b, jobs);
    println!("  disabled:   {:>8.3} s", r.disabled_secs);
    println!(
        "  armed zero: {:>8.3} s  ({:+.2}% vs disabled, target < 2%)",
        r.armed_zero_secs,
        r.armed_zero_overhead_pct()
    );
    println!(
        "  soak 3%:    {:>8.3} s  ({} resubmits)",
        r.soak_secs, r.soak_retries
    );
    for (class, checked, fired) in &r.soak_report {
        println!("    {class:>14}: {fired:>4} fired / {checked} drawn");
    }
    let json = stamp_bench_json(
        &sprint_bench::faults_bench_to_json(&r),
        "faults",
        &[("jobs", jobs.to_string()), ("B", b.to_string())],
    );
    let path = out.unwrap_or("BENCH_faults.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nresults written to {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

fn run_recovery(jobs: usize, b: u64, out: Option<&str>) {
    println!("=== durability: accept-path cost per journal mode, replay scaling ===");
    println!(
        "(reference workload shape 6102x76; {jobs} distinct jobs at B = {b} \
         through a 2-worker pool under each durability mode, then cold journal \
         replays at growing record counts)"
    );
    let r = sprint_bench::recovery_bench(6_102, 76, b, jobs);
    for m in &r.modes {
        println!(
            "  {:>5}: {:>9.3} ms accept, {:>7.2} jobs/s  ({:+.2}% accept vs off)",
            m.mode,
            m.accept_secs * 1e3,
            m.jobs_per_sec,
            r.overhead_pct(&m.mode)
        );
    }
    println!(
        "  batch accept overhead: {:+.2}% (target <= 10%)",
        r.overhead_pct("batch")
    );
    for (n, secs) in &r.replay {
        println!("  replay {n:>6} records: {:>8.3} ms", secs * 1e3);
    }
    let json = stamp_bench_json(
        &sprint_bench::recovery_bench_to_json(&r),
        "recovery",
        &[("jobs", jobs.to_string()), ("B", b.to_string())],
    );
    let path = out.unwrap_or("BENCH_recovery.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nresults written to {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

fn run_cluster(jobs: usize, b: u64, out: Option<&str>) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("=== cross-daemon sharding: 1/2/4 daemons over localhost TCP ===");
    println!(
        "(reference workload shape 6102x76; {jobs} jobs at B = {b}; this machine \
         has {cores} core(s), so speedup is the critical-path *kernel* model: \
         each daemon computes 1/N of the permutations and reports its kernel \
         seconds — wall rows serialize on the shared CPU)"
    );
    let r = sprint_bench::cluster_bench(6_102, 76, b, jobs, &[1, 2, 4]);
    println!(
        "  serial kernel baseline: {:.3} s/job; single process with {} engine \
         threads: {:.3} s wall",
        r.baseline_kernel_secs, r.single_process_threads, r.single_process_wall_secs
    );
    println!(
        "{:>8} {:>9} {:>9} {:>11} {:>13} {:>9} {:>7} {:>13}",
        "daemons", "wall(s)", "jobs/s", "kernel(s)", "critical(s)", "speedup", "comm%", "spans l/r"
    );
    for row in &r.rows {
        println!(
            "{:>8} {:>9.3} {:>9.2} {:>11.3} {:>13.3} {:>8.2}x {:>6.1}% {:>8}/{}",
            row.daemons,
            row.wall_secs,
            row.jobs_per_sec,
            row.kernel_total_secs,
            row.kernel_critical_secs,
            row.kernel_speedup,
            row.comm_overhead_share * 100.0,
            row.spans_local,
            row.spans_remote,
        );
    }
    let json = stamp_bench_json(
        &sprint_bench::cluster_bench_to_json(&r),
        "cluster",
        &[("jobs", jobs.to_string()), ("B", b.to_string())],
    );
    let path = out.unwrap_or("BENCH_cluster.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nresults written to {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

fn run_adaptive(b: u64, quick: bool, out: Option<&str>) {
    println!("=== adaptive early stopping vs the exact reference ===");
    println!(
        "(reference workload 6102x76 at B = {b}: exact scores genes x B \
         gene-permutations; adaptive deactivates certifiably-null genes under \
         an anytime-valid bound and reports deterministic p-value envelopes)"
    );
    let r = sprint_bench::adaptive_bench(6_102, 76, b, 20);
    println!(
        "  exact:    {:>8.3} s, {} gene-permutations",
        r.exact_secs, r.gene_perms_exact
    );
    println!(
        "  adaptive: {:>8.3} s, {} gene-permutations ({:.1}% of exact), \
         {} of {} genes stopped, watermark {}",
        r.adaptive_secs,
        r.gene_perms_scored,
        100.0 * r.budget_fraction(),
        r.genes_stopped,
        r.genes,
        r.watermark
    );
    println!(
        "  agreement: {} comparable genes, {} bound violations, mean envelope \
         width {:.5}, max {:.5}, max point error {:.5}, {} tail fits",
        r.comparable,
        r.bound_violations,
        r.mean_bound_width,
        r.max_bound_width,
        r.max_point_abs_err,
        r.tail_fitted
    );
    // The envelope is deterministic — a violation is an implementation bug,
    // so it fails the command in every mode, not just --quick.
    if r.bound_violations > 0 {
        eprintln!(
            "\nFAILED — {} gene(s) whose envelope missed the exact p-value",
            r.bound_violations
        );
        std::process::exit(1);
    }
    if quick {
        if r.gene_perms_scored >= r.gene_perms_exact {
            eprintln!(
                "\nquick gate FAILED — adaptive scored {} gene-permutations, \
                 exact scores {}",
                r.gene_perms_scored, r.gene_perms_exact
            );
            std::process::exit(1);
        }
        println!(
            "\nquick gate: adaptive scored {:.1}% of the exact budget with 0 \
             bound violations",
            100.0 * r.budget_fraction()
        );
        return;
    }
    let json = stamp_bench_json(
        &sprint_bench::adaptive_bench_to_json(&r),
        "adaptive",
        &[("B", b.to_string()), ("quick", quick.to_string())],
    );
    let path = out.unwrap_or("BENCH_adaptive.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nresults written to {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

fn run_bootstrap(b: u64, quick: bool, out: Option<&str>) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = cores.clamp(2, 4);
    // `--quick` is the CI smoke gate: a small workload proving (a) the two
    // statistics this seam added still beat their scalar references, and
    // (b) the three bootstrap drivers agree bitwise. It writes no JSON.
    let (genes, b, ci_grid): (usize, u64, &[u64]) = if quick {
        (600, b.min(300), &[100, 300])
    } else {
        (6_102, b, &[200, 500, 1_000, 2_000])
    };
    println!("=== bootstrap CIs: serial vs threaded vs 2-daemon sharded ===");
    println!(
        "(workload {genes}x76 at B = {b}: percentile + BCa intervals per gene; \
         the threaded run uses {threads} engine threads, the sharded run splits \
         gene bands across a coordinator and one TCP peer; all three must \
         agree bitwise)"
    );
    let r = sprint_bench::boot_bench(genes, 76, b, threads, ci_grid);
    println!(
        "{:>9} {:>8} {:>8} {:>9} {:>9}",
        "mode", "threads", "daemons", "wall(s)", "speedup"
    );
    for row in &r.rows {
        println!(
            "{:>9} {:>8} {:>8} {:>9.3} {:>8.2}x",
            row.mode, row.threads, row.daemons, row.wall_secs, row.speedup
        );
    }
    println!(
        "{:>7} {:>11} {:>9} {:>15} {:>15}",
        "B", "replicates", "wall(s)", "mean pct width", "mean BCa width"
    );
    for row in &r.ci {
        println!(
            "{:>7} {:>11} {:>9.3} {:>15.5} {:>15.5}",
            row.b, row.replicates, row.wall_secs, row.mean_pct_width, row.mean_bca_width
        );
    }
    // Bitwise agreement across the three drivers is a correctness invariant,
    // not a statistic — fail in every mode, like adaptive bound violations.
    if !r.bitwise_identical {
        eprintln!("\nFAILED — threaded or sharded bootstrap differs from the serial reference");
        std::process::exit(1);
    }
    if quick {
        let mut regressions = Vec::new();
        for test in [TestMethod::Corr, TestMethod::TMax] {
            for c in kernel_grid(&[600], &[200], test) {
                if c.speedup() < 1.0 {
                    regressions.push(format!(
                        "{} at {} genes, B={}: {:.2}x",
                        test.as_str(),
                        c.genes,
                        c.b,
                        c.speedup()
                    ));
                }
            }
        }
        if regressions.is_empty() {
            println!(
                "\nquick gate: drivers agree bitwise and every fast path beats \
                 scalar (corr, tmax)"
            );
        } else {
            eprintln!("\nquick gate FAILED — fast path slower than scalar:");
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        return;
    }
    let json = stamp_bench_json(
        &sprint_bench::boot_bench_to_json(&r),
        "bootstrap",
        &[
            ("B", b.to_string()),
            ("threads", threads.to_string()),
            ("quick", quick.to_string()),
        ],
    );
    let path = out.unwrap_or("BENCH_boot.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nresults written to {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

/// Pull `--out PATH` (the explicit output-path form shared by every
/// JSON-writing subcommand) out of the argument list, leaving the positional
/// forms untouched.
fn take_out_flag(args: &mut Vec<String>) -> Option<String> {
    let i = args.iter().position(|a| a == "--out")?;
    if i + 1 >= args.len() {
        eprintln!("--out needs a value");
        std::process::exit(2);
    }
    let path = args.remove(i + 1);
    args.remove(i);
    Some(path)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let out_flag = take_out_flag(&mut args);
    let args = args;
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    match cmd {
        "table1" => platform_table(&hector(), "Table I"),
        "table2" => platform_table(&ecdf(), "Table II"),
        "table3" => platform_table(&ec2(), "Table III"),
        "table4" => platform_table(&ness(), "Table IV"),
        "table5" => platform_table(&quadcore(), "Table V"),
        "table6" => run_table6(),
        "figure3" => run_figure3(),
        "compare" => run_compare(),
        "whatif" => run_whatif(),
        "local" => {
            let genes = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(600);
            let b = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2_000);
            let maxp = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
            run_local(genes, b, maxp);
        }
        "kernel" => {
            let quick = args.iter().any(|a| a == "--quick");
            let out = args[1..].iter().find(|a| !a.starts_with("--"));
            run_kernel(out_flag.as_deref().or(out.map(String::as_str)), quick);
        }
        "threads" => run_threads(out_flag.as_deref().or(args.get(1).map(String::as_str))),
        "serve" => {
            let jobs = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
            let b = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
            run_serve(
                jobs,
                b,
                out_flag.as_deref().or(args.get(3).map(String::as_str)),
            );
        }
        "faults" => {
            let jobs = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
            let b = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
            run_faults(
                jobs,
                b,
                out_flag.as_deref().or(args.get(3).map(String::as_str)),
            );
        }
        "recovery" => {
            let jobs = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
            let b = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
            run_recovery(
                jobs,
                b,
                out_flag.as_deref().or(args.get(3).map(String::as_str)),
            );
        }
        "cluster" => {
            let jobs = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
            let b = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2_000);
            run_cluster(
                jobs,
                b,
                out_flag.as_deref().or(args.get(3).map(String::as_str)),
            );
        }
        "adaptive" => {
            let quick = args.iter().any(|a| a == "--quick");
            let b = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .and_then(|s| s.parse().ok())
                .unwrap_or(if quick { 500 } else { 5_000 });
            run_adaptive(b, quick, out_flag.as_deref());
        }
        "bootstrap" => {
            let quick = args.iter().any(|a| a == "--quick");
            let b = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .and_then(|s| s.parse().ok())
                .unwrap_or(if quick { 300 } else { 2_000 });
            run_bootstrap(b, quick, out_flag.as_deref());
        }
        "all" => {
            platform_table(&hector(), "Table I");
            platform_table(&ecdf(), "Table II");
            platform_table(&ec2(), "Table III");
            platform_table(&ness(), "Table IV");
            platform_table(&quadcore(), "Table V");
            run_table6();
            run_figure3();
            run_compare();
            run_whatif();
            run_local(600, 2_000, 4);
            run_kernel(None, false);
            run_threads(None);
            run_serve(4, 400, None);
            run_faults(4, 400, None);
            run_recovery(8, 400, None);
            run_adaptive(5_000, false, None);
            run_bootstrap(2_000, false, None);
        }
        other => {
            eprintln!("unknown command {other:?}");
            eprintln!("usage: make_tables [table1..table6|figure3|compare|whatif|local [GENES B MAXPROCS]|kernel [OUT.json] [--quick]|threads [OUT.json]|serve [JOBS B OUT.json]|faults [JOBS B OUT.json]|recovery [JOBS B OUT.json]|cluster [JOBS B OUT.json]|adaptive [B] [--quick]|bootstrap [B] [--quick]|all] [--out PATH]");
            std::process::exit(2);
        }
    }
}
