//! Pre-processing: removal of non-expressed genes.
//!
//! The paper's benchmark matrix is "a reasonably sized gene expression
//! microarray **after pre-processing to remove non-expressed genes**". This
//! module provides that step: genes whose mean intensity falls below a floor,
//! or whose variance is (near) zero, carry no testable signal and are
//! dropped.

use sprint_core::matrix::Matrix;
use sprint_core::stats::moments::{na_mean, na_variance};

/// Result of a filtering pass.
#[derive(Debug, Clone)]
pub struct FilterResult {
    /// The surviving rows, in original order.
    pub matrix: Matrix,
    /// Original indices of the surviving rows.
    pub kept: Vec<usize>,
}

/// Drop rows with mean intensity below `min_mean` or variance below
/// `min_variance`.
pub fn filter_non_expressed(data: &Matrix, min_mean: f64, min_variance: f64) -> FilterResult {
    let mut kept = Vec::new();
    let mut values = Vec::new();
    for g in 0..data.rows() {
        let row = data.row(g);
        let mean = na_mean(row);
        let var = na_variance(row);
        if mean.is_nan() || var.is_nan() {
            continue;
        }
        if mean >= min_mean && var >= min_variance {
            kept.push(g);
            values.extend_from_slice(row);
        }
    }
    let rows = kept.len();
    let matrix = if rows == 0 {
        // Represent "nothing survived" with a 1x1 NaN marker? No — surface it
        // to the caller by panicking early: an empty result is unusable and
        // silent truncation would hide a mis-set threshold.
        panic!("filter removed every gene (min_mean={min_mean}, min_variance={min_variance})");
    } else {
        Matrix::from_vec(rows, data.cols(), values).expect("consistent dimensions")
    };
    FilterResult { matrix, kept }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Matrix {
        Matrix::from_vec(
            4,
            3,
            vec![
                10.0, 11.0, 12.0, // expressed, varying
                0.1, 0.2, 0.1, // not expressed (low mean)
                9.0, 9.0, 9.0, // expressed but constant (zero variance)
                8.0, 7.5, 9.5, // expressed, varying
            ],
        )
        .unwrap()
    }

    #[test]
    fn keeps_only_expressed_varying_rows() {
        let r = filter_non_expressed(&toy(), 1.0, 0.01);
        assert_eq!(r.kept, vec![0, 3]);
        assert_eq!(r.matrix.rows(), 2);
        assert_eq!(r.matrix.row(0), &[10.0, 11.0, 12.0]);
        assert_eq!(r.matrix.row(1), &[8.0, 7.5, 9.5]);
    }

    #[test]
    fn thresholds_are_inclusive() {
        let m = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let r = filter_non_expressed(&m, 2.0, 1.0); // mean = 2.0, var = 1.0
        assert_eq!(r.kept, vec![0]);
    }

    #[test]
    fn all_nan_rows_are_dropped() {
        let m = Matrix::from_vec(2, 2, vec![f64::NAN, f64::NAN, 5.0, 6.0]).unwrap();
        let r = filter_non_expressed(&m, 0.0, 0.0);
        assert_eq!(r.kept, vec![1]);
    }

    #[test]
    #[should_panic(expected = "filter removed every gene")]
    fn empty_result_panics_loudly() {
        let m = Matrix::from_vec(1, 3, vec![0.0, 0.0, 0.0]).unwrap();
        let _ = filter_non_expressed(&m, 100.0, 0.0);
    }

    #[test]
    fn synthetic_pipeline_reaches_target_size() {
        // Generate extra genes with a low-expression subpopulation, filter,
        // and confirm the pipeline shrinks the matrix (the paper's 6102-row
        // matrix arose exactly this way).
        use crate::synth::SynthConfig;
        let ds = SynthConfig::two_class(500, 5, 5).seed(11).generate();
        // Everything here is expressed (baseline 8) — filter at the median to
        // force a cut.
        let r = filter_non_expressed(&ds.matrix, 8.0, 0.0);
        assert!(r.matrix.rows() < 500 && r.matrix.rows() > 100);
        assert_eq!(r.kept.len(), r.matrix.rows());
    }
}
