//! Label designs: helpers producing `classlabel` vectors in the `multtest`
//! conventions for each test family.

/// An experimental design for the sample columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelDesign {
    /// `n0` columns of class 0 followed by `n1` of class 1.
    TwoClass {
        /// Size of class 0.
        n0: usize,
        /// Size of class 1.
        n1: usize,
    },
    /// Consecutive runs of each class with the given sizes.
    MultiClass {
        /// Per-class column counts, class index = position.
        counts: Vec<usize>,
    },
    /// `pairs` consecutive (0,1) pairs (e.g. before/after samples).
    Paired {
        /// Number of pairs.
        pairs: usize,
    },
    /// `blocks` consecutive blocks, each containing treatments `0..k` in
    /// order.
    Block {
        /// Number of blocks.
        blocks: usize,
        /// Treatments per block.
        treatments: usize,
    },
}

impl LabelDesign {
    /// Total number of sample columns.
    pub fn columns(&self) -> usize {
        match self {
            LabelDesign::TwoClass { n0, n1 } => n0 + n1,
            LabelDesign::MultiClass { counts } => counts.iter().sum(),
            LabelDesign::Paired { pairs } => 2 * pairs,
            LabelDesign::Block { blocks, treatments } => blocks * treatments,
        }
    }

    /// Materialize the `classlabel` vector.
    pub fn labels(&self) -> Vec<u8> {
        match self {
            LabelDesign::TwoClass { n0, n1 } => {
                let mut v = vec![0u8; *n0];
                v.extend(std::iter::repeat_n(1u8, *n1));
                v
            }
            LabelDesign::MultiClass { counts } => {
                let mut v = Vec::with_capacity(self.columns());
                for (class, &count) in counts.iter().enumerate() {
                    v.extend(std::iter::repeat_n(class as u8, count));
                }
                v
            }
            LabelDesign::Paired { pairs } => (0..*pairs).flat_map(|_| [0u8, 1]).collect(),
            LabelDesign::Block { blocks, treatments } => (0..*blocks)
                .flat_map(|_| (0..*treatments as u8).collect::<Vec<u8>>())
                .collect(),
        }
    }

    /// The class (or treatment) of column `c` — the group whose effect the
    /// synthesizer applies to that column.
    pub fn class_of(&self, c: usize) -> u8 {
        match self {
            LabelDesign::TwoClass { n0, .. } => u8::from(c >= *n0),
            LabelDesign::MultiClass { counts } => {
                let mut acc = 0usize;
                for (class, &count) in counts.iter().enumerate() {
                    acc += count;
                    if c < acc {
                        return class as u8;
                    }
                }
                panic!("column {c} out of range");
            }
            LabelDesign::Paired { .. } => (c % 2) as u8,
            LabelDesign::Block { treatments, .. } => (c % treatments) as u8,
        }
    }

    /// For paired/block designs, the pair or block a column belongs to
    /// (`None` for unstructured designs). The synthesizer adds a shared
    /// random effect per unit to induce the within-unit correlation those
    /// tests exploit.
    pub fn unit_of(&self, c: usize) -> Option<usize> {
        match self {
            LabelDesign::Paired { .. } => Some(c / 2),
            LabelDesign::Block { treatments, .. } => Some(c / treatments),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_class_layout() {
        let d = LabelDesign::TwoClass { n0: 2, n1: 3 };
        assert_eq!(d.columns(), 5);
        assert_eq!(d.labels(), vec![0, 0, 1, 1, 1]);
        assert_eq!(d.class_of(0), 0);
        assert_eq!(d.class_of(2), 1);
        assert_eq!(d.unit_of(0), None);
    }

    #[test]
    fn multi_class_layout() {
        let d = LabelDesign::MultiClass {
            counts: vec![2, 1, 2],
        };
        assert_eq!(d.labels(), vec![0, 0, 1, 2, 2]);
        assert_eq!(d.class_of(3), 2);
        assert_eq!(d.class_of(2), 1);
    }

    #[test]
    fn paired_layout() {
        let d = LabelDesign::Paired { pairs: 3 };
        assert_eq!(d.labels(), vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(d.unit_of(4), Some(2));
        assert_eq!(d.class_of(5), 1);
    }

    #[test]
    fn block_layout() {
        let d = LabelDesign::Block {
            blocks: 2,
            treatments: 3,
        };
        assert_eq!(d.labels(), vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(d.unit_of(5), Some(1));
        assert_eq!(d.class_of(4), 1);
    }

    #[test]
    fn labels_validate_in_core() {
        use sprint_core::labels::ClassLabels;
        use sprint_core::options::TestMethod;
        let cases = [
            (LabelDesign::TwoClass { n0: 38, n1: 38 }, TestMethod::T),
            (
                LabelDesign::MultiClass {
                    counts: vec![25, 25, 26],
                },
                TestMethod::F,
            ),
            (LabelDesign::Paired { pairs: 38 }, TestMethod::PairT),
            (
                LabelDesign::Block {
                    blocks: 19,
                    treatments: 4,
                },
                TestMethod::BlockF,
            ),
        ];
        for (design, method) in cases {
            assert!(
                ClassLabels::new(design.labels(), method).is_ok(),
                "{design:?}"
            );
        }
    }
}
