//! Plain-text dataset IO: a minimal tab-separated format with a label header.
//!
//! Format:
//!
//! ```text
//! #classlabel<TAB>0<TAB>0<TAB>1<TAB>1
//! 1.5<TAB>2.0<TAB>8.0<TAB>9.0
//! NA<TAB>4.0<TAB>5.0<TAB>6.0
//! ```
//!
//! Missing cells are written as `NA`, matching R's convention.

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use sprint_core::matrix::Matrix;

/// Write `data` and `labels` to `path`.
pub fn write_dataset(path: &Path, data: &Matrix, labels: &[u8]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    write!(w, "#classlabel")?;
    for l in labels {
        write!(w, "\t{l}")?;
    }
    writeln!(w)?;
    for g in 0..data.rows() {
        let row = data.row(g);
        for (c, v) in row.iter().enumerate() {
            if c > 0 {
                write!(w, "\t")?;
            }
            if v.is_nan() {
                write!(w, "NA")?;
            } else {
                // 17 significant digits: round-trips f64 exactly.
                write!(w, "{v:.17e}")?;
            }
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Read a dataset written by [`write_dataset`].
pub fn read_dataset(path: &Path) -> io::Result<(Matrix, Vec<u8>)> {
    let file = std::fs::File::open(path)?;
    let mut lines = io::BufReader::new(file).lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty file"))??;
    let mut parts = header.split('\t');
    let tag = parts.next().unwrap_or("");
    if tag != "#classlabel" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected '#classlabel' header, found {tag:?}"),
        ));
    }
    let labels: Vec<u8> = parts
        .map(|p| {
            p.parse::<u8>().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad label {p:?}: {e}"))
            })
        })
        .collect::<io::Result<_>>()?;
    let cols = labels.len();
    let mut values = Vec::new();
    let mut rows = 0usize;
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let mut n = 0usize;
        for cell in line.split('\t') {
            let v = if cell == "NA" {
                f64::NAN
            } else {
                cell.parse::<f64>().map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad value {cell:?}: {e}"),
                    )
                })?
            };
            values.push(v);
            n += 1;
        }
        if n != cols {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("row {rows} has {n} cells, expected {cols}"),
            ));
        }
        rows += 1;
    }
    let matrix = Matrix::from_vec(rows, cols, values)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((matrix, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("microarray-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_exact() {
        let m =
            Matrix::from_vec(2, 3, vec![1.5, -2.25e-17, 8.0, f64::NAN, 0.1 + 0.2, 6.0]).unwrap();
        let labels = vec![0u8, 0, 1];
        let path = tmp("roundtrip.tsv");
        write_dataset(&path, &m, &labels).unwrap();
        let (m2, l2) = read_dataset(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(l2, labels);
        assert_eq!(m2.rows(), 2);
        for g in 0..2 {
            for c in 0..3 {
                let a = m.get(g, c);
                let b = m2.get(g, c);
                assert!(a.is_nan() == b.is_nan());
                if !a.is_nan() {
                    assert_eq!(a, b, "cell ({g},{c})");
                }
            }
        }
    }

    #[test]
    fn rejects_bad_header() {
        let path = tmp("badheader.tsv");
        std::fs::write(&path, "nonsense\t1\n1.0\n").unwrap();
        let err = read_dataset(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("#classlabel"));
    }

    #[test]
    fn rejects_ragged_rows() {
        let path = tmp("ragged.tsv");
        std::fs::write(&path, "#classlabel\t0\t1\n1.0\t2.0\n3.0\n").unwrap();
        let err = read_dataset(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("expected 2"));
    }

    #[test]
    fn rejects_empty_file() {
        let path = tmp("empty.tsv");
        std::fs::write(&path, "").unwrap();
        assert!(read_dataset(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synthetic_round_trip() {
        use crate::synth::SynthConfig;
        let ds = SynthConfig::two_class(30, 4, 4)
            .na_rate(0.05)
            .seed(5)
            .generate();
        let path = tmp("synth.tsv");
        write_dataset(&path, &ds.matrix, &ds.labels).unwrap();
        let (m2, l2) = read_dataset(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(l2, ds.labels);
        assert_eq!(m2.rows(), 30);
        assert_eq!(m2.na_count(), ds.matrix.na_count());
    }
}
