//! # microarray — synthetic gene-expression data for permutation testing
//!
//! The paper benchmarks `pmaxT` on "a reasonably sized gene expression
//! microarray after pre-processing to remove non-expressed genes" — 6102
//! genes × 76 samples — plus two larger arrays (36 612 × 76 and 73 224 × 76)
//! for its Table VI. Those datasets are not published, so this crate builds
//! the documented substitute (DESIGN.md): a synthetic log-normal expression
//! model with *planted* differentially-expressed genes, reproducible from a
//! seed.
//!
//! The kernel cost of the permutation test depends only on the matrix shape
//! and permutation count, so the performance reproduction is unaffected by
//! the substitution; statistical behaviour is *more* checkable, because the
//! ground truth (which genes are differential) is known by construction.
//!
//! ```
//! use microarray::prelude::*;
//!
//! let ds = SynthConfig::two_class(200, 8, 8)
//!     .diff_fraction(0.1)
//!     .effect_size(2.0)
//!     .seed(7)
//!     .generate();
//! assert_eq!(ds.matrix.rows(), 200);
//! assert_eq!(ds.matrix.cols(), 16);
//! assert_eq!(ds.truth.iter().filter(|&&t| t).count(), 20);
//! ```

pub mod datasets;
pub mod design;
pub mod filter;
pub mod io;
pub mod normalize;
pub mod rng;
pub mod synth;

/// Common imports.
pub mod prelude {
    pub use crate::datasets;
    pub use crate::design::LabelDesign;
    pub use crate::filter::filter_non_expressed;
    pub use crate::normalize::quantile_normalize;
    pub use crate::synth::{SynthConfig, SyntheticDataset};
}
