//! Named datasets with the paper's exact dimensions, reproducible from fixed
//! seeds.
//!
//! | Constructor | Shape | Used for |
//! |---|---|---|
//! | [`benchmark_6102x76`] | 6102 × 76 | Tables I–V, Figure 3 workload |
//! | [`table6_36612x76`] | 36 612 × 76 (21.22 MB) | Table VI row group 1 |
//! | [`table6_73224x76`] | 73 224 × 76 (42.45 MB) | Table VI row group 2 |
//! | [`exon_array`] | 280 000 × 76 | §5: Affymetrix Exon Array minimum feature count |
//!
//! All use the 38 + 38 two-class design (76 samples, as in the paper) and a
//! 5% planted differential fraction.

use crate::design::LabelDesign;
use crate::synth::{SynthConfig, SyntheticDataset};

fn paper_config(genes: usize, seed: u64) -> SynthConfig {
    SynthConfig::new(genes, LabelDesign::TwoClass { n0: 38, n1: 38 })
        .diff_fraction(0.05)
        .effect_size(1.5)
        .seed(seed)
}

/// The Tables I–V benchmark workload: 6102 genes × 76 samples.
pub fn benchmark_6102x76() -> SyntheticDataset {
    paper_config(6_102, 610_276).generate()
}

/// Table VI's smaller array: 36 612 genes × 76 samples (21.22 MB).
pub fn table6_36612x76() -> SyntheticDataset {
    paper_config(36_612, 3_661_276).generate()
}

/// Table VI's larger array: 73 224 genes × 76 samples (42.45 MB).
pub fn table6_73224x76() -> SyntheticDataset {
    paper_config(73_224, 7_322_476).generate()
}

/// An Affymetrix Exon Array-scale workload (the paper's §5: "a minimum
/// feature count of around 280 000").
pub fn exon_array() -> SyntheticDataset {
    paper_config(280_000, 28_000_076).generate()
}

/// A small smoke-test dataset for examples and quick runs: 200 × 12.
pub fn smoke_200x12() -> SyntheticDataset {
    SynthConfig::two_class(200, 6, 6)
        .diff_fraction(0.1)
        .effect_size(2.5)
        .seed(20_012)
        .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_dataset_shape() {
        let ds = benchmark_6102x76();
        assert_eq!(ds.matrix.rows(), 6_102);
        assert_eq!(ds.matrix.cols(), 76);
        assert_eq!(ds.labels.iter().filter(|&&l| l == 0).count(), 38);
        assert_eq!(ds.labels.iter().filter(|&&l| l == 1).count(), 38);
    }

    #[test]
    fn table6_sizes_match_paper() {
        let small = table6_36612x76();
        assert_eq!(small.matrix.rows(), 36_612);
        assert!((small.megabytes() - 21.22).abs() < 0.05);
        let large = table6_73224x76();
        assert_eq!(large.matrix.rows(), 73_224);
        assert!((large.megabytes() - 42.45).abs() < 0.1);
    }

    #[test]
    fn datasets_are_reproducible() {
        let a = smoke_200x12();
        let b = smoke_200x12();
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn smoke_dataset_has_planted_signal() {
        let ds = smoke_200x12();
        assert_eq!(ds.truth.iter().filter(|&&t| t).count(), 20);
    }
}
