//! Normalization — the step between raw arrays and the matrix `pmaxT`
//! consumes ("a reasonably sized gene expression microarray **after
//! pre-processing**").
//!
//! [`quantile_normalize`] is the standard microarray method (Bolstad et al.
//! 2003): force every sample column to share one reference distribution (the
//! across-column mean of the sorted values), destroying array-wide intensity
//! biases while preserving within-array ranks. Missing cells are left missing
//! and excluded from the reference.

use sprint_core::matrix::Matrix;

/// Quantile-normalize the sample columns of `data` in place.
///
/// Columns with missing cells are normalized against the quantiles of their
/// present values (the "partial quantile" variant: each present value maps to
/// the reference quantile at its within-column rank fraction).
///
/// ```
/// use sprint_core::matrix::Matrix;
/// use microarray::normalize::quantile_normalize;
///
/// // Column 1 is column 0 shifted by +10; normalization equalizes them.
/// let mut m = Matrix::from_vec(3, 2, vec![1.0, 11.0, 2.0, 12.0, 3.0, 13.0]).unwrap();
/// quantile_normalize(&mut m);
/// for r in 0..3 {
///     assert!((m.get(r, 0) - m.get(r, 1)).abs() < 1e-12);
/// }
/// ```
pub fn quantile_normalize(data: &mut Matrix) {
    let rows = data.rows();
    let cols = data.cols();
    // Collect each column's present values, sorted, remembering row indices.
    let mut col_sorted: Vec<Vec<(f64, usize)>> = Vec::with_capacity(cols);
    for c in 0..cols {
        let mut v: Vec<(f64, usize)> = (0..rows)
            .map(|r| (data.get(r, c), r))
            .filter(|(x, _)| !x.is_nan())
            .collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN kept"));
        col_sorted.push(v);
    }
    // Reference distribution on a common grid of `rows` quantiles: the mean
    // across columns of each column's interpolated quantile.
    let grid = rows.max(1);
    let mut reference = vec![0.0f64; grid];
    for (q, slot) in reference.iter_mut().enumerate() {
        let frac = if grid == 1 {
            0.0
        } else {
            q as f64 / (grid - 1) as f64
        };
        let mut sum = 0.0;
        let mut n = 0usize;
        for sorted in &col_sorted {
            if sorted.is_empty() {
                continue;
            }
            sum += quantile_of(sorted, frac);
            n += 1;
        }
        *slot = if n == 0 { f64::NAN } else { sum / n as f64 };
    }
    // Map every present cell to the reference value at its rank fraction.
    for (c, sorted) in col_sorted.iter().enumerate() {
        let m = sorted.len();
        for (i, &(_, r)) in sorted.iter().enumerate() {
            let frac = if m == 1 {
                0.0
            } else {
                i as f64 / (m - 1) as f64
            };
            let target = reference_at(&reference, frac);
            data.row_mut(r)[c] = target;
        }
    }
}

fn quantile_of(sorted: &[(f64, usize)], frac: f64) -> f64 {
    let m = sorted.len();
    if m == 1 {
        return sorted[0].0;
    }
    let pos = frac * (m - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let t = pos - lo as f64;
    sorted[lo].0 * (1.0 - t) + sorted[hi].0 * t
}

fn reference_at(reference: &[f64], frac: f64) -> f64 {
    let g = reference.len();
    if g == 1 {
        return reference[0];
    }
    let pos = frac * (g - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let t = pos - lo as f64;
    reference[lo] * (1.0 - t) + reference[hi] * t
}

/// Add a per-sample *batch* shift to `data` (in place): sample `c` gets
/// `shifts[batch_of[c]]` added to every present cell. Models scanner/site
/// batch effects; quantile normalization must undo constant shifts exactly.
pub fn apply_batch_shifts(data: &mut Matrix, batch_of: &[usize], shifts: &[f64]) {
    assert_eq!(batch_of.len(), data.cols(), "one batch id per column");
    for r in 0..data.rows() {
        let row = data.row_mut(r);
        for (c, v) in row.iter_mut().enumerate() {
            if !v.is_nan() {
                *v += shifts[batch_of[c]];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn column(data: &Matrix, c: usize) -> Vec<f64> {
        (0..data.rows()).map(|r| data.get(r, c)).collect()
    }

    fn sorted_present(v: &[f64]) -> Vec<f64> {
        let mut out: Vec<f64> = v.iter().copied().filter(|x| !x.is_nan()).collect();
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    #[test]
    fn columns_share_a_distribution_afterwards() {
        let mut ds = SynthConfig::two_class(200, 4, 4).seed(21).generate().matrix;
        quantile_normalize(&mut ds);
        let ref_col = sorted_present(&column(&ds, 0));
        for c in 1..8 {
            let col = sorted_present(&column(&ds, c));
            for (a, b) in ref_col.iter().zip(&col) {
                assert!((a - b).abs() < 1e-9, "col {c}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn within_column_order_is_preserved() {
        let mut m = Matrix::from_vec(4, 2, vec![5.0, 1.0, 1.0, 9.0, 9.0, 4.0, 2.0, 2.0]).unwrap();
        let before: Vec<Vec<f64>> = (0..2).map(|c| column(&m, c)).collect();
        quantile_normalize(&mut m);
        for (c, before_col) in before.iter().enumerate() {
            let after = column(&m, c);
            for i in 0..4 {
                for j in 0..4 {
                    if before_col[i] < before_col[j] {
                        assert!(after[i] <= after[j] + 1e-12, "order violated in col {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn constant_batch_shift_is_removed() {
        let base = SynthConfig::two_class(300, 5, 5).seed(22).generate().matrix;
        let mut shifted = base.clone();
        // Batch 1 = class-1 samples, shifted by +3 (a worst case: batch
        // confounded with class).
        let batch_of = [0usize, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        apply_batch_shifts(&mut shifted, &batch_of, &[0.0, 3.0]);
        let mut normalized_base = base.clone();
        let mut normalized_shifted = shifted.clone();
        quantile_normalize(&mut normalized_base);
        quantile_normalize(&mut normalized_shifted);
        // Constant shifts preserve within-column ranks, so normalization maps
        // both datasets to the same shape; the reference itself moves by the
        // average shift (+1.5), so the normalized values differ by exactly
        // that global constant — batch 0 and batch 1 are no longer
        // distinguishable.
        let expected_offset = 1.5;
        for c in 0..10 {
            for r in 0..300 {
                let a = normalized_base.get(r, c);
                let b = normalized_shifted.get(r, c);
                assert!(
                    (b - a - expected_offset).abs() < 1e-9,
                    "({r},{c}): {a} vs {b}"
                );
            }
        }
        // The batch effect itself is gone: batch means now agree.
        let batch_mean = |m: &Matrix, batch: usize| {
            let mut sum = 0.0;
            let mut n = 0usize;
            for r in 0..m.rows() {
                for (c, &b) in batch_of.iter().enumerate() {
                    if b == batch {
                        sum += m.get(r, c);
                        n += 1;
                    }
                }
            }
            sum / n as f64
        };
        let gap_before = batch_mean(&shifted, 1) - batch_mean(&shifted, 0);
        let gap_after = batch_mean(&normalized_shifted, 1) - batch_mean(&normalized_shifted, 0);
        assert!(gap_before > 2.9, "injected gap {gap_before}");
        assert!(gap_after.abs() < 0.05, "residual batch gap {gap_after}");
    }

    #[test]
    fn missing_cells_stay_missing() {
        let mut m = Matrix::from_vec(3, 2, vec![1.0, 4.0, f64::NAN, 5.0, 3.0, 6.0]).unwrap();
        quantile_normalize(&mut m);
        assert!(m.get(1, 0).is_nan());
        assert_eq!(m.na_count(), 1);
    }

    #[test]
    fn single_column_is_mapped_to_itself() {
        let mut m = Matrix::from_vec(3, 1, vec![3.0, 1.0, 2.0]).unwrap();
        quantile_normalize(&mut m);
        let col = sorted_present(&column(&m, 0));
        assert!((col[0] - 1.0).abs() < 1e-12);
        assert!((col[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn batch_shift_validates_lengths() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0; 4]).unwrap();
        apply_batch_shifts(&mut m, &[0, 1], &[0.5, -0.5]);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(0, 1), 0.5);
    }

    #[test]
    #[should_panic(expected = "one batch id per column")]
    fn batch_shift_rejects_wrong_length() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0; 4]).unwrap();
        apply_batch_shifts(&mut m, &[0], &[0.5]);
    }
}
