//! Normal variate generation on top of `rand`.
//!
//! `rand` alone has no Gaussian distribution (that lives in `rand_distr`,
//! which is outside the approved dependency set), so the polar Box–Muller
//! method is implemented here — eight lines, and it keeps the dependency
//! footprint to the approved list.

use rand::Rng;

/// Draw one standard-normal variate using the polar (Marsaglia) method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0);
        let v: f64 = rng.random_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draw a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_approximately_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn tail_mass_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let beyond2 = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count();
        // P(|Z|>2) ≈ 0.0455.
        let frac = beyond2 as f64 / n as f64;
        assert!((frac - 0.0455).abs() < 0.005, "frac {frac}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 10.0).abs() < 0.05);
        assert!((var - 9.0).abs() < 0.2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
