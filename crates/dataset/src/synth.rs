//! The synthetic expression model.
//!
//! Values live on a log2-intensity scale, as microarray data does after
//! normalization: gene baselines ~ N(`baseline_mean`, `baseline_sd`),
//! per-gene noise SD ~ |N(`noise_sd`, `noise_sd/2`)| + 0.05, and a planted
//! fraction of genes carries a class effect of ± `effect_size` (alternating
//! sign). Paired/block designs add a shared per-unit random effect, giving
//! the within-unit correlation that `pairt`/`blockf` are designed to remove.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprint_core::matrix::Matrix;

use crate::design::LabelDesign;
use crate::rng::normal;

/// Configuration for the synthesizer (builder style).
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of genes (matrix rows).
    pub genes: usize,
    /// Sample design (matrix columns).
    pub design: LabelDesign,
    /// Fraction of genes carrying a real effect (0.0–1.0).
    pub diff_fraction: f64,
    /// Effect magnitude on the log2 scale (e.g. 1.0 = two-fold change).
    pub effect_size: f64,
    /// Mean of the per-gene baseline intensity.
    pub baseline_mean: f64,
    /// SD of the per-gene baseline intensity.
    pub baseline_sd: f64,
    /// Typical within-gene noise SD.
    pub noise_sd: f64,
    /// SD of the shared per-unit (pair/block) effect.
    pub unit_sd: f64,
    /// Probability that any cell is missing.
    pub na_rate: f64,
    /// RNG seed (full determinism).
    pub seed: u64,
}

impl SynthConfig {
    /// A design-agnostic starting point.
    pub fn new(genes: usize, design: LabelDesign) -> Self {
        SynthConfig {
            genes,
            design,
            diff_fraction: 0.05,
            effect_size: 1.5,
            baseline_mean: 8.0,
            baseline_sd: 2.0,
            noise_sd: 0.7,
            unit_sd: 0.8,
            na_rate: 0.0,
            seed: 20100621, // HPDC 2010 workshop date
        }
    }

    /// Two-class design with `n0` + `n1` samples.
    pub fn two_class(genes: usize, n0: usize, n1: usize) -> Self {
        Self::new(genes, LabelDesign::TwoClass { n0, n1 })
    }

    /// Set the differential fraction.
    pub fn diff_fraction(mut self, f: f64) -> Self {
        self.diff_fraction = f;
        self
    }

    /// Set the effect size (log2 scale).
    pub fn effect_size(mut self, e: f64) -> Self {
        self.effect_size = e;
        self
    }

    /// Set the missing-cell rate.
    pub fn na_rate(mut self, r: f64) -> Self {
        self.na_rate = r;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Generate the dataset.
    pub fn generate(&self) -> SyntheticDataset {
        let cols = self.design.columns();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_diff = (self.genes as f64 * self.diff_fraction).round() as usize;
        // Planted genes are the first n_diff rows: simplest layout, and the
        // truth vector records it either way.
        let truth: Vec<bool> = (0..self.genes).map(|g| g < n_diff).collect();

        // Per-unit shared effects (pairs/blocks), per gene refreshed below.
        let n_units = (0..cols)
            .filter_map(|c| self.design.unit_of(c))
            .max()
            .map_or(0, |m| m + 1);

        let mut data = Vec::with_capacity(self.genes * cols);
        let mut unit_effects = vec![0.0f64; n_units];
        for (g, &planted) in truth.iter().enumerate() {
            let baseline = normal(&mut rng, self.baseline_mean, self.baseline_sd);
            let sd = normal(&mut rng, self.noise_sd, self.noise_sd / 2.0).abs() + 0.05;
            // Alternate up/down regulation across planted genes.
            let effect = if planted {
                if g % 2 == 0 {
                    self.effect_size
                } else {
                    -self.effect_size
                }
            } else {
                0.0
            };
            for effect in unit_effects.iter_mut() {
                *effect = normal(&mut rng, 0.0, self.unit_sd);
            }
            for c in 0..cols {
                let mut v = baseline + normal(&mut rng, 0.0, sd);
                if let Some(u) = self.design.unit_of(c) {
                    v += unit_effects[u];
                }
                if self.design.class_of(c) != 0 {
                    // Multi-class: scale the effect by the class index so
                    // classes separate progressively.
                    v += effect * self.design.class_of(c) as f64;
                }
                if self.na_rate > 0.0 && rng.random_range(0.0..1.0) < self.na_rate {
                    v = f64::NAN;
                }
                data.push(v);
            }
        }
        let matrix = Matrix::from_vec(self.genes, cols, data).expect("consistent dimensions");
        SyntheticDataset {
            matrix,
            labels: self.design.labels(),
            truth,
            config: self.clone(),
        }
    }
}

/// A generated dataset with its ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// genes × samples expression matrix (missing cells are NaN).
    pub matrix: Matrix,
    /// `classlabel` vector matching the design.
    pub labels: Vec<u8>,
    /// `truth[g]` is true iff gene `g` carries a planted effect.
    pub truth: Vec<bool>,
    /// The generating configuration (for provenance).
    pub config: SynthConfig,
}

impl SyntheticDataset {
    /// Size of the matrix in megabytes (as the paper reports dataset sizes).
    pub fn megabytes(&self) -> f64 {
        (self.matrix.rows() * self.matrix.cols() * std::mem::size_of::<f64>()) as f64
            / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_truth_count() {
        let ds = SynthConfig::two_class(100, 5, 7)
            .diff_fraction(0.2)
            .seed(1)
            .generate();
        assert_eq!(ds.matrix.rows(), 100);
        assert_eq!(ds.matrix.cols(), 12);
        assert_eq!(ds.labels.len(), 12);
        assert_eq!(ds.truth.iter().filter(|&&t| t).count(), 20);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = SynthConfig::two_class(50, 4, 4).seed(9).generate();
        let b = SynthConfig::two_class(50, 4, 4).seed(9).generate();
        assert_eq!(a.matrix, b.matrix);
        let c = SynthConfig::two_class(50, 4, 4).seed(10).generate();
        assert_ne!(a.matrix, c.matrix);
    }

    #[test]
    fn planted_genes_separate_classes() {
        let ds = SynthConfig::two_class(200, 10, 10)
            .diff_fraction(0.1)
            .effect_size(3.0)
            .seed(3)
            .generate();
        // Mean |class difference| over planted genes should exceed that of
        // null genes by a wide margin.
        let diff_of = |g: usize| {
            let row = ds.matrix.row(g);
            let m0: f64 = row[..10].iter().sum::<f64>() / 10.0;
            let m1: f64 = row[10..].iter().sum::<f64>() / 10.0;
            (m1 - m0).abs()
        };
        let planted: f64 = (0..20).map(diff_of).sum::<f64>() / 20.0;
        let null: f64 = (20..200).map(diff_of).sum::<f64>() / 180.0;
        assert!(
            planted > null + 1.5,
            "planted mean diff {planted}, null {null}"
        );
    }

    #[test]
    fn na_rate_is_respected() {
        let ds = SynthConfig::two_class(100, 10, 10)
            .na_rate(0.1)
            .seed(2)
            .generate();
        let nas = ds.matrix.na_count();
        let total = 100 * 20;
        let frac = nas as f64 / total as f64;
        assert!((frac - 0.1).abs() < 0.03, "NA fraction {frac}");
    }

    #[test]
    fn zero_na_rate_gives_complete_matrix() {
        let ds = SynthConfig::two_class(50, 5, 5).seed(4).generate();
        assert_eq!(ds.matrix.na_count(), 0);
    }

    #[test]
    fn paired_design_has_unit_correlation() {
        let ds = SynthConfig::new(300, LabelDesign::Paired { pairs: 10 })
            .diff_fraction(0.0)
            .seed(8)
            .generate();
        // Correlation between pair members (same unit effect) should clearly
        // exceed correlation between unrelated columns.
        let corr = |a: usize, b: usize| {
            let n = ds.matrix.rows() as f64;
            let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for g in 0..ds.matrix.rows() {
                let x = ds.matrix.get(g, a);
                let y = ds.matrix.get(g, b);
                sa += x;
                sb += y;
                saa += x * x;
                sbb += y * y;
                sab += x * y;
            }
            let cov = sab / n - sa / n * (sb / n);
            let va = saa / n - (sa / n) * (sa / n);
            let vb = sbb / n - (sb / n) * (sb / n);
            cov / (va * vb).sqrt()
        };
        let within = corr(0, 1); // same pair
        let c_across = corr(0, 2); // different pairs
                                   // Baseline variance dominates both, but within-pair must be higher.
        assert!(
            within > c_across + 0.01,
            "within {within}, across {c_across}"
        );
    }

    #[test]
    fn megabytes_matches_paper_arithmetic() {
        // Paper Table VI: 36 612 × 76 ⇒ 21.22 MB.
        let ds = SynthConfig::two_class(36_612, 38, 38)
            .diff_fraction(0.0)
            .seed(0)
            .generate();
        assert!((ds.megabytes() - 21.22).abs() < 0.05, "{}", ds.megabytes());
    }
}
