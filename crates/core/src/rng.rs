//! Deterministic, seedable random number generation with O(1) stream
//! derivation.
//!
//! The implementation lives in the shared [`sprint_rng`] crate — one
//! splitmix64/xoshiro256** for the whole workspace (the vendored `rand` shim
//! seeds from the same primitives), so the pinned-sequence regression tests
//! there guard every seed-derived stream at once. This module re-exports the
//! primitives under their historical `sprint_core::rng` paths; every consumer
//! keeps compiling unchanged and every stream stays bitwise-identical.
//!
//! The paper's `fixed.seed.sampling = "y"` mode derives the *b*-th permutation
//! from a seed that is a pure function of the permutation index *b* — the
//! property that lets a parallel rank jump straight to its chunk of the
//! permutation sequence without replaying its predecessors (paper §3.2,
//! Figure 2): SplitMix64 seeding a xoshiro256** stream per index.

pub use sprint_rng::{mix_seed, SplitMix64, Xoshiro256};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_answer() {
        // Vigna's reference: splitmix64(0) first outputs. Kept here (as well
        // as in sprint-rng) so a bad re-export or a divergent vendored copy
        // fails inside this crate's own suite.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn mix_seed_pinned() {
        // The exact fixed-seed-sampling derivation is part of the checkpoint/
        // cache compatibility surface.
        assert_eq!(mix_seed(44_561, 1), 0xc2c26ad2bb0f3d62);
        assert_eq!(mix_seed(44_561, 2), 0x5cdcbcf8998348b4);
        assert_eq!(mix_seed(0, 0), 0xe220a8397b1dcdaf);
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = Xoshiro256::seed_from(5);
        let bound = 10u64;
        let n = 100_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[rng.next_below(bound) as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for &c in &counts {
            // 5-sigma-ish tolerance for binomial(n, 1/10).
            assert!((c as f64 - expect).abs() < 5.0 * (expect * 0.9).sqrt());
        }
    }

    #[test]
    fn shuffle_uniformity_three_elements() {
        // All 6 orderings of [0,1,2] should appear with roughly equal
        // frequency.
        let mut rng = Xoshiro256::seed_from(11);
        let mut freq = std::collections::HashMap::new();
        let n = 60_000;
        for _ in 0..n {
            let mut v = [0u8, 1, 2];
            rng.shuffle(&mut v);
            *freq.entry(v).or_insert(0usize) += 1;
        }
        assert_eq!(freq.len(), 6);
        let expect = n as f64 / 6.0;
        for &c in freq.values() {
            assert!((c as f64 - expect).abs() < 5.0 * expect.sqrt());
        }
    }

    #[test]
    fn next_bool_balanced() {
        let mut rng = Xoshiro256::seed_from(17);
        let n = 100_000;
        let trues = (0..n).filter(|_| rng.next_bool()).count();
        assert!((trues as f64 - n as f64 / 2.0).abs() < 5.0 * (n as f64 / 4.0).sqrt());
    }

    #[test]
    fn shuffle_empty_and_single() {
        let mut rng = Xoshiro256::seed_from(1);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42u8];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }
}
