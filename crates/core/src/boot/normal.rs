//! Standard-normal CDF and quantile function for the BCa interval
//! corrections — self-contained rational approximations, no libm beyond
//! `exp`/`sqrt`/`ln`.

use std::f64::consts::SQRT_2;

/// Error function via Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5·10⁻⁷) — ample
/// for mapping bias-correction counts to z-scores.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard-normal CDF Φ.
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / SQRT_2))
}

/// Standard-normal quantile Φ⁻¹ via Acklam's rational approximation
/// (relative error < 1.15·10⁻⁹ over (0, 1)). Returns ±∞ at the endpoints
/// and NaN outside [0, 1].
pub fn inv_phi(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_known_points() {
        assert!((phi(0.0) - 0.5).abs() < 3e-7);
        assert!((phi(1.959_963_985) - 0.975).abs() < 1e-6);
        assert!((phi(-1.959_963_985) - 0.025).abs() < 1e-6);
        assert!(phi(8.0) > 0.999_999);
        assert!(phi(-8.0) < 1e-6);
    }

    #[test]
    fn inv_phi_known_points() {
        assert!((inv_phi(0.5)).abs() < 1e-9);
        assert!((inv_phi(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((inv_phi(0.025) + 1.959_963_985).abs() < 1e-6);
        assert_eq!(inv_phi(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_phi(1.0), f64::INFINITY);
        assert!(inv_phi(-0.1).is_nan());
    }

    #[test]
    fn phi_and_inv_phi_are_inverse() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            assert!((phi(inv_phi(p)) - p).abs() < 1e-6, "p={p}");
        }
    }
}
