//! The bootstrap workload (`workload = "bootstrap"`): case-resampling
//! confidence intervals for the per-gene two-group mean difference, built on
//! the same [`ResamplingStream`](crate::perm::ResamplingStream) seam as the
//! permutation workload.
//!
//! Each draw from the bootstrap stream is an index vector: slot `i` names
//! the source column resampled into position `i`, and columns keep their
//! class labels (case resampling). Replicate `j ∈ [1, B)` of gene `g` is the
//! group-mean difference over the drawn columns; the identity draw at index
//! 0 is the observed statistic θ̂. Per-replicate values depend only on
//! `(seed, j, data)` — never on how the replicate span was partitioned — so
//! serial, multi-threaded and gene-sharded runs are bitwise identical by
//! construction, the same contract the permutation engine offers.
//!
//! Two interval families per gene:
//!
//! - **percentile**: empirical 2.5 / 97.5 % quantiles of the replicate
//!   distribution (type-7 interpolation);
//! - **BCa** (bias-corrected and accelerated, Efron 1987): the percentile
//!   levels shifted by the bias correction z₀ = Φ⁻¹(#{θ* < θ̂}/R) and the
//!   jackknife acceleration a = Σd³ / (6·(Σd²)^{3/2}), d the leave-one-
//!   column-out deviations.

pub mod normal;

use std::ops::Range;

use crate::error::{Error, Result};
use crate::labels::ClassLabels;
use crate::matrix::Matrix;
use crate::maxt::engine::{split_chunk, EngineConfig};
use crate::options::{Mode, PmaxtOptions, Precision, TestMethod, Workload};
use crate::perm::arrangement::{build_stream, resolve_draw_count};
use crate::perm::bootstrap::MAX_BOOTSTRAP_COLS;
use normal::{inv_phi, phi};

/// Two-sided confidence level of the reported intervals.
pub const CI_LEVEL: f64 = 0.95;

/// Per-gene bootstrap estimates for a gene slice (`offset` genes are skipped
/// before the first reported row; a full run has `offset = 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapResult {
    /// First gene row this result covers.
    pub offset: usize,
    /// Observed statistic θ̂ per covered gene (group-1 mean − group-0 mean).
    pub theta: Vec<f64>,
    /// Bootstrap standard error (sample SD of the replicates).
    pub se: Vec<f64>,
    /// Percentile interval bounds.
    pub pct_lo: Vec<f64>,
    /// Percentile upper bounds.
    pub pct_hi: Vec<f64>,
    /// BCa lower bounds (NaN when the bias correction is undefined).
    pub bca_lo: Vec<f64>,
    /// BCa upper bounds.
    pub bca_hi: Vec<f64>,
    /// Replicates drawn (`B − 1`; index 0 is the observed arrangement).
    pub replicates: u64,
    /// Two-sided confidence level.
    pub level: f64,
}

impl BootstrapResult {
    /// Number of genes covered.
    pub fn genes(&self) -> usize {
        self.theta.len()
    }

    /// Append another slice's rows (must continue exactly where this one
    /// ends — the shard-merge invariant).
    pub fn extend(&mut self, other: &BootstrapResult) -> Result<()> {
        if other.offset != self.offset + self.genes()
            || other.replicates != self.replicates
            || other.level != self.level
        {
            return Err(Error::Comm(format!(
                "bootstrap slices do not abut: have rows {}..{} (R={}), \
                 next slice starts at {} (R={})",
                self.offset,
                self.offset + self.genes(),
                self.replicates,
                other.offset,
                other.replicates
            )));
        }
        self.theta.extend_from_slice(&other.theta);
        self.se.extend_from_slice(&other.se);
        self.pct_lo.extend_from_slice(&other.pct_lo);
        self.pct_hi.extend_from_slice(&other.pct_hi);
        self.bca_lo.extend_from_slice(&other.bca_lo);
        self.bca_hi.extend_from_slice(&other.bca_hi);
        Ok(())
    }
}

/// Validate a bootstrap run and canonicalize the NA code. Refusals mirror
/// the permutation front half (`prepare_run`), plus the bootstrap-specific
/// constraints: two-group `t` design only, explicit `B ≥ 2`, exact mode,
/// `f64` accumulation, at most [`MAX_BOOTSTRAP_COLS`] sample columns.
pub fn validate_boot(
    data: &Matrix,
    classlabel: &[u8],
    opts: &PmaxtOptions,
) -> Result<(ClassLabels, u64, Matrix)> {
    if opts.workload != Workload::Bootstrap {
        return Err(Error::BadOption {
            param: "workload",
            value: format!(
                "{} (the bootstrap driver only runs workload=bootstrap)",
                opts.workload.as_str()
            ),
        });
    }
    if opts.test != TestMethod::T {
        return Err(Error::BadOption {
            param: "test",
            value: format!(
                "{} (the bootstrap workload estimates the two-group mean \
                 difference and requires test=\"t\")",
                opts.test.as_str()
            ),
        });
    }
    if opts.mode != Mode::Exact {
        return Err(Error::BadOption {
            param: "mode",
            value: "adaptive (bootstrap replicates have no early-stopping bound theory wired up; use mode=exact)".into(),
        });
    }
    if opts.precision != Precision::F64 {
        return Err(Error::BadOption {
            param: "precision",
            value: "f32 (bootstrap intervals are only validated for f64 accumulation)".into(),
        });
    }
    let labels = ClassLabels::new(classlabel.to_vec(), TestMethod::T)?;
    if labels.len() != data.cols() {
        return Err(Error::BadLabels(format!(
            "classlabel length {} does not match {} data columns",
            labels.len(),
            data.cols()
        )));
    }
    if labels.len() > MAX_BOOTSTRAP_COLS {
        return Err(Error::BadLabels(format!(
            "bootstrap supports at most {MAX_BOOTSTRAP_COLS} sample columns, got {}",
            labels.len()
        )));
    }
    let b = resolve_draw_count(&labels, opts)?;
    let owned = match opts.na {
        Some(code) => {
            Matrix::from_vec_with_na(data.rows(), data.cols(), data.as_slice().to_vec(), code)?
        }
        None => data.clone(),
    };
    Ok((labels, b, owned))
}

/// Group-mean difference of one gene row under an index draw: drawn columns
/// keep their labels; NaN cells drop out; an empty group yields NaN.
#[inline]
fn mean_diff_drawn(row: &[f64], labels: &[u8], draw: &[u8]) -> f64 {
    let (mut s0, mut s1) = (0.0f64, 0.0f64);
    let (mut n0, mut n1) = (0u32, 0u32);
    for &ix in draw {
        let v = row[ix as usize];
        if v.is_nan() {
            continue;
        }
        if labels[ix as usize] == 1 {
            s1 += v;
            n1 += 1;
        } else {
            s0 += v;
            n0 += 1;
        }
    }
    if n0 == 0 || n1 == 0 {
        return f64::NAN;
    }
    s1 / n1 as f64 - s0 / n0 as f64
}

/// Type-7 (linear-interpolation) quantile of an ascending-sorted slice.
fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 0 || p.is_nan() {
        return f64::NAN;
    }
    let h = (n - 1) as f64 * p.clamp(0.0, 1.0);
    let lo = h.floor() as usize;
    if lo + 1 >= n {
        return sorted[n - 1];
    }
    sorted[lo] + (h - lo as f64) * (sorted[lo + 1] - sorted[lo])
}

/// Run the bootstrap workload over every gene. Threading follows
/// [`EngineConfig::resolve`] (`opts.threads` / `SPRINT_THREADS`); any thread
/// count produces bitwise-identical results.
pub fn boot_run(data: &Matrix, classlabel: &[u8], opts: &PmaxtOptions) -> Result<BootstrapResult> {
    boot_run_slice(data, classlabel, opts, 0..data.rows())
}

/// Run the bootstrap workload over a contiguous gene slice — the shard unit
/// of the job service. Every peer computes the full replicate span for its
/// rows, and per-gene finalization is independent, so a slice result is
/// bitwise-equal to the same rows of a full run.
pub fn boot_run_slice(
    data: &Matrix,
    classlabel: &[u8],
    opts: &PmaxtOptions,
    genes: Range<usize>,
) -> Result<BootstrapResult> {
    let (labels, b, data) = validate_boot(data, classlabel, opts)?;
    assert!(genes.end <= data.rows(), "gene slice out of range");
    let cfg = EngineConfig::resolve(opts);
    let n = labels.len();
    let gene_count = genes.len();
    let reps = (b - 1) as usize;

    // Replicate matrix, replicate-major: row j−1 holds every covered gene's
    // statistic under draw j. Workers own disjoint contiguous row bands, so
    // the values (and everything derived from them) are partition-invariant.
    let jobs = split_chunk(1, b - 1, cfg.threads);
    let run_band = |start: u64, take: u64| -> Result<Vec<f64>> {
        let mut band = vec![f64::NAN; take as usize * gene_count];
        let mut stream = build_stream(&labels, opts, b)?.stream;
        stream.skip(start);
        let mut draw = vec![0u8; n];
        for row in band.chunks_exact_mut(gene_count) {
            if !stream.next_into(&mut draw) {
                return Err(Error::Comm("bootstrap stream ended early".into()));
            }
            for (slot, g) in row.iter_mut().zip(genes.clone()) {
                *slot = mean_diff_drawn(data.row(g), labels.as_slice(), &draw);
            }
        }
        Ok(band)
    };
    let bands: Vec<Result<Vec<f64>>> = if jobs.len() <= 1 {
        jobs.iter().map(|&(s, t)| run_band(s, t)).collect()
    } else {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(jobs.len())
            .build()
            .map_err(|e| Error::Comm(format!("thread pool: {e}")))?;
        use rayon::prelude::*;
        pool.install(|| jobs.par_iter().map(|&(s, t)| run_band(s, t)).collect())
    };
    let mut stats = Vec::with_capacity(reps * gene_count);
    for band in bands {
        stats.extend(band?);
    }

    // Per-gene finalization.
    let z_lo = inv_phi((1.0 - CI_LEVEL) / 2.0);
    let z_hi = inv_phi(1.0 - (1.0 - CI_LEVEL) / 2.0);
    let mut out = BootstrapResult {
        offset: genes.start,
        theta: Vec::with_capacity(gene_count),
        se: Vec::with_capacity(gene_count),
        pct_lo: Vec::with_capacity(gene_count),
        pct_hi: Vec::with_capacity(gene_count),
        bca_lo: Vec::with_capacity(gene_count),
        bca_hi: Vec::with_capacity(gene_count),
        replicates: b - 1,
        level: CI_LEVEL,
    };
    let identity: Vec<u8> = (0..n as u8).collect();
    for (gi, g) in genes.clone().enumerate() {
        let row = data.row(g);
        let theta = mean_diff_drawn(row, labels.as_slice(), &identity);
        out.theta.push(theta);
        if theta.is_nan() {
            out.se.push(f64::NAN);
            out.pct_lo.push(f64::NAN);
            out.pct_hi.push(f64::NAN);
            out.bca_lo.push(f64::NAN);
            out.bca_hi.push(f64::NAN);
            continue;
        }
        // Valid replicates, ascending (degenerate draws — an empty group
        // after resampling — drop out, as `boot` drops failed statistics).
        let mut v: Vec<f64> = (0..reps)
            .map(|j| stats[j * gene_count + gi])
            .filter(|x| !x.is_nan())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
        if v.len() < 2 {
            out.se.push(f64::NAN);
            out.pct_lo.push(f64::NAN);
            out.pct_hi.push(f64::NAN);
            out.bca_lo.push(f64::NAN);
            out.bca_hi.push(f64::NAN);
            continue;
        }
        let m = v.len() as f64;
        let mean = v.iter().sum::<f64>() / m;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (m - 1.0);
        out.se.push(var.sqrt());
        out.pct_lo.push(quantile_sorted(&v, (1.0 - CI_LEVEL) / 2.0));
        out.pct_hi
            .push(quantile_sorted(&v, 1.0 - (1.0 - CI_LEVEL) / 2.0));

        // BCa: bias correction from the replicate distribution, acceleration
        // from the leave-one-column-out jackknife.
        let below = v.iter().filter(|&&x| x < theta).count() as f64;
        let prop = below / m;
        if prop <= 0.0 || prop >= 1.0 {
            out.bca_lo.push(f64::NAN);
            out.bca_hi.push(f64::NAN);
            continue;
        }
        let z0 = inv_phi(prop);
        let a = jackknife_acceleration(row, labels.as_slice());
        let level = |z: f64| -> f64 {
            let num = z0 + z;
            phi(z0 + num / (1.0 - a * num))
        };
        out.bca_lo.push(quantile_sorted(&v, level(z_lo)));
        out.bca_hi.push(quantile_sorted(&v, level(z_hi)));
    }
    Ok(out)
}

/// Jackknife acceleration constant for one gene: leave each non-missing
/// column out in turn, recompute the mean difference from the cached group
/// totals, and combine the deviations. Returns 0.0 when the deviations
/// vanish (flat jackknife) and skips columns whose removal would empty a
/// group.
fn jackknife_acceleration(row: &[f64], labels: &[u8]) -> f64 {
    let (mut s0, mut s1) = (0.0f64, 0.0f64);
    let (mut n0, mut n1) = (0u32, 0u32);
    for (&v, &l) in row.iter().zip(labels) {
        if v.is_nan() {
            continue;
        }
        if l == 1 {
            s1 += v;
            n1 += 1;
        } else {
            s0 += v;
            n0 += 1;
        }
    }
    let mut thetas = Vec::with_capacity(row.len());
    for (&v, &l) in row.iter().zip(labels) {
        if v.is_nan() {
            continue;
        }
        let t = if l == 1 {
            if n1 < 2 {
                continue;
            }
            (s1 - v) / (n1 - 1) as f64 - s0 / n0 as f64
        } else {
            if n0 < 2 {
                continue;
            }
            s1 / n1 as f64 - (s0 - v) / (n0 - 1) as f64
        };
        thetas.push(t);
    }
    if thetas.len() < 2 {
        return 0.0;
    }
    let mean = thetas.iter().sum::<f64>() / thetas.len() as f64;
    let (mut d2, mut d3) = (0.0f64, 0.0f64);
    for t in &thetas {
        let d = mean - t;
        d2 += d * d;
        d3 += d * d * d;
    }
    if d2 <= 0.0 {
        return 0.0;
    }
    d3 / (6.0 * d2.powf(1.5))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(b: u64) -> PmaxtOptions {
        PmaxtOptions::default()
            .workload(Workload::Bootstrap)
            .permutations(b)
    }

    fn dataset() -> (Matrix, Vec<u8>) {
        // 3 genes × 8 samples: strong shift, flat, noisy.
        let data = Matrix::from_vec(
            3,
            8,
            vec![
                1.0, 2.0, 1.5, 2.5, 9.0, 10.0, 9.5, 10.5, // shift ≈ 8
                5.0, 5.1, 4.9, 5.0, 5.05, 4.95, 5.1, 4.9, // flat
                2.0, 8.0, 3.0, 7.0, 2.5, 7.5, 4.0, 6.0, // noisy
            ],
        )
        .unwrap();
        (data, vec![0, 0, 0, 0, 1, 1, 1, 1])
    }

    #[test]
    fn observed_theta_and_interval_shapes() {
        let (data, labels) = dataset();
        let r = boot_run(&data, &labels, &opts(400)).unwrap();
        assert_eq!(r.genes(), 3);
        assert_eq!(r.replicates, 399);
        assert!((r.theta[0] - 8.0).abs() < 1e-12);
        for g in 0..3 {
            assert!(r.pct_lo[g] <= r.pct_hi[g], "gene {g}");
            assert!(r.se[g] > 0.0);
            // θ̂ sits inside its own interval for these well-behaved genes.
            assert!(r.pct_lo[g] <= r.theta[g] && r.theta[g] <= r.pct_hi[g]);
            assert!(r.bca_lo[g] <= r.bca_hi[g]);
        }
        // The shifted gene's interval excludes zero; the flat gene's contains it.
        assert!(r.pct_lo[0] > 0.0);
        assert!(r.pct_lo[1] < 0.0 && r.pct_hi[1] > 0.0);
    }

    #[test]
    fn thread_count_is_bitwise_invisible() {
        let (data, labels) = dataset();
        let serial = boot_run(&data, &labels, &opts(300).threads(1)).unwrap();
        let threaded = boot_run(&data, &labels, &opts(300).threads(4)).unwrap();
        assert_eq!(serial, threaded);
    }

    #[test]
    fn gene_slices_equal_full_run_rows() {
        let (data, labels) = dataset();
        let o = opts(250);
        let full = boot_run(&data, &labels, &o).unwrap();
        let mut merged = boot_run_slice(&data, &labels, &o, 0..1).unwrap();
        let tail = boot_run_slice(&data, &labels, &o, 1..3).unwrap();
        merged.extend(&tail).unwrap();
        assert_eq!(merged, full);
        // Non-abutting slices are refused.
        let gap = boot_run_slice(&data, &labels, &o, 2..3).unwrap();
        let mut head = boot_run_slice(&data, &labels, &o, 0..1).unwrap();
        assert!(head.extend(&gap).is_err());
    }

    #[test]
    fn stored_sampling_draws_a_different_but_valid_stream() {
        let (data, labels) = dataset();
        let fixed = boot_run(&data, &labels, &opts(200)).unwrap();
        let stored =
            boot_run(&data, &labels, &opts(200).fixed_seed_sampling("n").unwrap()).unwrap();
        // Same observed statistic, different replicate stream.
        assert_eq!(fixed.theta, stored.theta);
        assert_ne!(fixed.pct_lo, stored.pct_lo);
    }

    #[test]
    fn na_cells_drop_out() {
        let data =
            Matrix::from_vec(1, 8, vec![1.0, 2.0, -99.0, 2.5, 9.0, 10.0, 9.5, 10.5]).unwrap();
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let r = boot_run(&data, &labels, &opts(100).na_code(-99.0)).unwrap();
        // Observed mean difference over the 7 remaining cells.
        let expect = (9.0 + 10.0 + 9.5 + 10.5) / 4.0 - (1.0 + 2.0 + 2.5) / 3.0;
        assert!((r.theta[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn refusals_are_typed() {
        let (data, labels) = dataset();
        // Wrong workload.
        let e = boot_run(&data, &labels, &PmaxtOptions::default()).unwrap_err();
        assert!(matches!(
            e,
            Error::BadOption {
                param: "workload",
                ..
            }
        ));
        // Wrong test method.
        let e = boot_run(&data, &labels, &opts(100).test(TestMethod::Wilcoxon)).unwrap_err();
        assert!(matches!(e, Error::BadOption { param: "test", .. }));
        // Adaptive mode.
        let e = boot_run(&data, &labels, &opts(100).mode(Mode::Adaptive)).unwrap_err();
        assert!(matches!(e, Error::BadOption { param: "mode", .. }));
        // f32 precision.
        let e = boot_run(&data, &labels, &opts(100).precision(Precision::F32)).unwrap_err();
        assert!(matches!(
            e,
            Error::BadOption {
                param: "precision",
                ..
            }
        ));
        // B too small.
        let e = boot_run(&data, &labels, &opts(1)).unwrap_err();
        assert!(matches!(e, Error::BadOption { param: "b", .. }));
        // Multi-class labels are not a two-group design.
        let e = boot_run(&data, &[0, 0, 0, 1, 1, 1, 2, 2], &opts(100)).unwrap_err();
        assert!(matches!(e, Error::BadLabels(_)));
    }

    #[test]
    fn wide_interval_shrinks_with_more_replicates() {
        let (data, labels) = dataset();
        // CI endpoints stabilize (width estimate noise falls) as B grows;
        // check the basic sanity that both runs bracket θ̂ and the large-B
        // width is within 2× of the small-B width (loose, deterministic).
        let small = boot_run(&data, &labels, &opts(50)).unwrap();
        let large = boot_run(&data, &labels, &opts(2000)).unwrap();
        let w_small = small.pct_hi[2] - small.pct_lo[2];
        let w_large = large.pct_hi[2] - large.pct_lo[2];
        assert!(w_small > 0.0 && w_large > 0.0);
        assert!(w_large < 2.0 * w_small && w_small < 2.0 * w_large);
    }
}
