//! Test-method and run options, mirroring the R signature
//!
//! ```text
//! pmaxT(X, classlabel, test = "t", side = "abs", fixed.seed.sampling = "y",
//!       B = 10000, na = .mt.naNUM, nonpara = "n")
//! ```
//!
//! The interface of `pmaxT` is identical to `mt.maxT` (paper §3.2); this
//! module preserves the parameter names, string forms and defaults.

use crate::error::{Error, Result};
use crate::side::Side;

/// The supported test statistics: the paper's six (§3.1) plus the
/// PERMUTOOLS-style correlation and tmax max-statistic variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestMethod {
    /// Two-sample Welch t-statistic, unequal variances (`"t"`).
    T,
    /// Two-sample t-statistic with pooled variance (`"t.equalvar"`).
    TEqualVar,
    /// Standardized rank-sum Wilcoxon statistic (`"wilcoxon"`).
    Wilcoxon,
    /// One-way F-statistic over k classes (`"f"`).
    F,
    /// Paired t-statistic (`"pairt"`).
    PairT,
    /// Block F-statistic adjusting for block differences (`"blockf"`).
    BlockF,
    /// Pearson correlation between each gene row and the numeric class
    /// labels (`"corr"`; point-biserial for two classes). Association test
    /// in the PERMUTOOLS style.
    Corr,
    /// Welch t-statistic with single-step tmax adjustment (`"tmax"`): the
    /// adjusted counts compare every gene against the *global* permutation
    /// maximum instead of the step-down successive maxima (PERMUTOOLS'
    /// max-statistic multiple-comparison correction).
    TMax,
}

impl TestMethod {
    /// All methods: the paper's six in order, then the PERMUTOOLS additions.
    pub const ALL: [TestMethod; 8] = [
        TestMethod::T,
        TestMethod::TEqualVar,
        TestMethod::Wilcoxon,
        TestMethod::F,
        TestMethod::PairT,
        TestMethod::BlockF,
        TestMethod::Corr,
        TestMethod::TMax,
    ];

    /// Parse the R string form.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "t" => Ok(TestMethod::T),
            "t.equalvar" => Ok(TestMethod::TEqualVar),
            "wilcoxon" => Ok(TestMethod::Wilcoxon),
            "f" => Ok(TestMethod::F),
            "pairt" => Ok(TestMethod::PairT),
            "blockf" => Ok(TestMethod::BlockF),
            "corr" => Ok(TestMethod::Corr),
            "tmax" => Ok(TestMethod::TMax),
            other => Err(Error::BadOption {
                param: "test",
                value: other.to_string(),
            }),
        }
    }

    /// The R string form.
    pub fn as_str(self) -> &'static str {
        match self {
            TestMethod::T => "t",
            TestMethod::TEqualVar => "t.equalvar",
            TestMethod::Wilcoxon => "wilcoxon",
            TestMethod::F => "f",
            TestMethod::PairT => "pairt",
            TestMethod::BlockF => "blockf",
            TestMethod::Corr => "corr",
            TestMethod::TMax => "tmax",
        }
    }

    /// True for the methods that share the two-sample/multi-class shuffle
    /// generators (paper §3.1: t, t.equalvar, wilcoxon, f; plus corr and
    /// tmax, whose designs are multi-class and two-sample respectively).
    pub fn uses_shuffle_generator(self) -> bool {
        !matches!(self, TestMethod::PairT | TestMethod::BlockF)
    }

    /// True for the tmax single-step variant: adjusted counts use the global
    /// permutation maximum rather than step-down successive maxima.
    pub fn single_step_max(self) -> bool {
        matches!(self, TestMethod::TMax)
    }

    /// True for methods whose permutations are never stored in memory even if
    /// requested (paper §3.1: block-f always on-the-fly; complete generators
    /// likewise).
    pub fn storage_forced_on_the_fly(self) -> bool {
        matches!(self, TestMethod::BlockF)
    }
}

/// How permutations are produced (paper §3.1 "generator/store").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SamplingMode {
    /// `fixed.seed.sampling = "y"`: the b-th permutation is derived from a
    /// seed that is a pure function of b; nothing is stored. Default.
    #[default]
    FixedSeedOnTheFly,
    /// `fixed.seed.sampling = "n"`: all permutations are drawn from one
    /// sequential stream and stored in memory before the kernel runs.
    Stored,
}

impl SamplingMode {
    /// Parse the R `"y"`/`"n"` form.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "y" => Ok(SamplingMode::FixedSeedOnTheFly),
            "n" => Ok(SamplingMode::Stored),
            other => Err(Error::BadOption {
                param: "fixed.seed.sampling",
                value: other.to_string(),
            }),
        }
    }

    /// The R string form.
    pub fn as_str(self) -> &'static str {
        match self {
            SamplingMode::FixedSeedOnTheFly => "y",
            SamplingMode::Stored => "n",
        }
    }
}

/// Which [`Scorer`](crate::stats::scorer::Scorer) implementation the
/// permutation loop uses.
///
/// Every statistic has a fast scorer that caches per-gene sufficient
/// statistics once (class sums, pair differences, per-block partials) and
/// reduces each permutation to an indexed gather per gene — NA rows
/// included, via per-permutation group-count adjustment. This knob is a
/// debug override: `Scalar` forces the reference per-column scalar scorer
/// everywhere; `Auto`/`Fast` select the per-method fast scorer. The
/// `SPRINT_KERNEL` environment variable (`auto`/`scalar`/`fast`) overrides
/// this option — the debugging escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelChoice {
    /// Use the per-method fast scorer. Default.
    #[default]
    Auto,
    /// Force the reference scalar per-column scorer everywhere.
    Scalar,
    /// Synonym of `Auto` kept for compatibility with existing scripts.
    Fast,
}

impl KernelChoice {
    /// Parse the string form (`auto`/`scalar`/`fast`).
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "auto" => Ok(KernelChoice::Auto),
            "scalar" => Ok(KernelChoice::Scalar),
            "fast" => Ok(KernelChoice::Fast),
            other => Err(Error::BadOption {
                param: "kernel",
                value: other.to_string(),
            }),
        }
    }

    /// The string form.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelChoice::Auto => "auto",
            KernelChoice::Scalar => "scalar",
            KernelChoice::Fast => "fast",
        }
    }

    /// Apply the `SPRINT_KERNEL` environment override, if set to a valid
    /// value. Every context construction consults this, so `SPRINT_KERNEL=
    /// scalar` forces the scalar path through any driver without touching
    /// options plumbing. An invalid value is ignored with a single stderr
    /// warning naming the accepted forms — never silently.
    pub fn env_override(self) -> Self {
        match std::env::var("SPRINT_KERNEL") {
            Ok(v) => match Self::parse(&v) {
                Ok(choice) => choice,
                Err(_) => {
                    warn_bad_env("SPRINT_KERNEL", &v, "\"auto\", \"scalar\" or \"fast\"");
                    self
                }
            },
            Err(_) => self,
        }
    }
}

/// Accumulation precision of the fast scorers' SoA kernels.
///
/// `F64` (the default) is the reference precision: fast-scorer sums are
/// bitwise identical to the scalar path and exceedance counts are exact.
/// `F32` halves the score-tile footprint and doubles SIMD lane width at the
/// cost of rounding: statistics drift by a documented bound (see DESIGN.md
/// §4.10) and counts are no longer guaranteed to match the f64 reference, so
/// every bitwise-reproducibility surface (checkpoint resume, the jobd result
/// cache) rejects it with a typed usage error. The scalar reference scorer
/// always computes in f64 regardless of this knob. The `SPRINT_PRECISION`
/// environment variable (`f64`/`f32`) overrides this option, mirroring
/// `SPRINT_KERNEL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Accumulate in `f64` (bitwise-reproducible). Default.
    #[default]
    F64,
    /// Accumulate in `f32` (opt-in, bounded-error, not reproducible vs f64).
    F32,
}

impl Precision {
    /// Parse the string form (`f64`/`f32`).
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "f64" => Ok(Precision::F64),
            "f32" => Ok(Precision::F32),
            other => Err(Error::BadOption {
                param: "precision",
                value: other.to_string(),
            }),
        }
    }

    /// The string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }

    /// Apply the `SPRINT_PRECISION` environment override, if set to a valid
    /// value. Consulted wherever a fast scorer is built *and* wherever f32
    /// must be rejected, so the override cannot smuggle reduced precision
    /// past a reproducibility gate. Invalid values warn once and are ignored.
    pub fn env_override(self) -> Self {
        match std::env::var("SPRINT_PRECISION") {
            Ok(v) => match Self::parse(&v) {
                Ok(p) => p,
                Err(_) => {
                    warn_bad_env("SPRINT_PRECISION", &v, "\"f64\" or \"f32\"");
                    self
                }
            },
            Err(_) => self,
        }
    }
}

/// How the permutation budget is spent.
///
/// `Exact` (the default) scores every gene against all `B` permutations —
/// the paper's semantics, bitwise-reproducible across any engine geometry.
/// `Adaptive` routes the run through the [`adaptive`](crate::adaptive)
/// subsystem: genes whose raw p-value is clearly non-significant are
/// deactivated early under an anytime-valid confidence-sequence bound, and
/// the smallest p-values get a generalized-Pareto tail fit. Adaptive results
/// carry deterministic per-gene p-value *bounds* instead of exact counts, so
/// every surface that contracts bitwise reproducibility (checkpoint resume,
/// jobd span execution) refuses the mode — an adaptive job can later be
/// *upgraded* to exact by resubmitting in exact mode, which extends the
/// cached exact prefix. The `SPRINT_MODE` environment variable
/// (`exact`/`adaptive`) overrides this option, mirroring `SPRINT_KERNEL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Score all `B` permutations for every gene. Default.
    #[default]
    Exact,
    /// Early-stop clearly non-significant genes; tail-fit the smallest
    /// p-values. Reports bounds and diagnostics, not exact counts.
    Adaptive,
}

impl Mode {
    /// Parse the string form (`exact`/`adaptive`).
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "exact" => Ok(Mode::Exact),
            "adaptive" => Ok(Mode::Adaptive),
            other => Err(Error::BadOption {
                param: "mode",
                value: other.to_string(),
            }),
        }
    }

    /// The string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Exact => "exact",
            Mode::Adaptive => "adaptive",
        }
    }

    /// Apply the `SPRINT_MODE` environment override, if set to a valid
    /// value. Consulted where a run dispatches on mode *and* wherever
    /// adaptive must be rejected, so the override cannot smuggle an
    /// approximate run past a reproducibility gate. Invalid values warn once
    /// and are ignored.
    pub fn env_override(self) -> Self {
        match std::env::var("SPRINT_MODE") {
            Ok(v) => match Self::parse(&v) {
                Ok(m) => m,
                Err(_) => {
                    warn_bad_env("SPRINT_MODE", &v, "\"exact\" or \"adaptive\"");
                    self
                }
            },
            Err(_) => self,
        }
    }
}

/// Which resampling workload a run computes.
///
/// `Pmaxt` (the default) is the paper's permutation test: label arrangements
/// drive the maxT step-down adjustment. `Bootstrap` draws samples *with
/// replacement* over the same resampling-stream seam and reports percentile
/// and BCa confidence intervals for each gene's group-mean difference instead
/// of p-values. The workload selects the [`Arrangement`]
/// (crate::perm::arrangement::Arrangement) semantics of the stream; digests
/// absorb a marker only for non-default workloads so every pre-existing
/// permutation digest (and the caches keyed by them) stays valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Workload {
    /// Westfall–Young maxT permutation testing. Default.
    #[default]
    Pmaxt,
    /// Case-resampling bootstrap with percentile + BCa confidence intervals.
    Bootstrap,
}

impl Workload {
    /// Parse the string form (`pmaxt`/`bootstrap`).
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "pmaxt" => Ok(Workload::Pmaxt),
            "bootstrap" => Ok(Workload::Bootstrap),
            other => Err(Error::BadOption {
                param: "workload",
                value: other.to_string(),
            }),
        }
    }

    /// The string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Workload::Pmaxt => "pmaxt",
            Workload::Bootstrap => "bootstrap",
        }
    }
}

/// Warn (once per variable per process) that an environment override is
/// being ignored because its value does not parse. Silent swallowing made
/// `SPRINT_KERNEL=Fast` or `SPRINT_THREADS=4x` run the default configuration
/// with no indication anything was wrong.
pub(crate) fn warn_bad_env(name: &'static str, value: &str, accepted: &str) {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static WARNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let warned = WARNED.get_or_init(|| Mutex::new(HashSet::new()));
    if warned.lock().unwrap().insert(name) {
        eprintln!("warning: ignoring invalid {name}={value:?}: accepted values are {accepted}");
    }
}

/// The default maximum number of complete permutations accepted when `B = 0`.
/// Beyond this the run refuses and asks for Monte-Carlo sampling, as the
/// paper describes.
pub const DEFAULT_MAX_COMPLETE: u64 = 100_000_000;

/// Options of `pmaxT`/`mt.maxT` with the R defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct PmaxtOptions {
    /// `test`: the statistic (default `"t"`).
    pub test: TestMethod,
    /// `side`: the rejection region (default `"abs"`).
    pub side: Side,
    /// `fixed.seed.sampling`: generator/store choice (default `"y"`).
    pub sampling: SamplingMode,
    /// `B`: requested permutation count; `0` requests complete enumeration
    /// (default 10 000).
    pub b: u64,
    /// `na`: the missing-value code; cells equal to it are excluded. `None`
    /// means only `NaN` cells are missing (the `.mt.naNUM` default behaves
    /// this way after canonicalization).
    pub na: Option<f64>,
    /// `nonpara`: rank-transform the data before computing the statistic
    /// (default `"n"`).
    pub nonpara: bool,
    /// RNG seed for the permutation streams. The R implementation seeds from
    /// a fixed constant; we expose it for reproducibility studies.
    pub seed: u64,
    /// Cap on complete enumeration (see [`DEFAULT_MAX_COMPLETE`]).
    pub max_complete: u64,
    /// Scorer selection (see [`KernelChoice`]). Not part of the R
    /// signature — all scorers produce the same counts, this only selects
    /// the implementation.
    pub kernel: KernelChoice,
    /// Worker threads per rank for the permutation engine; `0` (default)
    /// means "use available parallelism". The `SPRINT_THREADS` environment
    /// variable overrides this. Any value produces identical results — the
    /// engine's count reduction is exact.
    pub threads: usize,
    /// Permutations per engine batch; `0` (default) selects the built-in
    /// batch size. The `SPRINT_BATCH` environment variable overrides this.
    /// Any value produces identical results.
    pub batch: usize,
    /// Accumulation precision of the fast scorers (see [`Precision`]). Not
    /// part of the R signature; `F64` (default) is exact, `F32` trades a
    /// bounded statistic error for speed and is rejected by surfaces that
    /// require bitwise reproducibility. The `SPRINT_PRECISION` environment
    /// variable overrides this.
    pub precision: Precision,
    /// Permutation-budget mode (see [`Mode`]). Not part of the R signature;
    /// `Exact` (default) preserves the paper's semantics, `Adaptive` spends
    /// the budget unevenly and reports per-gene bounds and diagnostics. The
    /// `SPRINT_MODE` environment variable overrides this.
    pub mode: Mode,
    /// Resampling workload (see [`Workload`]). Not part of the R signature;
    /// `Pmaxt` (default) is the paper's permutation test, `Bootstrap` draws
    /// with replacement and reports confidence intervals.
    pub workload: Workload,
}

impl Default for PmaxtOptions {
    fn default() -> Self {
        PmaxtOptions {
            test: TestMethod::T,
            side: Side::Abs,
            sampling: SamplingMode::FixedSeedOnTheFly,
            b: 10_000,
            na: None,
            nonpara: false,
            seed: 44_561, // multtest's historical default RNG seed
            max_complete: DEFAULT_MAX_COMPLETE,
            kernel: KernelChoice::Auto,
            threads: 0,
            batch: 0,
            precision: Precision::F64,
            mode: Mode::Exact,
            workload: Workload::Pmaxt,
        }
    }
}

impl PmaxtOptions {
    /// Start from the R defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `test` from the R string form.
    pub fn test_str(mut self, s: &str) -> Result<Self> {
        self.test = TestMethod::parse(s)?;
        Ok(self)
    }

    /// Set `test`.
    pub fn test(mut self, m: TestMethod) -> Self {
        self.test = m;
        self
    }

    /// Set `side` from the R string form.
    pub fn side_str(mut self, s: &str) -> Result<Self> {
        self.side = Side::parse(s)?;
        Ok(self)
    }

    /// Set `side`.
    pub fn side(mut self, s: Side) -> Self {
        self.side = s;
        self
    }

    /// Set `fixed.seed.sampling` from `"y"`/`"n"`.
    pub fn fixed_seed_sampling(mut self, s: &str) -> Result<Self> {
        self.sampling = SamplingMode::parse(s)?;
        Ok(self)
    }

    /// Set the permutation count (`0` = complete enumeration).
    pub fn permutations(mut self, b: u64) -> Self {
        self.b = b;
        self
    }

    /// Set the missing-value code.
    pub fn na_code(mut self, na: f64) -> Self {
        self.na = Some(na);
        self
    }

    /// Enable/disable the non-parametric rank transform.
    pub fn nonpara(mut self, yes: bool) -> Self {
        self.nonpara = yes;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the complete-enumeration cap.
    pub fn max_complete(mut self, max: u64) -> Self {
        self.max_complete = max;
        self
    }

    /// Set the scoring kernel.
    pub fn kernel(mut self, k: KernelChoice) -> Self {
        self.kernel = k;
        self
    }

    /// Set the scoring kernel from the string form.
    pub fn kernel_str(mut self, s: &str) -> Result<Self> {
        self.kernel = KernelChoice::parse(s)?;
        Ok(self)
    }

    /// Set the per-rank worker-thread count (`0` = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the engine batch size (`0` = built-in default).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Set the fast-scorer accumulation precision.
    pub fn precision(mut self, p: Precision) -> Self {
        self.precision = p;
        self
    }

    /// Set the fast-scorer accumulation precision from the string form.
    pub fn precision_str(mut self, s: &str) -> Result<Self> {
        self.precision = Precision::parse(s)?;
        Ok(self)
    }

    /// Set the permutation-budget mode.
    pub fn mode(mut self, m: Mode) -> Self {
        self.mode = m;
        self
    }

    /// Set the permutation-budget mode from the string form.
    pub fn mode_str(mut self, s: &str) -> Result<Self> {
        self.mode = Mode::parse(s)?;
        Ok(self)
    }

    /// Set the resampling workload.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = w;
        self
    }

    /// Set the resampling workload from the string form.
    pub fn workload_str(mut self, s: &str) -> Result<Self> {
        self.workload = Workload::parse(s)?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_r_signature() {
        let o = PmaxtOptions::default();
        assert_eq!(o.test, TestMethod::T);
        assert_eq!(o.side, Side::Abs);
        assert_eq!(o.sampling, SamplingMode::FixedSeedOnTheFly);
        assert_eq!(o.b, 10_000);
        assert_eq!(o.na, None);
        assert!(!o.nonpara);
    }

    #[test]
    fn method_strings_round_trip() {
        for m in TestMethod::ALL {
            assert_eq!(TestMethod::parse(m.as_str()).unwrap(), m);
        }
        assert!(TestMethod::parse("ttest").is_err());
        assert!(TestMethod::parse("").is_err());
    }

    #[test]
    fn sampling_mode_round_trips() {
        assert_eq!(
            SamplingMode::parse("y").unwrap(),
            SamplingMode::FixedSeedOnTheFly
        );
        assert_eq!(SamplingMode::parse("n").unwrap(), SamplingMode::Stored);
        assert!(SamplingMode::parse("yes").is_err());
    }

    #[test]
    fn builder_composes() {
        let o = PmaxtOptions::new()
            .test_str("wilcoxon")
            .unwrap()
            .side_str("upper")
            .unwrap()
            .fixed_seed_sampling("n")
            .unwrap()
            .permutations(500)
            .na_code(-99.0)
            .nonpara(true)
            .seed(7);
        assert_eq!(o.test, TestMethod::Wilcoxon);
        assert_eq!(o.side, Side::Upper);
        assert_eq!(o.sampling, SamplingMode::Stored);
        assert_eq!(o.b, 500);
        assert_eq!(o.na, Some(-99.0));
        assert!(o.nonpara);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn kernel_choice_round_trips_and_defaults_to_auto() {
        assert_eq!(PmaxtOptions::default().kernel, KernelChoice::Auto);
        for k in [KernelChoice::Auto, KernelChoice::Scalar, KernelChoice::Fast] {
            assert_eq!(KernelChoice::parse(k.as_str()).unwrap(), k);
        }
        assert!(KernelChoice::parse("simd").is_err());
        let o = PmaxtOptions::new().kernel_str("scalar").unwrap();
        assert_eq!(o.kernel, KernelChoice::Scalar);
        assert_eq!(o.kernel(KernelChoice::Fast).kernel, KernelChoice::Fast);
    }

    #[test]
    fn thread_and_batch_builders_default_to_auto() {
        let o = PmaxtOptions::default();
        assert_eq!(o.threads, 0);
        assert_eq!(o.batch, 0);
        let o = PmaxtOptions::new().threads(4).batch(16);
        assert_eq!(o.threads, 4);
        assert_eq!(o.batch, 16);
    }

    #[test]
    fn precision_round_trips_and_defaults_to_f64() {
        assert_eq!(PmaxtOptions::default().precision, Precision::F64);
        for p in [Precision::F64, Precision::F32] {
            assert_eq!(Precision::parse(p.as_str()).unwrap(), p);
        }
        assert!(Precision::parse("f16").is_err());
        assert!(Precision::parse("F32").is_err());
        let o = PmaxtOptions::new().precision_str("f32").unwrap();
        assert_eq!(o.precision, Precision::F32);
        assert_eq!(o.precision(Precision::F64).precision, Precision::F64);
    }

    #[test]
    fn mode_round_trips_and_defaults_to_exact() {
        assert_eq!(PmaxtOptions::default().mode, Mode::Exact);
        for m in [Mode::Exact, Mode::Adaptive] {
            assert_eq!(Mode::parse(m.as_str()).unwrap(), m);
        }
        assert!(Mode::parse("approx").is_err());
        assert!(Mode::parse("Adaptive").is_err());
        let o = PmaxtOptions::new().mode_str("adaptive").unwrap();
        assert_eq!(o.mode, Mode::Adaptive);
        assert_eq!(o.mode(Mode::Exact).mode, Mode::Exact);
    }

    #[test]
    fn generator_family_classification() {
        assert!(TestMethod::T.uses_shuffle_generator());
        assert!(TestMethod::TEqualVar.uses_shuffle_generator());
        assert!(TestMethod::Wilcoxon.uses_shuffle_generator());
        assert!(TestMethod::F.uses_shuffle_generator());
        assert!(TestMethod::Corr.uses_shuffle_generator());
        assert!(TestMethod::TMax.uses_shuffle_generator());
        assert!(!TestMethod::PairT.uses_shuffle_generator());
        assert!(!TestMethod::BlockF.uses_shuffle_generator());
        assert!(TestMethod::BlockF.storage_forced_on_the_fly());
        assert!(!TestMethod::T.storage_forced_on_the_fly());
        assert!(TestMethod::TMax.single_step_max());
        assert!(!TestMethod::T.single_step_max());
    }

    #[test]
    fn workload_round_trips_and_defaults_to_pmaxt() {
        assert_eq!(PmaxtOptions::default().workload, Workload::Pmaxt);
        for w in [Workload::Pmaxt, Workload::Bootstrap] {
            assert_eq!(Workload::parse(w.as_str()).unwrap(), w);
        }
        assert!(Workload::parse("jackknife").is_err());
        assert!(Workload::parse("Bootstrap").is_err());
        let o = PmaxtOptions::new().workload_str("bootstrap").unwrap();
        assert_eq!(o.workload, Workload::Bootstrap);
        assert_eq!(o.workload(Workload::Pmaxt).workload, Workload::Pmaxt);
    }
}
