//! # sprint-core — permutation testing for multiple hypotheses
//!
//! A from-scratch Rust reproduction of the permutation testing function of
//! the SPRINT R package: the serial `mt.maxT` (Westfall–Young step-down maxT
//! adjusted p-values, as in Bioconductor's `multtest`) and its parallel
//! counterpart `pmaxT` described in
//!
//! > Petrou, Sloan, Mewissen, Forster, Piotrowski, Dobrzelecki, Ghazal, Trew,
//! > Hill — *"Optimization of a parallel permutation testing function for the
//! > SPRINT R package"*, HPDC/ECMLS 2010 (extended in CCPE 23(17), 2011).
//!
//! ## What's here
//!
//! - [`stats`] — the six test statistics (`t`, `t.equalvar`, `wilcoxon`,
//!   `f`, `pairt`, `blockf`) with NA exclusion and the non-parametric rank
//!   transform;
//! - [`perm`] — random (Monte-Carlo) and complete permutation generators,
//!   all supporting skip-ahead so parallel ranks can jump to their chunk;
//! - [`maxt`] — the step-down maxT kernel, count accumulators and the serial
//!   reference [`maxt::serial::mt_maxt`];
//! - [`maxt::engine`] — the batched, gene-tiled, multi-threaded execution
//!   engine every driver dispatches through (deterministic for any
//!   thread/batch geometry);
//! - [`pmaxt`] — the parallel driver over the `mpi-sim` SPMD substrate,
//!   with the paper's five-section wall-clock profile.
//!
//! ## Quick start
//!
//! ```
//! use sprint_core::prelude::*;
//!
//! // 2 genes x 6 samples, two classes of three.
//! let data = Matrix::from_vec(2, 6, vec![
//!     1.0, 2.0, 1.5, 9.0, 10.0, 9.5,   // differentially expressed
//!     5.0, 4.0, 6.0, 5.5, 4.5, 5.2,    // flat
//! ]).unwrap();
//! let labels = [0, 0, 0, 1, 1, 1];
//!
//! // Complete enumeration (B = 0 requests all C(6,3) = 20 relabellings).
//! let opts = PmaxtOptions::default().permutations(0);
//!
//! // Serial reference…
//! let serial = mt_maxt(&data, &labels, &opts).unwrap();
//! // …and the parallel version on 3 ranks: bit-identical results.
//! let parallel = pmaxt(&data, &labels, &opts, 3).unwrap();
//! assert_eq!(parallel.result, serial);
//! assert!(serial.adjp[0] < serial.adjp[1]);
//! ```

pub mod adaptive;
pub mod boot;
pub mod digest;
pub mod error;
pub mod labels;
pub mod matrix;
pub mod maxt;
pub mod options;
pub mod perm;
pub mod pmaxt;
pub mod rng;
pub mod side;
pub mod stats;
pub mod wire;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::adaptive::{adaptive_maxt, AdaptiveConfig, AdaptiveOutcome, AdaptiveReport};
    pub use crate::error::{Error, Result};
    pub use crate::labels::{ClassLabels, Design};
    pub use crate::matrix::Matrix;
    pub use crate::maxt::serial::mt_maxt;
    pub use crate::maxt::{maxt_threaded, maxt_with_config, EngineConfig};
    pub use crate::maxt::{MaxTResult, MaxTRow};
    pub use crate::options::{
        KernelChoice, Mode, PmaxtOptions, Precision, SamplingMode, TestMethod,
    };
    pub use crate::pmaxt::{pmaxt, PmaxtRun};
    pub use crate::side::Side;
}
