//! Error type shared across the core library.

use std::fmt;

/// Errors surfaced by dataset validation, option parsing, generator
/// construction and the parallel driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The input matrix is empty or its dimensions are inconsistent.
    BadMatrix(String),
    /// The class-label vector is invalid for the chosen test method.
    BadLabels(String),
    /// An option string could not be parsed (mirrors R-level validation).
    BadOption {
        /// The parameter name as in the R signature (`test`, `side`, …).
        param: &'static str,
        /// The rejected value.
        value: String,
    },
    /// Complete permutation was requested (`B = 0`) but the number of
    /// arrangements exceeds the allowed limit. The paper: "the user is asked
    /// to explicitly request a smaller number of permutations".
    TooManyPermutations {
        /// Number of complete arrangements (None if it overflows u128).
        total: Option<u128>,
        /// The configured cap.
        max: u64,
    },
    /// A parallel run failed inside the message-passing substrate.
    Comm(String),
    /// A permutation distribution would hand at least one rank an empty
    /// chunk (`ranks > B`) — a resource-allocation mistake, kept distinct so
    /// callers (the CLI exit-code mapping, the job service) can tell it from
    /// infrastructure failures.
    RanksExceedPermutations {
        /// Total permutation count of the run.
        b: u64,
        /// Requested rank count.
        ranks: u64,
    },
    /// A stored arrangement's width disagrees with the dataset's sample
    /// count — a stored permutation matrix (e.g. one replayed from a file)
    /// cannot be applied to this dataset.
    ArrangementWidth {
        /// Zero-based index of the offending arrangement row.
        row: usize,
        /// Expected width (the dataset's sample count).
        expected: usize,
        /// Actual width of the stored arrangement.
        got: usize,
    },
    /// The run was cancelled cooperatively (engine cancellation hook).
    Cancelled,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadMatrix(msg) => write!(f, "invalid input matrix: {msg}"),
            Error::BadLabels(msg) => write!(f, "invalid class labels: {msg}"),
            Error::BadOption { param, value } => {
                write!(f, "invalid value {value:?} for parameter '{param}'")
            }
            Error::TooManyPermutations { total, max } => match total {
                Some(t) => write!(
                    f,
                    "complete permutation count {t} exceeds the allowed maximum {max}; \
                     request a smaller number of random permutations (B > 0)"
                ),
                None => write!(
                    f,
                    "complete permutation count overflows; request random permutations (B > 0)"
                ),
            },
            Error::Comm(msg) => write!(f, "communication failure: {msg}"),
            Error::RanksExceedPermutations { b, ranks } => write!(
                f,
                "cannot distribute {b} permutation(s) over {ranks} ranks: every \
                 rank needs at least one permutation; use at most {b} ranks"
            ),
            Error::ArrangementWidth { row, expected, got } => write!(
                f,
                "stored arrangement {row} has {got} column(s) but the dataset \
                 has {expected} sample(s); every arrangement must cover each \
                 sample column exactly once"
            ),
            Error::Cancelled => write!(f, "run cancelled"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for core operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_facts() {
        let e = Error::TooManyPermutations {
            total: Some(123456789),
            max: 1000,
        };
        let s = e.to_string();
        assert!(s.contains("123456789") && s.contains("1000") && s.contains("B > 0"));

        let e = Error::BadOption {
            param: "side",
            value: "sideways".into(),
        };
        assert!(e.to_string().contains("side") && e.to_string().contains("sideways"));
    }

    #[test]
    fn overflowed_total_has_distinct_message() {
        let e = Error::TooManyPermutations {
            total: None,
            max: 5,
        };
        assert!(e.to_string().contains("overflows"));
    }
}
