//! Content digests of run inputs — the identity layer under checkpointing
//! (`sprint::checkpoint`) and the job service's content-addressed result
//! cache (`jobd`).
//!
//! Three digests with three invalidation scopes:
//!
//! - [`dataset_digest`]: dimensions, every data bit, and the class labels —
//!   anything that changes a statistic changes this;
//! - [`options_digest`]: the result-relevant option fields *including* the
//!   permutation count. Two runs with equal dataset and options digests
//!   produce bitwise-identical results, so this is the checkpoint key;
//! - [`stream_digest`]: like [`options_digest`] but with `b` canonicalized
//!   to its *stream class* (complete vs Monte-Carlo). Every generator's
//!   `j`-th arrangement is independent of the total count, so two
//!   Monte-Carlo runs differing only in `B` share one permutation stream —
//!   a `B`-permutation result is a reusable prefix of any `B′ > B` run.
//!   This is the cache key that makes incremental extension possible.
//!
//! Implementation-selection fields (`kernel`, `threads`, `batch`) never
//! enter any digest: every kernel and every engine geometry produces
//! bitwise-identical counts (asserted by the engine/kernel test suites), so
//! a run started under one configuration may resume or extend under another.

use crate::matrix::Matrix;
use crate::options::PmaxtOptions;

/// Incremental FNV-1a over byte slices.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Start from the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Digest of the data a run computes on: dimensions, every matrix bit
/// (NaN patterns included) and the raw class-label vector.
pub fn dataset_digest(data: &Matrix, classlabel: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(data.rows() as u64);
    h.write_u64(data.cols() as u64);
    for v in data.as_slice() {
        h.write_u64(v.to_bits());
    }
    h.write(classlabel);
    h.finish()
}

/// Absorb the result-relevant option fields. `canonical_b` lets the two
/// public digests differ only in how they treat the permutation count.
fn eat_options(h: &mut Fnv1a, opts: &PmaxtOptions, canonical_b: u64) {
    h.write(opts.test.as_str().as_bytes());
    h.write(opts.side.as_str().as_bytes());
    h.write(opts.sampling.as_str().as_bytes());
    h.write_u64(canonical_b);
    match opts.na {
        Some(code) => {
            h.write(&[1]);
            h.write_u64(code.to_bits());
        }
        None => h.write(&[0]),
    }
    h.write(&[opts.nonpara as u8]);
    h.write_u64(opts.seed);
    // f32 accumulation changes the statistics, so it must change the digest;
    // the marker is absorbed only in that mode so every pre-existing f64
    // digest (and the results cached under it) stays valid.
    if opts.precision == crate::options::Precision::F32 {
        h.write(b"precision=f32");
    }
    // Bootstrap draws a different stream and reports different results, so
    // the marker lands in both digests — and only for the non-default
    // workload, so every pre-existing permutation digest stays valid.
    if opts.workload == crate::options::Workload::Bootstrap {
        h.write(b"workload=bootstrap");
    }
}

/// Digest of the result-relevant options, `B` included. Equal
/// `(dataset_digest, options_digest)` pairs identify runs with
/// bitwise-identical results regardless of kernel or engine geometry.
pub fn options_digest(opts: &PmaxtOptions) -> u64 {
    let mut h = Fnv1a::new();
    eat_options(&mut h, opts, opts.b);
    // Adaptive mode changes what a run *reports* (bounds and diagnostics
    // instead of exact counts), so results must not be confused with exact
    // ones — but it consumes a prefix of the same permutation stream and its
    // exact-prefix checkpoints are valid exact state. The marker therefore
    // lands here and NOT in `stream_digest`: adaptive and exact runs share a
    // cache address, which is exactly what makes upgrade-to-exact a plain
    // B-extension of the cached prefix.
    if opts.mode == crate::options::Mode::Adaptive {
        h.write(b"mode=adaptive");
    }
    h.finish()
}

/// Digest of the permutation *stream* a run consumes: like
/// [`options_digest`] but `b` collapses to `0` (complete enumeration) vs
/// `1` (Monte-Carlo). Monte-Carlo runs differing only in `B` draw prefixes
/// of one stream, so they share this digest — the content address under
/// which a result cache can extend a `B`-permutation run to `B′ > B`
/// without recomputing the shared prefix.
pub fn stream_digest(opts: &PmaxtOptions) -> u64 {
    let mut h = Fnv1a::new();
    eat_options(&mut h, opts, u64::from(opts.b > 0));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{KernelChoice, TestMethod};
    use crate::side::Side;

    fn data() -> (Matrix, Vec<u8>) {
        let m = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        (m, vec![0, 0, 1, 1])
    }

    #[test]
    fn dataset_digest_sensitive_to_values_and_labels() {
        let (m, labels) = data();
        let base = dataset_digest(&m, &labels);
        let mut v = m.as_slice().to_vec();
        v[3] += 0.5;
        let m2 = Matrix::from_vec(2, 4, v).unwrap();
        assert_ne!(base, dataset_digest(&m2, &labels));
        assert_ne!(base, dataset_digest(&m, &[0, 1, 0, 1]));
        assert_eq!(base, dataset_digest(&m, &labels));
    }

    #[test]
    fn options_digest_tracks_result_relevant_fields_only() {
        let o = PmaxtOptions::default();
        let base = options_digest(&o);
        assert_ne!(base, options_digest(&o.clone().test(TestMethod::Wilcoxon)));
        assert_ne!(base, options_digest(&o.clone().side(Side::Upper)));
        assert_ne!(base, options_digest(&o.clone().seed(1)));
        assert_ne!(base, options_digest(&o.clone().permutations(99)));
        assert_ne!(base, options_digest(&o.clone().na_code(-9.0)));
        assert_ne!(base, options_digest(&o.clone().nonpara(true)));
        // Implementation selection never invalidates.
        assert_eq!(base, options_digest(&o.clone().threads(7).batch(3)));
        assert_eq!(
            base,
            options_digest(&o.clone().kernel(KernelChoice::Scalar))
        );
        assert_eq!(base, options_digest(&o.clone().max_complete(42)));
    }

    #[test]
    fn f32_precision_changes_digests_but_f64_stays_stable() {
        use crate::options::Precision;
        let o = PmaxtOptions::default();
        // Explicit f64 is the default: digests (and cached results keyed by
        // them) are unchanged by the field's introduction.
        assert_eq!(
            options_digest(&o),
            options_digest(&o.clone().precision(Precision::F64))
        );
        assert_eq!(
            stream_digest(&o),
            stream_digest(&o.clone().precision(Precision::F64))
        );
        // f32 produces different statistics, so both digests must move.
        assert_ne!(
            options_digest(&o),
            options_digest(&o.clone().precision(Precision::F32))
        );
        assert_ne!(
            stream_digest(&o),
            stream_digest(&o.clone().precision(Precision::F32))
        );
    }

    #[test]
    fn adaptive_mode_marks_options_digest_but_not_stream_digest() {
        use crate::options::Mode;
        let o = PmaxtOptions::default();
        // Explicit exact is the default: pre-existing digests stay valid.
        assert_eq!(
            options_digest(&o),
            options_digest(&o.clone().mode(Mode::Exact))
        );
        assert_eq!(
            stream_digest(&o),
            stream_digest(&o.clone().mode(Mode::Exact))
        );
        // Adaptive results are not exact results: the checkpoint key moves.
        assert_ne!(
            options_digest(&o),
            options_digest(&o.clone().mode(Mode::Adaptive))
        );
        // But the permutation stream is identical — the cache address must
        // not move, or adaptive runs could never be upgraded to exact.
        assert_eq!(
            stream_digest(&o),
            stream_digest(&o.clone().mode(Mode::Adaptive))
        );
    }

    #[test]
    fn bootstrap_workload_marks_both_digests_but_pmaxt_stays_stable() {
        use crate::options::Workload;
        let o = PmaxtOptions::default();
        // Explicit pmaxt is the default: pre-existing digests stay valid.
        assert_eq!(
            options_digest(&o),
            options_digest(&o.clone().workload(Workload::Pmaxt))
        );
        assert_eq!(
            stream_digest(&o),
            stream_digest(&o.clone().workload(Workload::Pmaxt))
        );
        // Bootstrap consumes a different stream and reports different
        // results: both digests must move.
        assert_ne!(
            options_digest(&o),
            options_digest(&o.clone().workload(Workload::Bootstrap))
        );
        assert_ne!(
            stream_digest(&o),
            stream_digest(&o.clone().workload(Workload::Bootstrap))
        );
    }

    #[test]
    fn permutation_digests_are_pinned_across_refactors() {
        // Literal digests recorded before the resampling-stream refactor.
        // Checkpoints and jobd cache entries on disk are addressed by these
        // values; any drift silently orphans them. If this test fails, the
        // change broke cache/checkpoint compatibility — fix the digest, do
        // not update the constants.
        let o = PmaxtOptions::default();
        assert_eq!(options_digest(&o), 0xca038b58ed148b12);
        assert_eq!(stream_digest(&o), 0x25fadd0c1a183e26);
        let cases: [(PmaxtOptions, u64, u64); 8] = [
            (
                o.clone().test(TestMethod::Wilcoxon),
                0xa283252c49696837,
                0xcd754ac1d5d785ab,
            ),
            (
                o.clone().test(TestMethod::F),
                0xdecdf469881c2c80,
                0xb574aa2f88c9a6a8,
            ),
            (
                o.clone().test(TestMethod::PairT),
                0x6bd83d8e2a36ad8e,
                0x6bfd1786eae19f7a,
            ),
            (
                o.clone().test(TestMethod::BlockF),
                0x10eabc908ec0e679,
                0xfdd956c60831d5d9,
            ),
            (
                o.clone().side(Side::Upper),
                0x28b239e83350d63a,
                0x969a194515253a2e,
            ),
            (
                o.clone().fixed_seed_sampling("n").unwrap(),
                0x9b5953bf08d9dcbb,
                0x4df6d75f35ace1c7,
            ),
            (
                o.clone().permutations(0),
                0xf4766257b496eb23,
                0xf4766257b496eb23,
            ),
            (o.clone().seed(7), 0xff474955d1dd7d7e, 0x011ee843abef0d42),
        ];
        for (opts, opt_d, stream_d) in &cases {
            assert_eq!(options_digest(opts), *opt_d, "{opts:?}");
            assert_eq!(stream_digest(opts), *stream_d, "{opts:?}");
        }
    }

    #[test]
    fn stream_digest_collapses_b_but_separates_complete() {
        let o = PmaxtOptions::default();
        assert_eq!(
            stream_digest(&o.clone().permutations(100)),
            stream_digest(&o.clone().permutations(100_000)),
            "Monte-Carlo runs share one stream"
        );
        assert_ne!(
            stream_digest(&o.clone().permutations(0)),
            stream_digest(&o.clone().permutations(20)),
            "complete enumeration is a different stream"
        );
        assert_ne!(
            stream_digest(&o.clone().permutations(100).seed(1)),
            stream_digest(&o.clone().permutations(100).seed(2))
        );
    }
}
