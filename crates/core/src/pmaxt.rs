//! `pmaxt` — the parallel permutation testing driver (paper §3.2).
//!
//! The interface is identical to the serial [`crate::maxt::serial::mt_maxt`];
//! parallelism distributes the *permutation count* (not the data) over the
//! ranks of an SPMD universe. The run follows the paper's six steps:
//!
//! 1. the master pre-processes and validates the inputs;
//! 2. parameters are broadcast (lengths first in the C code; here a single
//!    typed broadcast);
//! 3. a global reduction synchronizes all ranks after allocation;
//! 4. each rank computes its share of the permutations through the batched
//!    multi-threaded engine ([`crate::maxt::engine`]), whose workers forward
//!    their generators with `skip` (Figure 2 — the first/identity permutation
//!    is handled once, by the master, whose chunk starts at index 0);
//! 5. the master gathers the partial counts by an exact integer sum-reduction
//!    and computes raw and adjusted p-values;
//! 6. buffers are dropped (automatic in Rust).
//!
//! Each of the paper's five profiled sections is timed and reported in
//! [`PmaxtRun::profile`] with the paper's section names.

use std::sync::Arc;

use mpi_sim::{Comm, SectionProfile, SectionTimer, Universe, MASTER};

use crate::error::{Error, Result};
use crate::labels::ClassLabels;
use crate::matrix::Matrix;
use crate::maxt::engine::{self, EngineConfig};
use crate::maxt::{CountAccumulator, MaxTContext, MaxTResult};
use crate::options::PmaxtOptions;
use crate::perm::resolve_permutation_count;
use crate::stats::prepare_matrix;
use crate::wire;

/// Section names as they appear in the paper's Tables I–V.
pub mod sections {
    /// Master-side input validation and option transformation.
    pub const PRE_PROCESSING: &str = "pre-processing";
    /// Broadcast of scalar/string parameters and labels.
    pub const BROADCAST_PARAMETERS: &str = "broadcast parameters";
    /// Broadcast of the dataset and construction of the local working copy.
    pub const CREATE_DATA: &str = "create data";
    /// The permutation loop.
    pub const MAIN_KERNEL: &str = "main kernel";
    /// Count reduction and p-value computation.
    pub const COMPUTE_P_VALUES: &str = "compute p-values";
}

/// Result of a parallel run: the master's result plus its section profile.
#[derive(Debug, Clone)]
pub struct PmaxtRun {
    /// The p-values (bit-identical to the serial `mt_maxt` output).
    pub result: MaxTResult,
    /// Wall-clock time of the five paper sections, measured on the master
    /// (the view the paper's Tables I–V report).
    pub profile: SectionProfile,
    /// Every rank's section profile, in rank order (`rank_profiles[0]` is the
    /// master's). Exposes kernel load balance — the chunks differ by at most
    /// one permutation, so big spreads indicate interference, not imbalance.
    pub rank_profiles: Vec<SectionProfile>,
    /// Number of ranks used.
    pub ranks: usize,
}

impl PmaxtRun {
    /// Ratio of slowest to fastest per-rank main-kernel time (1.0 = perfectly
    /// balanced).
    pub fn kernel_imbalance(&self) -> f64 {
        let times: Vec<f64> = self
            .rank_profiles
            .iter()
            .map(|p| p.seconds(sections::MAIN_KERNEL))
            .collect();
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0, f64::max);
        if min > 0.0 {
            max / min
        } else {
            f64::NAN
        }
    }
}

/// The contiguous chunk of permutation indices assigned to `rank`:
/// `(start, take)`. The `b` indices are split as evenly as possible (chunks
/// differ by at most one); the master's chunk starts at index 0, so the
/// identity permutation is handled exactly once, by the master (Figure 2).
///
/// Returns an error when `size > b` — that distribution would hand at least
/// one rank an empty chunk, which is a resource-allocation mistake, not a
/// degenerate success. Drivers that tolerate surplus ranks (e.g. `pmaxt`)
/// must clamp the active rank count to `min(size, b)` *before* chunking.
pub fn chunk_for_rank(b: u64, size: u64, rank: u64) -> Result<(u64, u64)> {
    if size == 0 {
        return Err(Error::Comm("at least one rank required".into()));
    }
    if rank >= size {
        return Err(Error::Comm(format!(
            "rank {rank} out of range for {size} ranks"
        )));
    }
    if size > b {
        return Err(Error::RanksExceedPermutations { b, ranks: size });
    }
    Ok(crate::maxt::engine::split_evenly(b, size, rank))
}

/// The per-participant split of `b` permutations over `participants` workers,
/// in participant order: `plan[i] = (start, take)`. Tolerant of surplus
/// workers — the active count is clamped to `min(participants, b)` and the
/// surplus get explicit empty spans `(b, 0)` — so a cluster coordinator can
/// hand a roster of any size to any job. Participant 0's span starts at 0
/// (it owns the identity permutation, Figure 2), and spans tile `0..b`
/// contiguously in order, which is what lets a dead participant's span be
/// re-run from a prefix checkpoint.
pub fn span_plan(b: u64, participants: usize) -> Result<Vec<(u64, u64)>> {
    if participants == 0 {
        return Err(Error::Comm("at least one participant required".into()));
    }
    let active = (participants as u64).min(b);
    (0..participants as u64)
        .map(|idx| {
            if idx < active {
                chunk_for_rank(b, active, idx)
            } else {
                Ok((b, 0))
            }
        })
        .collect()
}

/// Everything the master broadcasts in the "broadcast parameters" section.
#[derive(Debug, Clone)]
struct Params {
    rows: usize,
    cols: usize,
    labels: Vec<u8>,
    opts: PmaxtOptions,
    b: u64,
}

impl Params {
    /// Wire form for the parameter broadcast (any [`Comm`] backend).
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        wire::put_u64(&mut buf, self.rows as u64);
        wire::put_u64(&mut buf, self.cols as u64);
        wire::put_u64(&mut buf, self.labels.len() as u64);
        buf.extend_from_slice(&self.labels);
        wire::encode_options(&self.opts, &mut buf);
        wire::put_u64(&mut buf, self.b);
        buf
    }

    fn decode(bytes: &[u8]) -> Result<Params> {
        let mut r = wire::Reader::new(bytes);
        let rows = r.u64()? as usize;
        let cols = r.u64()? as usize;
        let labels = r.bytes()?;
        let opts = wire::decode_options(&mut r)?;
        let b = r.u64()?;
        r.finish()?;
        Ok(Params {
            rows,
            cols,
            labels,
            opts,
            b,
        })
    }
}

/// Run the parallel permutation test on `n_ranks` SPMD ranks.
///
/// Produces results bit-identical to [`crate::maxt::serial::mt_maxt`] for
/// every option combination — the generators are forwarded with `skip` so the
/// union of the per-rank permutation sequences is exactly the serial
/// sequence.
///
/// ```
/// use sprint_core::matrix::Matrix;
/// use sprint_core::options::PmaxtOptions;
/// use sprint_core::pmaxt::pmaxt;
///
/// let data = Matrix::from_vec(1, 6, vec![1.0, 2.0, 1.5, 9.0, 10.0, 9.5]).unwrap();
/// let run = pmaxt(&data, &[0, 0, 0, 1, 1, 1], &PmaxtOptions::default().permutations(0), 2)
///     .unwrap();
/// assert_eq!(run.result.b_used, 20); // complete enumeration of C(6,3)
/// assert!(run.result.adjp[0] < 0.15);
/// ```
pub fn pmaxt(
    data: &Matrix,
    classlabel: &[u8],
    opts: &PmaxtOptions,
    n_ranks: usize,
) -> Result<PmaxtRun> {
    if n_ranks == 0 {
        return Err(Error::Comm("at least one rank required".into()));
    }
    // Validate up front so common errors surface as typed errors rather than
    // rank panics.
    let labels = ClassLabels::new(classlabel.to_vec(), opts.test)?;
    if labels.len() != data.cols() {
        return Err(Error::BadLabels(format!(
            "classlabel length {} does not match {} data columns",
            labels.len(),
            data.cols()
        )));
    }
    resolve_permutation_count(&labels, opts)?;

    let master_input = Arc::new((data.clone(), classlabel.to_vec(), opts.clone()));
    let outputs = Universe::run(n_ranks, move |comm| pmaxt_rank(comm, Some(&master_input)))
        .map_err(|e| Error::Comm(e.to_string()))?;
    let (result, profile, rank_profiles) = outputs
        .into_iter()
        .next()
        .flatten()
        .expect("master rank produces the result");
    Ok(PmaxtRun {
        result,
        profile,
        rank_profiles,
        ranks: n_ranks,
    })
}

/// The SPMD body executed by every rank (paper §3.2, Steps 1–6).
///
/// `master_input` is the `(data, classlabel, options)` triple and must be
/// `Some` on the master rank; workers may pass `None` — they receive
/// everything through the broadcasts. Exposed so alternative harnesses (the
/// `sprint` framework layer) can dispatch the same body over their own
/// communicator.
///
/// Generic over the transport: the body speaks only [`Comm`], so the same
/// code runs over in-process channels (`Universe`) or real TCP
/// (`mpi_sim::TcpFleet`) — broadcast payloads travel as explicit byte
/// encodings (see [`crate::wire`]) whose float fields are bit patterns, so
/// results stay bitwise-identical across backends.
///
/// Returns `Some((result, master profile, all rank profiles))` on the
/// master, `None` on workers.
pub fn pmaxt_rank<C: Comm>(
    comm: &C,
    master_input: Option<&Arc<(Matrix, Vec<u8>, PmaxtOptions)>>,
) -> Option<(MaxTResult, SectionProfile, Vec<SectionProfile>)> {
    let mut timer = SectionTimer::new();

    // Step 1 — pre-processing (master only): canonicalize NA, validate, and
    // resolve the permutation count.
    let master_params = timer.time(sections::PRE_PROCESSING, || {
        if !comm.is_master() {
            return None;
        }
        let (data, classlabel, opts) =
            &**master_input.expect("master rank must receive the input triple");
        let labels = ClassLabels::new(classlabel.clone(), opts.test).expect("validated by caller");
        let b = resolve_permutation_count(&labels, opts).expect("validated by caller");
        Some(Params {
            rows: data.rows(),
            cols: data.cols(),
            labels: classlabel.clone(),
            opts: opts.clone(),
            b,
        })
    });

    // Step 2 — broadcast parameters.
    let params = timer.time(sections::BROADCAST_PARAMETERS, || {
        let payload = comm
            .bcast_bytes(MASTER, master_params.as_ref().map(Params::encode))
            .expect("param broadcast");
        Params::decode(&payload).expect("param decode")
    });

    // Step 2/3 — create data: broadcast the (NA-canonicalized) matrix and
    // build the local prepared copy.
    let (prepared, labels) = timer.time(sections::CREATE_DATA, || {
        let payload = if comm.is_master() {
            let (data, _, opts) =
                &**master_input.expect("master rank must receive the input triple");
            let canonical = match opts.na {
                Some(code) => Matrix::from_vec_with_na(
                    data.rows(),
                    data.cols(),
                    data.as_slice().to_vec(),
                    code,
                )
                .expect("validated dimensions"),
                None => data.clone(),
            };
            let mut buf = Vec::new();
            wire::encode_f64_vec(&canonical.into_vec(), &mut buf);
            Some(buf)
        } else {
            None
        };
        let bytes = comm.bcast_bytes(MASTER, payload).expect("data broadcast");
        let raw = wire::decode_f64_vec(&mut wire::Reader::new(&bytes)).expect("data decode");
        let local = Matrix::from_vec(params.rows, params.cols, raw).expect("validated dims");
        let labels =
            ClassLabels::new(params.labels.clone(), params.opts.test).expect("validated by master");
        let prepared = prepare_matrix(&local, params.opts.test, params.opts.nonpara).into_owned();
        (prepared, labels)
    });

    // Step 3 — global synchronization after allocation (the paper uses a
    // trivial allreduce; a barrier is the transport-generic equivalent).
    comm.barrier().expect("sync barrier");

    // Step 4 — main kernel: each rank processes its chunk of permutations
    // through the batched multi-threaded engine. Ranks beyond the number of
    // permutations contribute an (explicitly) empty accumulator — the strict
    // `chunk_for_rank` is only consulted for active ranks.
    let ctx = MaxTContext::with_scorer(
        &prepared,
        &labels,
        params.opts.test,
        params.opts.side,
        params.opts.kernel,
        params.opts.precision,
    );
    let local_counts = timer.time(sections::MAIN_KERNEL, || {
        let active = (comm.size() as u64).min(params.b);
        let rank = comm.rank() as u64;
        if rank >= active {
            return CountAccumulator::new(params.rows);
        }
        let (start, take) =
            chunk_for_rank(params.b, active, rank).expect("active ranks have chunks");
        let cfg = EngineConfig::resolve(&params.opts);
        let run = engine::accumulate_chunk(&ctx, &labels, &params.opts, params.b, start, take, cfg)
            .expect("engine chunk");
        run.counts
    });

    // Step 5 — gather the partial observations and compute the p-values.
    let result = timer.time(sections::COMPUTE_P_VALUES, || {
        let reduced = comm
            .reduce_sum_u64(MASTER, local_counts.to_flat())
            .expect("count reduction");
        reduced.map(|flat| {
            let total = CountAccumulator::from_flat(&flat, params.rows);
            debug_assert_eq!(total.n_perm, params.b);
            ctx.finalize(&total)
        })
    });

    // Step 6 — free memory: automatic. Additionally gather every rank's
    // profile so the master can report load balance.
    let profile = timer.finish();
    let all_profiles = comm
        .gather_bytes(MASTER, wire::encode_profile(&profile))
        .expect("profile gather");
    result.map(|r| {
        (
            r,
            profile,
            all_profiles
                .expect("master holds the gathered profiles")
                .iter()
                .map(|bytes| wire::decode_profile(bytes).expect("profile decode"))
                .collect(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxt::serial::mt_maxt;
    use crate::options::{SamplingMode, TestMethod};
    use crate::side::Side;

    fn test_data() -> (Matrix, Vec<u8>) {
        let data = Matrix::from_vec(
            4,
            8,
            vec![
                1.0,
                2.0,
                1.5,
                2.5,
                9.0,
                10.0,
                9.5,
                10.5, // strong signal
                5.0,
                4.0,
                6.0,
                5.5,
                4.5,
                5.2,
                5.8,
                4.9, // flat
                2.0,
                8.0,
                3.0,
                7.0,
                2.5,
                7.5,
                3.5,
                6.5, // noisy
                1.0,
                f64::NAN,
                2.0,
                1.5,
                3.0,
                4.0,
                f64::NAN,
                3.5, // missing cells
            ],
        )
        .unwrap();
        (data, vec![0, 0, 0, 0, 1, 1, 1, 1])
    }

    #[test]
    fn chunks_cover_everything_exactly_once() {
        for b in [1u64, 2, 5, 23, 150] {
            for size in [1u64, 2, 3, 4, 7, 8] {
                if size > b {
                    continue; // strict: no silent empty chunks, see below
                }
                let mut covered = vec![0u32; b as usize];
                for rank in 0..size {
                    let (start, take) = chunk_for_rank(b, size, rank).unwrap();
                    assert!(take >= 1, "b={b} size={size} rank={rank}: empty chunk");
                    for i in start..start + take {
                        covered[i as usize] += 1;
                    }
                }
                assert!(
                    covered.iter().all(|&c| c == 1),
                    "b={b} size={size}: {covered:?}"
                );
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        // Paper: "divides the permutation count into equal chunks".
        let b = 150_001u64;
        let size = 7u64;
        let takes: Vec<u64> = (0..size)
            .map(|r| chunk_for_rank(b, size, r).unwrap().1)
            .collect();
        let min = *takes.iter().min().unwrap();
        let max = *takes.iter().max().unwrap();
        assert!(max - min <= 1, "chunks differ by at most one: {takes:?}");
    }

    #[test]
    fn master_handles_identity() {
        let (start, take) = chunk_for_rank(23, 3, 0).unwrap();
        assert_eq!(start, 0);
        assert!(take >= 1);
        for rank in 1..3 {
            let (s, _) = chunk_for_rank(23, 3, rank).unwrap();
            assert!(s >= 1, "workers skip the identity");
        }
    }

    #[test]
    fn oversubscribed_distribution_is_an_explicit_error() {
        // size > b used to return silent empty chunks; now every degenerate
        // request is a typed error.
        for (b, size) in [(1u64, 2u64), (3, 8), (0, 1), (5, 100)] {
            for rank in 0..size {
                assert!(
                    chunk_for_rank(b, size, rank).is_err(),
                    "b={b} size={size} rank={rank} should be rejected"
                );
            }
        }
        assert!(
            matches!(
                chunk_for_rank(3, 8, 0),
                Err(Error::RanksExceedPermutations { b: 3, ranks: 8 })
            ),
            "oversubscription is the typed variant, not a generic Comm error"
        );
        assert!(chunk_for_rank(10, 0, 0).is_err(), "zero ranks rejected");
        assert!(chunk_for_rank(10, 3, 3).is_err(), "rank out of range");
        assert!(chunk_for_rank(10, 3, 7).is_err(), "rank out of range");
    }

    #[test]
    fn parallel_equals_serial_default_options() {
        let (data, labels) = test_data();
        let opts = PmaxtOptions::default().permutations(60);
        let serial = mt_maxt(&data, &labels, &opts).unwrap();
        for ranks in [1, 2, 3, 4, 7] {
            let par = pmaxt(&data, &labels, &opts, ranks).unwrap();
            assert_eq!(par.result, serial, "ranks={ranks}");
            assert_eq!(par.ranks, ranks);
        }
    }

    #[test]
    fn parallel_equals_serial_every_option_combination() {
        let (data, two_labels) = test_data();
        let f_labels = vec![0u8, 0, 1, 1, 2, 2, 2, 2];
        let pair_labels = vec![0u8, 1, 0, 1, 1, 0, 0, 1];
        let block_labels = vec![0u8, 1, 1, 0, 0, 1, 1, 0];
        for method in TestMethod::ALL {
            let labels: &[u8] = match method {
                TestMethod::F => &f_labels,
                TestMethod::PairT => &pair_labels,
                TestMethod::BlockF => &block_labels,
                _ => &two_labels,
            };
            for side in [Side::Abs, Side::Upper, Side::Lower] {
                for sampling in [SamplingMode::FixedSeedOnTheFly, SamplingMode::Stored] {
                    for b in [0u64, 37] {
                        let opts = PmaxtOptions {
                            test: method,
                            side,
                            sampling,
                            b,
                            ..PmaxtOptions::default()
                        };
                        let serial = mt_maxt(&data, labels, &opts).unwrap();
                        for ranks in [2, 3] {
                            let par = pmaxt(&data, labels, &opts, ranks).unwrap();
                            assert_eq!(
                                par.result, serial,
                                "method={method:?} side={side:?} sampling={sampling:?} b={b} ranks={ranks}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn profile_contains_all_five_sections() {
        let (data, labels) = test_data();
        let opts = PmaxtOptions::default().permutations(40);
        let run = pmaxt(&data, &labels, &opts, 2).unwrap();
        let names: Vec<String> = run.profile.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(
            names,
            vec![
                sections::PRE_PROCESSING,
                sections::BROADCAST_PARAMETERS,
                sections::CREATE_DATA,
                sections::MAIN_KERNEL,
                sections::COMPUTE_P_VALUES,
            ]
        );
        assert!(run.profile.get(sections::MAIN_KERNEL) > std::time::Duration::ZERO);
    }

    #[test]
    fn more_ranks_than_permutations_still_correct() {
        // b < size: surplus ranks contribute empty accumulators rather than
        // consulting the (now strict) chunk_for_rank; the run must still be
        // bit-identical to serial for every degenerate combination.
        let (data, labels) = test_data();
        for (b, ranks) in [(3u64, 8usize), (1, 2), (1, 5), (2, 3), (5, 6), (7, 12)] {
            let opts = PmaxtOptions::default().permutations(b);
            let serial = mt_maxt(&data, &labels, &opts).unwrap();
            let par = pmaxt(&data, &labels, &opts, ranks).unwrap();
            assert_eq!(par.result, serial, "b={b} ranks={ranks}");
            assert_eq!(par.result.b_used, b);
        }
    }

    #[test]
    fn b_equal_one_only_identity() {
        let (data, labels) = test_data();
        let opts = PmaxtOptions::default().permutations(1);
        let par = pmaxt(&data, &labels, &opts, 3).unwrap();
        // Only the identity: all computable p-values are exactly 1.
        for g in 0..3 {
            assert_eq!(par.result.rawp[g], 1.0);
            assert_eq!(par.result.adjp[g], 1.0);
        }
        assert_eq!(par.result.b_used, 1);
    }

    #[test]
    fn invalid_inputs_are_typed_errors() {
        let (data, _) = test_data();
        let opts = PmaxtOptions::default();
        assert!(matches!(
            pmaxt(&data, &[0, 1], &opts, 2),
            Err(Error::BadLabels(_))
        ));
        assert!(matches!(
            pmaxt(&data, &[0; 8], &opts, 2),
            Err(Error::BadLabels(_))
        ));
        assert!(pmaxt(&data, &[0, 0, 0, 0, 1, 1, 1, 1], &opts, 0).is_err());
    }

    #[test]
    fn nan_gene_propagates_in_parallel() {
        let (data, labels) = test_data();
        // Make gene 1 constant → NaN statistic.
        let mut v = data.as_slice().to_vec();
        for c in 0..8 {
            v[8 + c] = 3.3;
        }
        let data = Matrix::from_vec(4, 8, v).unwrap();
        let opts = PmaxtOptions::default().permutations(30);
        let par = pmaxt(&data, &labels, &opts, 3).unwrap();
        assert!(par.result.rawp[1].is_nan());
        assert!(par.result.adjp[1].is_nan());
        assert!(par.result.rawp[0].is_finite());
    }
}

#[cfg(test)]
mod rank_profile_tests {
    use super::*;

    #[test]
    fn every_rank_reports_a_profile() {
        let data = Matrix::from_vec(
            2,
            6,
            vec![1.0, 2.0, 1.5, 9.0, 10.0, 9.5, 5.0, 4.0, 6.0, 5.5, 4.5, 5.2],
        )
        .unwrap();
        let opts = PmaxtOptions::default().permutations(50);
        let run = pmaxt(&data, &[0, 0, 0, 1, 1, 1], &opts, 4).unwrap();
        assert_eq!(run.rank_profiles.len(), 4);
        // Master's entry matches the top-level profile.
        assert_eq!(
            run.rank_profiles[0].seconds(sections::MAIN_KERNEL),
            run.profile.seconds(sections::MAIN_KERNEL)
        );
        // Every rank ran the kernel.
        for (r, p) in run.rank_profiles.iter().enumerate() {
            assert!(
                p.get(sections::MAIN_KERNEL) > std::time::Duration::ZERO,
                "rank {r} kernel not timed"
            );
        }
        let imb = run.kernel_imbalance();
        assert!(imb.is_nan() || imb >= 1.0);
    }

    #[test]
    fn single_rank_profile_list_has_one_entry() {
        let data = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let opts = PmaxtOptions::default().permutations(10);
        let run = pmaxt(&data, &[0, 0, 1, 1], &opts, 1).unwrap();
        assert_eq!(run.rank_profiles.len(), 1);
        assert_eq!(run.ranks, 1);
    }
}
