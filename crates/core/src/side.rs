//! Rejection-region side (`side = "abs" | "upper" | "lower"`).

use crate::error::{Error, Result};

/// Which tail of the permutation distribution counts as extreme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Side {
    /// Absolute difference — two-sided test (R default `"abs"`).
    #[default]
    Abs,
    /// Upper tail — reject for large statistics (`"upper"`).
    Upper,
    /// Lower tail — reject for small statistics (`"lower"`).
    Lower,
}

impl Side {
    /// Parse the R string form.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "abs" => Ok(Side::Abs),
            "upper" => Ok(Side::Upper),
            "lower" => Ok(Side::Lower),
            other => Err(Error::BadOption {
                param: "side",
                value: other.to_string(),
            }),
        }
    }

    /// The R string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Side::Abs => "abs",
            Side::Upper => "upper",
            Side::Lower => "lower",
        }
    }

    /// Map a raw statistic to an *extremeness score*: larger score = more
    /// extreme in the chosen rejection direction. `NaN` statistics (not
    /// computable, e.g. all values missing) map to `-inf`, i.e. never extreme,
    /// so they can never inflate a count — the C code's handling of NA
    /// statistics.
    #[inline]
    pub fn score(self, stat: f64) -> f64 {
        if stat.is_nan() {
            return f64::NEG_INFINITY;
        }
        match self {
            Side::Abs => stat.abs(),
            Side::Upper => stat,
            Side::Lower => -stat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in ["abs", "upper", "lower"] {
            assert_eq!(Side::parse(s).unwrap().as_str(), s);
        }
        assert!(Side::parse("two-sided").is_err());
        assert!(
            Side::parse("ABS").is_err(),
            "parsing is case-sensitive like R"
        );
    }

    #[test]
    fn default_is_abs() {
        assert_eq!(Side::default(), Side::Abs);
    }

    #[test]
    fn scores_order_extremeness() {
        // Abs: both tails extreme.
        assert_eq!(Side::Abs.score(-3.0), 3.0);
        assert_eq!(Side::Abs.score(3.0), 3.0);
        // Upper: only positive extreme.
        assert!(Side::Upper.score(3.0) > Side::Upper.score(-3.0));
        // Lower: only negative extreme.
        assert!(Side::Lower.score(-3.0) > Side::Lower.score(3.0));
    }

    #[test]
    fn nan_is_never_extreme() {
        for side in [Side::Abs, Side::Upper, Side::Lower] {
            assert_eq!(side.score(f64::NAN), f64::NEG_INFINITY);
            assert!(side.score(f64::NAN) < side.score(-1e300));
        }
    }
}
