//! Generators for the shuffle family (`t`, `t.equalvar`, `wilcoxon`, `f`):
//! label arrangements are permutations of the label multiset.

use super::multiset;
use super::PermutationGenerator;
use crate::rng::{mix_seed, Xoshiro256};

/// Beyond this forward gap the complete generator jumps by unranking instead
/// of stepping `next_permutation`.
const UNRANK_THRESHOLD: u128 = 64;

/// Monte-Carlo shuffles with *fixed-seed sampling* (`fixed.seed.sampling =
/// "y"`): permutation `b` is a Fisher–Yates shuffle driven by an RNG seeded
/// from `mix(seed, b)`. Index 0 is the observed labelling. `skip` is O(1) —
/// the property that makes the parallel distribution of permutations cheap.
#[derive(Debug, Clone)]
pub struct ShuffleFixedSeed {
    base: Vec<u8>,
    seed: u64,
    cursor: u64,
    len: u64,
}

impl ShuffleFixedSeed {
    /// `base` is the observed labelling; `len` the total sequence length
    /// (identity included); `seed` the run seed.
    pub fn new(base: Vec<u8>, len: u64, seed: u64) -> Self {
        ShuffleFixedSeed {
            base,
            seed,
            cursor: 0,
            len,
        }
    }
}

impl PermutationGenerator for ShuffleFixedSeed {
    fn len(&self) -> u64 {
        self.len
    }

    fn position(&self) -> u64 {
        self.cursor
    }

    fn next_into(&mut self, out: &mut [u8]) -> bool {
        if self.cursor >= self.len {
            return false;
        }
        out.copy_from_slice(&self.base);
        if self.cursor > 0 {
            let mut rng = Xoshiro256::seed_from(mix_seed(self.seed, self.cursor));
            rng.shuffle(out);
        }
        self.cursor += 1;
        true
    }

    fn skip(&mut self, n: u64) {
        self.cursor = self.cursor.saturating_add(n).min(self.len);
    }
}

/// Monte-Carlo shuffles from a single sequential stream
/// (`fixed.seed.sampling = "n"`). Each non-identity step re-shuffles a
/// persistent working vector, consuming exactly `n−1` RNG draws, so `skip`
/// can replay deterministically by performing the same draws.
#[derive(Debug, Clone)]
pub struct ShuffleSequential {
    work: Vec<u8>,
    rng: Xoshiro256,
    cursor: u64,
    len: u64,
}

impl ShuffleSequential {
    /// `base` is the observed labelling (emitted at index 0).
    pub fn new(base: Vec<u8>, len: u64, seed: u64) -> Self {
        ShuffleSequential {
            work: base,
            rng: Xoshiro256::seed_from(seed),
            cursor: 0,
            len,
        }
    }

    #[inline]
    fn advance_one(&mut self) {
        if self.cursor > 0 {
            let work = &mut self.work;
            // Fisher–Yates in place; the stream state carries across
            // permutations.
            for i in (1..work.len()).rev() {
                let j = self.rng.next_below(i as u64 + 1) as usize;
                work.swap(i, j);
            }
        }
        self.cursor += 1;
    }
}

impl PermutationGenerator for ShuffleSequential {
    fn len(&self) -> u64 {
        self.len
    }

    fn position(&self) -> u64 {
        self.cursor
    }

    fn next_into(&mut self, out: &mut [u8]) -> bool {
        if self.cursor >= self.len {
            return false;
        }
        self.advance_one();
        out.copy_from_slice(&self.work);
        true
    }

    fn skip(&mut self, n: u64) {
        let target = self.cursor.saturating_add(n).min(self.len);
        while self.cursor < target {
            self.advance_one();
        }
    }
}

/// Complete enumeration of all distinct label arrangements, with the observed
/// labelling first.
///
/// Sequence: index 0 is the observed arrangement; indices `1..total` are the
/// remaining arrangements in lexicographic order (the observed one's lex slot
/// is skipped so it appears exactly once). Iteration is amortized O(n) per
/// step via `next_permutation`; `skip` jumps by multiset unranking.
#[derive(Debug, Clone)]
pub struct CompleteShuffle {
    observed: Vec<u8>,
    observed_rank: u128,
    counts: Vec<usize>,
    lex_state: Vec<u8>,
    lex_idx: u128,
    cursor: u64,
    len: u64,
}

impl CompleteShuffle {
    /// `observed` is the observed labelling; `len` must equal the validated
    /// complete count (see [`super::count::multiset_count`]).
    pub fn new(observed: Vec<u8>, len: u64) -> Self {
        let k = observed.iter().copied().max().map_or(1, |m| m as usize + 1);
        let mut counts = vec![0usize; k];
        for &v in &observed {
            counts[v as usize] += 1;
        }
        let observed_rank =
            multiset::rank(&observed, k).expect("validated complete count cannot overflow");
        let mut lex_state = observed.clone();
        lex_state.sort_unstable();
        CompleteShuffle {
            observed,
            observed_rank,
            counts,
            lex_state,
            lex_idx: 0,
            cursor: 0,
            len,
        }
    }

    /// Map a sequence index (≥1) to a lexicographic index, skipping the
    /// observed arrangement's slot.
    #[inline]
    fn lex_target(&self, seq_idx: u64) -> u128 {
        let j = (seq_idx - 1) as u128;
        if j < self.observed_rank {
            j
        } else {
            j + 1
        }
    }

    fn advance_lex_to(&mut self, target: u128) {
        if target < self.lex_idx || target - self.lex_idx > UNRANK_THRESHOLD {
            multiset::unrank(&self.counts, target, &mut self.lex_state);
            self.lex_idx = target;
            return;
        }
        while self.lex_idx < target {
            multiset::next_permutation(&mut self.lex_state);
            self.lex_idx += 1;
        }
    }
}

impl PermutationGenerator for CompleteShuffle {
    fn len(&self) -> u64 {
        self.len
    }

    fn position(&self) -> u64 {
        self.cursor
    }

    fn next_into(&mut self, out: &mut [u8]) -> bool {
        if self.cursor >= self.len {
            return false;
        }
        if self.cursor == 0 {
            out.copy_from_slice(&self.observed);
        } else {
            let target = self.lex_target(self.cursor);
            self.advance_lex_to(target);
            out.copy_from_slice(&self.lex_state);
        }
        self.cursor += 1;
        true
    }

    fn skip(&mut self, n: u64) {
        self.cursor = self.cursor.saturating_add(n).min(self.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::count::multiset_count;
    use crate::perm::test_support::{collect_all, collect_range};

    #[test]
    fn fixed_seed_first_is_identity() {
        let base = vec![0, 0, 1, 1];
        let mut g = ShuffleFixedSeed::new(base.clone(), 10, 42);
        let mut out = vec![0u8; 4];
        assert!(g.next_into(&mut out));
        assert_eq!(out, base);
    }

    #[test]
    fn fixed_seed_skip_equals_iterate() {
        let base = vec![0u8, 0, 0, 1, 1, 1, 1];
        let all = collect_all(&mut ShuffleFixedSeed::new(base.clone(), 20, 7), 7);
        for start in [0u64, 1, 5, 19] {
            let mut g = ShuffleFixedSeed::new(base.clone(), 20, 7);
            g.skip(start);
            let rest = collect_all(&mut g, 7);
            assert_eq!(rest, all[start as usize..], "start={start}");
        }
    }

    #[test]
    fn fixed_seed_preserves_multiset() {
        let base = vec![0u8, 0, 1, 1, 1];
        for labels in collect_all(&mut ShuffleFixedSeed::new(base.clone(), 50, 3), 5) {
            let mut s = labels.clone();
            s.sort_unstable();
            assert_eq!(s, vec![0, 0, 1, 1, 1]);
        }
    }

    #[test]
    fn fixed_seed_different_indices_differ() {
        // With 76 columns the chance of two equal shuffles is negligible;
        // equality would indicate seeding reuse.
        let base: Vec<u8> = (0..76).map(|i| (i % 2) as u8).collect();
        let perms = collect_all(&mut ShuffleFixedSeed::new(base, 5, 1), 76);
        for i in 1..perms.len() {
            for j in (i + 1)..perms.len() {
                assert_ne!(perms[i], perms[j], "i={i} j={j}");
            }
        }
    }

    #[test]
    fn sequential_skip_equals_iterate() {
        let base = vec![0u8, 0, 1, 1, 1];
        let all = collect_all(&mut ShuffleSequential::new(base.clone(), 15, 9), 5);
        assert_eq!(all[0], base, "identity first");
        for start in [0u64, 1, 3, 14] {
            let mut g = ShuffleSequential::new(base.clone(), 15, 9);
            g.skip(start);
            let rest = collect_all(&mut g, 5);
            assert_eq!(rest, all[start as usize..], "start={start}");
        }
    }

    #[test]
    fn complete_visits_every_arrangement_once() {
        let observed = vec![1u8, 0, 1, 0]; // deliberately not lex-first
        let total = multiset_count(&[2, 2]).unwrap() as u64;
        let mut g = CompleteShuffle::new(observed.clone(), total);
        let all = collect_all(&mut g, 4);
        assert_eq!(all.len(), total as usize);
        assert_eq!(all[0], observed);
        let mut uniq = all.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), total as usize, "no duplicates");
    }

    #[test]
    fn complete_skip_equals_iterate() {
        let observed = vec![2u8, 0, 1, 1, 0];
        let counts = [2usize, 2, 1];
        let total = multiset_count(&counts).unwrap() as u64;
        let all = collect_all(&mut CompleteShuffle::new(observed.clone(), total), 5);
        for start in 0..total {
            let mut g = CompleteShuffle::new(observed.clone(), total);
            g.skip(start);
            assert_eq!(
                collect_range(&mut g, 5, 3),
                all[start as usize..(start + 3).min(total) as usize],
                "start={start}"
            );
        }
    }

    #[test]
    fn complete_skip_large_uses_unrank() {
        // 12 columns, C(12,6) = 924 > UNRANK_THRESHOLD so jumping must
        // unrank; verify against stepping.
        let observed: Vec<u8> = (0..12).map(|i| (i % 2) as u8).collect();
        let total = multiset_count(&[6, 6]).unwrap() as u64;
        let all = collect_all(&mut CompleteShuffle::new(observed.clone(), total), 12);
        let mut g = CompleteShuffle::new(observed.clone(), total);
        g.skip(800);
        assert_eq!(collect_range(&mut g, 12, 2), all[800..802]);
    }

    #[test]
    fn generators_report_len_and_position() {
        let mut g = ShuffleFixedSeed::new(vec![0, 1], 5, 0);
        assert_eq!(g.len(), 5);
        assert_eq!(g.position(), 0);
        let mut out = [0u8; 2];
        g.next_into(&mut out);
        assert_eq!(g.position(), 1);
        g.skip(100);
        assert_eq!(g.position(), 5);
        assert!(!g.next_into(&mut out));
    }
}
