//! Lexicographic enumeration, ranking and unranking of multiset
//! permutations.
//!
//! A label arrangement for the shuffle-family tests (`t`, `t.equalvar`,
//! `wilcoxon`, `f`) is a permutation of the label *multiset* (e.g. 38 zeros
//! and 38 ones). Complete enumeration walks all distinct arrangements in
//! lexicographic order; **unranking** jumps straight to the arrangement with
//! a given lex index, which is what lets a parallel rank forward its
//! generator to its chunk in O(n²k) instead of replaying billions of steps
//! (paper §3.2: "the generators need to be forwarded to the appropriate
//! permutation").

use super::count::multiset_count;

/// Advance `a` to the next lexicographic arrangement. Returns `false` (and
/// leaves `a` as the lex-first arrangement, i.e. sorted) when `a` was the
/// lex-last arrangement.
pub fn next_permutation(a: &mut [u8]) -> bool {
    if a.len() < 2 {
        return false;
    }
    // Standard algorithm: find rightmost ascent, swap with successor, reverse
    // the suffix.
    let mut i = a.len() - 1;
    while i > 0 && a[i - 1] >= a[i] {
        i -= 1;
    }
    if i == 0 {
        a.reverse();
        return false;
    }
    let pivot = i - 1;
    let mut j = a.len() - 1;
    while a[j] <= a[pivot] {
        j -= 1;
    }
    a.swap(pivot, j);
    a[i..].reverse();
    true
}

/// Lexicographic rank of arrangement `a` among all distinct arrangements of
/// its multiset. `None` if the count overflows u128 (cannot happen for
/// arrangements whose total count was already validated).
pub fn rank(a: &[u8], k: usize) -> Option<u128> {
    let mut counts = vec![0usize; k];
    for &v in a {
        counts[v as usize] += 1;
    }
    let mut r: u128 = 0;
    for (i, &v) in a.iter().enumerate() {
        for c in 0..v as usize {
            if counts[c] > 0 {
                counts[c] -= 1;
                r = r.checked_add(multiset_count(&counts)?)?;
                counts[c] += 1;
            }
        }
        counts[v as usize] -= 1;
        let _ = i;
    }
    Some(r)
}

/// Write the arrangement with lexicographic rank `r` of the multiset given by
/// `counts` into `out`. Panics if `r` is out of range (caller validates
/// against [`multiset_count`]).
pub fn unrank(counts: &[usize], mut r: u128, out: &mut [u8]) {
    let mut counts = counts.to_vec();
    let n: usize = counts.iter().sum();
    assert_eq!(out.len(), n, "output length must match multiset size");
    for slot in out.iter_mut() {
        let mut placed = false;
        for c in 0..counts.len() {
            if counts[c] == 0 {
                continue;
            }
            counts[c] -= 1;
            let below = multiset_count(&counts).expect("validated multiset count");
            if r < below {
                *slot = c as u8;
                placed = true;
                break;
            }
            r -= below;
            counts[c] += 1;
        }
        assert!(placed, "rank out of range for multiset");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::count::multiset_count;

    fn all_arrangements(start: &[u8]) -> Vec<Vec<u8>> {
        let mut a = start.to_vec();
        a.sort_unstable();
        let mut out = vec![a.clone()];
        while next_permutation(&mut a) {
            out.push(a.clone());
        }
        out
    }

    #[test]
    fn enumeration_is_complete_and_lex_sorted() {
        let arr = all_arrangements(&[0, 0, 1, 1]);
        assert_eq!(arr.len(), 6); // C(4,2)
        let mut sorted = arr.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, arr, "lex order, no duplicates");
    }

    #[test]
    fn enumeration_three_classes() {
        let arr = all_arrangements(&[0, 1, 1, 2]);
        assert_eq!(arr.len(), 12); // 4!/(1!2!1!)
        assert_eq!(arr[0], vec![0, 1, 1, 2]);
        assert_eq!(arr[11], vec![2, 1, 1, 0]);
    }

    #[test]
    fn exhausted_enumeration_wraps_to_first() {
        let mut a = vec![1, 1, 0, 0]; // lex-last of {0,0,1,1}
        assert!(!next_permutation(&mut a));
        assert_eq!(a, vec![0, 0, 1, 1]);
    }

    #[test]
    fn rank_agrees_with_enumeration_order() {
        for start in [vec![0u8, 0, 1, 1], vec![0, 1, 1, 2], vec![0, 0, 0, 1, 2, 2]] {
            let k = (*start.iter().max().unwrap() as usize) + 1;
            for (i, a) in all_arrangements(&start).iter().enumerate() {
                assert_eq!(rank(a, k), Some(i as u128), "arrangement {a:?}");
            }
        }
    }

    #[test]
    fn unrank_inverts_rank() {
        let start = vec![0u8, 1, 1, 2, 2];
        let k = 3;
        let mut counts = vec![0usize; k];
        for &v in &start {
            counts[v as usize] += 1;
        }
        let total = multiset_count(&counts).unwrap();
        let mut out = vec![0u8; start.len()];
        for r in 0..total {
            unrank(&counts, r, &mut out);
            assert_eq!(rank(&out, k), Some(r));
        }
    }

    #[test]
    fn unrank_matches_enumeration() {
        let arrangements = all_arrangements(&[0u8, 0, 1, 1, 1]);
        let counts = [2usize, 3];
        let mut out = vec![0u8; 5];
        for (i, a) in arrangements.iter().enumerate() {
            unrank(&counts, i as u128, &mut out);
            assert_eq!(&out, a);
        }
    }

    #[test]
    fn singleton_and_empty_edge_cases() {
        let mut one = [0u8];
        assert!(!next_permutation(&mut one));
        let mut empty: [u8; 0] = [];
        assert!(!next_permutation(&mut empty));
        assert_eq!(rank(&[], 1), Some(0));
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn unrank_out_of_range_panics() {
        let mut out = [0u8; 2];
        unrank(&[1, 1], 2, &mut out); // only 2 arrangements: ranks 0, 1
    }

    #[test]
    fn large_multiset_rank_unrank_round_trip() {
        // Spot-check on the paper's scale: 76 columns, two classes.
        let counts = [38usize, 38];
        let total = multiset_count(&counts).unwrap();
        let mut out = vec![0u8; 76];
        for r in [0u128, 1, 12345, total / 2, total - 1] {
            unrank(&counts, r, &mut out);
            assert_eq!(rank(&out, 2), Some(r));
        }
    }
}
