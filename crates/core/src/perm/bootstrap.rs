//! Bootstrap draw streams: sample-with-replacement index vectors with the
//! same deterministic, skip-ahead contract as the permutation generators.
//!
//! A draw of width `n` is a vector of *column indices*: slot `i` holds the
//! index of the source sample column resampled into position `i`. Index 0 of
//! every stream is the identity draw `0, 1, …, n−1` — the observed dataset —
//! mirroring the "first permutation is the observed labelling" convention of
//! the permutation families, so the engine's span arithmetic (master counts
//! index 0, workers skip into the tail) carries over unchanged.
//!
//! Two implementations mirror the shuffle family split:
//!
//! - [`BootstrapFixedSeed`]: draw `j` is generated from a fresh
//!   `Xoshiro256::seed_from(mix_seed(seed, j))`, so `skip` is O(1) — the
//!   sharding/checkpoint workhorse;
//! - [`BootstrapSequential`]: one persistent RNG advanced draw by draw
//!   (`skip` replays), the stored-mode source that
//!   [`StoredMatrix`](super::stored::StoredMatrix) materializes.
//!
//! Draw slots are `u8`, which caps the sample count at 256 columns; the
//! arrangement layer enforces this before construction.

use super::ResamplingStream;
use crate::rng::{mix_seed, Xoshiro256};

/// Hard ceiling on the sample count for bootstrap draws: indices are
/// transported in the same `u8` arrangement buffers as class labels.
pub const MAX_BOOTSTRAP_COLS: usize = 256;

fn identity_into(out: &mut [u8]) {
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = i as u8;
    }
}

fn draw_into(rng: &mut Xoshiro256, out: &mut [u8]) {
    let n = out.len() as u64;
    for slot in out.iter_mut() {
        *slot = rng.next_below(n) as u8;
    }
}

/// Fixed-seed bootstrap stream: replicate `j` depends only on
/// `(seed, j, n)`, never on the draws before it, giving O(1) `skip`.
#[derive(Debug, Clone)]
pub struct BootstrapFixedSeed {
    n: usize,
    seed: u64,
    cursor: u64,
    len: u64,
}

impl BootstrapFixedSeed {
    /// Stream of `len` draws (identity at index 0) over `n` sample columns.
    ///
    /// # Panics
    /// If `n` is zero, exceeds [`MAX_BOOTSTRAP_COLS`], or `len` is zero.
    pub fn new(n: usize, len: u64, seed: u64) -> Self {
        assert!(
            n > 0 && n <= MAX_BOOTSTRAP_COLS,
            "bootstrap width {n} out of range"
        );
        assert!(len > 0, "bootstrap stream must include the identity draw");
        BootstrapFixedSeed {
            n,
            seed,
            cursor: 0,
            len,
        }
    }
}

impl ResamplingStream for BootstrapFixedSeed {
    fn len(&self) -> u64 {
        self.len
    }

    fn position(&self) -> u64 {
        self.cursor
    }

    fn next_into(&mut self, out: &mut [u8]) -> bool {
        if self.cursor >= self.len {
            return false;
        }
        debug_assert_eq!(out.len(), self.n);
        if self.cursor == 0 {
            identity_into(out);
        } else {
            let mut rng = Xoshiro256::seed_from(mix_seed(self.seed, self.cursor));
            draw_into(&mut rng, out);
        }
        self.cursor += 1;
        true
    }

    fn skip(&mut self, n: u64) {
        self.cursor = self.cursor.saturating_add(n).min(self.len);
    }
}

/// Sequential bootstrap stream: one persistent RNG advanced draw by draw.
/// `skip` replays the skipped draws so the RNG state stays aligned — the
/// same replay contract as [`ShuffleSequential`](super::shuffle::ShuffleSequential).
#[derive(Debug, Clone)]
pub struct BootstrapSequential {
    n: usize,
    rng: Xoshiro256,
    cursor: u64,
    len: u64,
}

impl BootstrapSequential {
    /// Stream of `len` draws (identity at index 0) over `n` sample columns.
    ///
    /// # Panics
    /// If `n` is zero, exceeds [`MAX_BOOTSTRAP_COLS`], or `len` is zero.
    pub fn new(n: usize, len: u64, seed: u64) -> Self {
        assert!(
            n > 0 && n <= MAX_BOOTSTRAP_COLS,
            "bootstrap width {n} out of range"
        );
        assert!(len > 0, "bootstrap stream must include the identity draw");
        BootstrapSequential {
            n,
            rng: Xoshiro256::seed_from(seed),
            cursor: 0,
            len,
        }
    }

    fn advance_one(&mut self, out: &mut [u8]) {
        if self.cursor == 0 {
            identity_into(out);
        } else {
            draw_into(&mut self.rng, out);
        }
        self.cursor += 1;
    }
}

impl ResamplingStream for BootstrapSequential {
    fn len(&self) -> u64 {
        self.len
    }

    fn position(&self) -> u64 {
        self.cursor
    }

    fn next_into(&mut self, out: &mut [u8]) -> bool {
        if self.cursor >= self.len {
            return false;
        }
        debug_assert_eq!(out.len(), self.n);
        self.advance_one(out);
        true
    }

    fn skip(&mut self, n: u64) {
        let mut scratch = vec![0u8; self.n];
        let target = self.cursor.saturating_add(n).min(self.len);
        while self.cursor < target {
            self.advance_one(&mut scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::test_support::{collect_all, collect_range};

    #[test]
    fn identity_draw_comes_first() {
        for stream in [true, false] {
            let mut out = vec![0u8; 5];
            let ok = if stream {
                BootstrapFixedSeed::new(5, 4, 42).next_into(&mut out)
            } else {
                BootstrapSequential::new(5, 4, 42).next_into(&mut out)
            };
            assert!(ok);
            assert_eq!(out, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn draws_stay_below_width_and_repeat_indices() {
        let mut g = BootstrapFixedSeed::new(6, 200, 7);
        let rows = collect_all(&mut g, 6);
        assert_eq!(rows.len(), 200);
        let mut saw_repeat = false;
        for row in &rows[1..] {
            assert!(row.iter().all(|&i| (i as usize) < 6));
            let mut sorted = row.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() < row.len() {
                saw_repeat = true;
            }
        }
        assert!(saw_repeat, "with-replacement draws must repeat indices");
    }

    #[test]
    fn fixed_seed_skip_is_stateless_jump() {
        let mut straight = BootstrapFixedSeed::new(8, 50, 99);
        let all = collect_all(&mut straight, 8);
        let mut jumped = BootstrapFixedSeed::new(8, 50, 99);
        jumped.skip(23);
        assert_eq!(jumped.position(), 23);
        assert_eq!(collect_all(&mut jumped, 8), all[23..].to_vec());
    }

    #[test]
    fn sequential_skip_replays_to_same_stream() {
        let mut straight = BootstrapSequential::new(7, 40, 5);
        let all = collect_all(&mut straight, 7);
        let mut jumped = BootstrapSequential::new(7, 40, 5);
        jumped.skip(17);
        assert_eq!(collect_all(&mut jumped, 7), all[17..].to_vec());
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a = collect_all(&mut BootstrapFixedSeed::new(5, 30, 1), 5);
        let b = collect_all(&mut BootstrapFixedSeed::new(5, 30, 1), 5);
        let c = collect_all(&mut BootstrapFixedSeed::new(5, 30, 2), 5);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn exhaustion_and_overskip_are_clean() {
        let mut g = BootstrapFixedSeed::new(4, 3, 0);
        assert_eq!(collect_range(&mut g, 4, 10).len(), 3);
        let mut out = vec![0u8; 4];
        assert!(!g.next_into(&mut out));
        g.skip(100);
        assert_eq!(g.position(), 3);
    }
}
